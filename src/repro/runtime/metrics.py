"""Metrics registry for the transpose-serving runtime.

Prometheus-flavoured but dependency-free: monotonically increasing
**counters** (plans built, cache hits, requests coalesced), point-in-time
**gauges** (queue depth, per-stream simulated clocks), log2-bucketed
**latency histograms** (plan latency, per-schema simulated vs wall time),
and bounded **sample reservoirs** (uniform random subsets of raw
measurements, with metadata, that the model-feedback loop trains on —
histograms are too coarse to regress against; see ``docs/model.md``).

Everything is thread-safe, snapshotable to a JSON-friendly dict (the
format documented in ``docs/runtime.md``), and resettable so callers can
do windowed snapshot-and-clear accounting without losing updates that
race with the snapshot.
"""

from __future__ import annotations

import json
import math
import random
import zlib
from pathlib import Path
from threading import Lock
from typing import Dict, List, Optional, Tuple, Union

#: Schema version of the exported snapshot format (v2 added the
#: ``samples`` reservoir section).
METRICS_FORMAT_VERSION = 2

#: Default number of raw samples a reservoir keeps per name.
RESERVOIR_CAPACITY = 256

#: Histogram bucket upper bounds in seconds: 1 us .. ~16.8 s, log2 spaced.
_BUCKET_BOUNDS = tuple(1e-6 * 2.0**k for k in range(25))


class LatencyHistogram:
    """Fixed log2-bucket histogram of durations in seconds."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._buckets = [0] * (len(_BUCKET_BOUNDS) + 1)  # last = overflow
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    @staticmethod
    def _bucket_index(value: float) -> int:
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if value <= bound:
                return i
        return len(_BUCKET_BOUNDS)

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"durations must be >= 0, got {value}")
        with self._lock:
            self._buckets[self._bucket_index(value)] += 1
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    def snapshot(self) -> dict:
        """JSON-friendly summary; only non-empty buckets are listed."""
        with self._lock:
            buckets = {}
            for i, n in enumerate(self._buckets):
                if not n:
                    continue
                if i < len(_BUCKET_BOUNDS):
                    label = f"le_{_BUCKET_BOUNDS[i]:.3e}"
                else:
                    label = "overflow"
                buckets[label] = n
            return {
                "count": self.count,
                "sum_s": self.total,
                "min_s": self.min if self.count else 0.0,
                "max_s": self.max,
                "mean_s": self.total / self.count if self.count else 0.0,
                "buckets": buckets,
            }

    def reset(self) -> None:
        with self._lock:
            self._buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
            self.count = 0
            self.total = 0.0
            self.min = math.inf
            self.max = 0.0


class SampleReservoir:
    """Bounded uniform random sample of ``(value, meta)`` observations.

    Classic Algorithm R: the first ``capacity`` offers are admitted
    verbatim; offer ``n > capacity`` replaces a random kept slot with
    probability ``capacity / n``, so at any point the kept set is a
    uniform sample of everything offered.  The RNG is seeded from the
    reservoir name, which makes admission decisions reproducible across
    runs — important for the deterministic replay gates in
    ``benchmarks/bench_model_feedback.py``.

    ``meta`` can be expensive to build (feature vectors), so callers may
    pass a zero-argument callable instead of a dict; it is invoked only
    when the offer is actually admitted.
    """

    def __init__(self, name: str, capacity: int = RESERVOIR_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._lock = Lock()
        self._rng = random.Random(zlib.crc32(name.encode()))
        self._items: List[Tuple[float, Optional[dict]]] = []
        self.offered = 0

    def offer(self, value: float, meta=None) -> bool:
        """Offer one observation; returns True when it was admitted."""
        with self._lock:
            self.offered += 1
            if len(self._items) < self.capacity:
                slot = len(self._items)
                self._items.append((0.0, None))
            else:
                slot = self._rng.randrange(self.offered)
                if slot >= self.capacity:
                    return False
            resolved = meta() if callable(meta) else meta
            self._items[slot] = (float(value), resolved)
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def samples(self) -> List[Tuple[float, Optional[dict]]]:
        """The kept ``(value, meta)`` pairs (insertion/replacement order)."""
        with self._lock:
            return list(self._items)

    def snapshot(self) -> dict:
        with self._lock:
            values = [v for v, _ in self._items]
            return {
                "capacity": self.capacity,
                "offered": self.offered,
                "kept": len(values),
                "mean": sum(values) / len(values) if values else 0.0,
            }

    def reset(self) -> None:
        with self._lock:
            self._items.clear()
            self.offered = 0


class MetricsRegistry:
    """Named counters, gauges, histograms, and reservoirs behind one lock."""

    def __init__(self, reservoir_capacity: int = RESERVOIR_CAPACITY) -> None:
        self._lock = Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._reservoirs: Dict[str, SampleReservoir] = {}
        self._reservoir_capacity = reservoir_capacity

    # ---- writes ------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def inc_many(self, counters: Dict[str, int], prefix: str = "") -> None:
        """Add a whole dict of counter deltas atomically.

        Used to fold a process-pool worker's exported warm-up counters
        into the registry under one lock acquisition; ``prefix`` (e.g.
        ``"procpool."``) namespaces the imported names.
        """
        with self._lock:
            for name, n in counters.items():
                key = prefix + name
                self._counters[key] = self._counters.get(key, 0) + int(n)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        """Set ``name`` to ``value`` only if it raises the gauge (high-water)."""
        with self._lock:
            if value > self._gauges.get(name, -math.inf):
                self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = LatencyHistogram()
        hist.record(seconds)

    def observe_sample(self, name: str, value: float, meta=None) -> bool:
        """Offer a raw measurement (with optional metadata) to a reservoir.

        ``meta`` may be a dict or a zero-argument callable producing one;
        callables run only when the sample is admitted, so feature
        extraction stays off the hot path for rejected offers.
        """
        with self._lock:
            res = self._reservoirs.get(name)
            if res is None:
                res = self._reservoirs[name] = SampleReservoir(
                    name, self._reservoir_capacity
                )
        return res.offer(value, meta)

    # ---- reads -------------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """A consistent copy of every counter (one lock acquisition).

        The serving snapshot folds these under ``serving.*`` names; a
        copy keeps callers from iterating a dict that concurrent
        ``inc`` calls mutate."""
        with self._lock:
            return dict(self._counters)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[LatencyHistogram]:
        with self._lock:
            return self._histograms.get(name)

    def reservoir(self, name: str) -> Optional[SampleReservoir]:
        with self._lock:
            return self._reservoirs.get(name)

    def reservoir_names(self) -> List[str]:
        with self._lock:
            return sorted(self._reservoirs)

    def snapshot(self, reset: bool = False) -> dict:
        """One JSON-friendly dict of everything; optionally clears after.

        The snapshot and the clear happen under the registry lock, so no
        update can fall between them (windowed accounting stays exact).
        Histogram contents are snapshotted per-histogram; an observation
        racing the snapshot lands wholly in one window or the next.
        """
        with self._lock:
            out = {
                "format_version": METRICS_FORMAT_VERSION,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.snapshot() for name, h in self._histograms.items()
                },
                "samples": {
                    name: r.snapshot() for name, r in self._reservoirs.items()
                },
            }
            if reset:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
                self._reservoirs.clear()
            return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._reservoirs.clear()

    # ---- persistence -------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def save(self, path: Union[str, Path]) -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_json() + "\n")
        return p

    @staticmethod
    def load_snapshot(path: Union[str, Path]) -> dict:
        """Read a snapshot written by :meth:`save` (raises on bad files)."""
        payload = json.loads(Path(path).read_text())
        if payload.get("format_version") != METRICS_FORMAT_VERSION:
            raise ValueError(
                "unsupported metrics snapshot version "
                f"{payload.get('format_version')!r}"
            )
        return payload
