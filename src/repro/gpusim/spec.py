"""Simulated-device specifications.

:data:`KEPLER_K40C` mirrors Table III of the paper (Tesla K40c, 15 Kepler
SMs, 12 GB global memory, ECC off).  The calibration constants at the
bottom of :class:`DeviceSpec` are *model* parameters: they tune the cost
model so that well-coalesced transposes achieve roughly the ~200 GB/s the
paper reports on this card.  They are not claims about the silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceConfigError


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a simulated CUDA device.

    Attributes mirror the CUDA occupancy/transaction vocabulary.  All
    throughput figures are per *device* unless suffixed ``_per_sm``.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_hz: float
    #: Theoretical DRAM bandwidth in bytes/second (K40c: 288 GB/s, ECC off).
    peak_bandwidth: float
    #: Global-memory transaction granularity in bytes (128 B on Kepler).
    transaction_bytes: int = 128
    warp_size: int = 32
    shared_mem_per_sm: int = 48 * 1024
    shared_mem_banks: int = 32
    #: Width of one shared-memory bank in bytes (Kepler: configurable 4/8;
    #: TTLG uses the 8-byte mode for double tensors).
    bank_bytes: int = 8
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    max_registers_per_sm: int = 65536
    #: Special-function units per SM (Kepler GK110: 32) — bounds the
    #: throughput of the MUFU-converted mod/div "special instructions"
    #: that the Orthogonal-Arbitrary model counts as a feature.
    sfu_per_sm: int = 32
    #: Warp-instruction issue slots per SM per cycle devoted to LD/ST.
    lsu_issue_per_cycle: float = 1.0
    global_memory_bytes: int = 12 * 1024**3

    # ---- cost-model calibration (see gpusim.cost) -------------------
    #: Fraction of peak bandwidth achievable by a perfectly coalesced,
    #: fully occupant streaming kernel (copy kernels on a K40c reach
    #: ~80 % of the 288 GB/s theoretical peak).
    bandwidth_efficiency: float = 0.80
    #: Resident warps per SM needed to saturate DRAM bandwidth.
    saturation_warps_per_sm: float = 24.0
    #: Exponent applied to warp lane efficiency when derating achieved
    #: bandwidth (fewer active lanes => less memory-level parallelism).
    lane_efficiency_gamma: float = 0.65
    #: Fixed kernel-launch overhead in seconds.
    launch_overhead_s: float = 5.0e-6
    #: Minimum wall time of any kernel (driver/runtime floor).
    min_kernel_time_s: float = 3.0e-6
    #: cudaMalloc-style allocation overhead charged once per plan.
    alloc_overhead_s: float = 2.5e-4
    #: Host-side cost of evaluating one regression-model candidate during
    #: planning (Alg. 3's inner loop).
    plan_eval_cost_s: float = 2.0e-6
    #: Host-side fixed planning cost (taxonomy + offset-array setup).
    plan_fixed_cost_s: float = 2.0e-4

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise DeviceConfigError(f"num_sms must be positive, got {self.num_sms}")
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise DeviceConfigError(
                f"warp_size must be a positive power of two, got {self.warp_size}"
            )
        if self.transaction_bytes % self.bank_bytes:
            raise DeviceConfigError(
                "transaction_bytes must be a multiple of bank_bytes "
                f"({self.transaction_bytes} % {self.bank_bytes})"
            )
        if self.peak_bandwidth <= 0 or self.clock_hz <= 0:
            raise DeviceConfigError("peak_bandwidth and clock_hz must be positive")
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise DeviceConfigError("bandwidth_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def effective_bandwidth(self) -> float:
        """Best-case achievable DRAM bandwidth in bytes/second."""
        return self.peak_bandwidth * self.bandwidth_efficiency

    @property
    def block_slots(self) -> int:
        """Concurrent thread-block slots across the whole device."""
        return self.num_sms * self.max_blocks_per_sm

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Human-readable one-paragraph summary (Table III analogue)."""
        return (
            f"{self.name}: {self.num_sms} SMs x {self.cores_per_sm} cores @ "
            f"{self.clock_hz / 1e6:.0f} MHz, "
            f"{self.global_memory_bytes / 1024**3:.0f} GB global memory, "
            f"{self.peak_bandwidth / 1e9:.0f} GB/s peak "
            f"({self.effective_bandwidth / 1e9:.0f} GB/s achievable), "
            f"{self.shared_mem_per_sm // 1024} KB shared memory/SM, "
            f"{self.shared_mem_banks} banks x {self.bank_bytes} B, "
            f"warp size {self.warp_size}, "
            f"{self.transaction_bytes} B transactions"
        )


#: The paper's evaluation platform (Table III): Tesla K40c, ECC off.
KEPLER_K40C = DeviceSpec(
    name="Tesla K40c (simulated)",
    num_sms=15,
    cores_per_sm=192,
    clock_hz=745e6,
    peak_bandwidth=288e9,
)

#: A newer device used only for the device-sensitivity ablation bench.
PASCAL_P100 = DeviceSpec(
    name="Tesla P100 (simulated)",
    num_sms=56,
    cores_per_sm=64,
    clock_hz=1328e6,
    peak_bandwidth=732e9,
    shared_mem_per_sm=64 * 1024,
    bank_bytes=4,
    max_blocks_per_sm=32,
    global_memory_bytes=16 * 1024**3,
    saturation_warps_per_sm=28.0,
)
