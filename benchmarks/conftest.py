"""Shared fixtures for the figure/table benches.

Heavy sweeps are computed once per session and cached; each bench then
derives its figure from the cached plans, writes the paper-style table
to ``results/<name>.txt``, and lets pytest-benchmark time a cheap
representative operation (one planning call) so ``--benchmark-only``
still exercises real code.

Set ``REPRO_BENCH_QUICK=1`` to subsample the 720-permutation sweeps
(every 10th case) for fast iterations.
"""

from __future__ import annotations

import argparse
import os
import statistics
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.baselines import CuttHeuristic, CuttMeasure, TTC, TTLG
from repro.baselines.library import LibraryPlan, TransposeLibrary
from repro.bench.suites import BenchCase, six_d_suite

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))


# ----------------------------------------------------------------------
# Shared harness of the standalone `python benchmarks/bench_*.py` scripts
# ----------------------------------------------------------------------


def bench_parser(description: str) -> argparse.ArgumentParser:
    """The uniform CLI every standalone bench shares.

    ``--smoke`` is the CI mode: fewer repeats, gate checks only, no file
    output.  Scripts add their own extra arguments on top.
    """
    ap = argparse.ArgumentParser(description=description)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: fewer repeats, threshold check, no file output",
    )
    ap.add_argument("--repeats", type=int, default=None)
    return ap


def pick_repeats(args, full: int, smoke: int = 3) -> int:
    """Repeat count: explicit ``--repeats`` wins, else the mode default."""
    if args.repeats is not None:
        return args.repeats
    return smoke if args.smoke else full


def gate(label: str, failures: List[str], smoke: bool = False) -> int:
    """Uniform verdict printing; the exit code for ``main()``.

    Every bench reports threshold violations the same way, so CI logs
    grep identically across benches.
    """
    if failures:
        print(f"{label}:", *failures, sep="\n  ")
        return 1
    if smoke:
        print("smoke thresholds OK")
    return 0


def interleaved_ms(fns: Dict[str, object], repeats: int) -> Dict[str, tuple]:
    """Best/median ms per labelled path, measured round-robin so host
    drift hits every path equally."""
    times: Dict[str, List[float]] = {name: [] for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            fn()
            times[name].append((time.perf_counter() - t0) * 1e3)
    return {
        name: (min(ts), statistics.median(ts)) for name, ts in times.items()
    }


def env_stamp(gated: bool, gate_reason: str = "") -> Dict[str, object]:
    """The host/environment block every results JSON embeds.

    Trajectory comparisons across machines are meaningless without it:
    the procpool results, for example, gate their speedup check on the
    CPU count, and a 1-CPU container's numbers must not be read as a
    regression against an 8-core run.  ``gated`` records whether the
    bench's performance thresholds were actually enforced on this host,
    and ``gate_reason`` why not.
    """
    import platform
    import sys as _sys

    import numpy as _np

    from repro.kernels.native import compiler_info

    cc = compiler_info()
    return {
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": _np.__version__,
        "platform": _sys.platform,
        "machine": platform.machine(),
        "cc": cc["path"],
        "cc_version": cc["version"],
        "perf_gated": bool(gated),
        "gate_reason": gate_reason,
    }


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def libraries() -> List[TransposeLibrary]:
    return [TTLG(), CuttHeuristic(), CuttMeasure(), TTC()]


class PlannedSweep:
    """All libraries' plans for every case of one 6D suite."""

    def __init__(self, extent: int, libraries: List[TransposeLibrary]):
        self.extent = extent
        self.cases: List[BenchCase] = six_d_suite(extent)
        if QUICK:
            self.cases = self.cases[::10]
        self.plans: List[Dict[str, LibraryPlan]] = []
        for case in self.cases:
            row: Dict[str, LibraryPlan] = {}
            for lib in libraries:
                row[lib.name] = lib.plan(case.dims, case.perm)
            self.plans.append(row)

    def bandwidths(self, scenario: str) -> List[Dict[str, float]]:
        include_plan = scenario == "single"
        out = []
        for row in self.plans:
            out.append(
                {
                    name: plan.bandwidth_gbps(include_plan=include_plan)
                    for name, plan in row.items()
                    # The paper's single-use charts omit TTC (its plan is
                    # offline code generation).
                    if not (include_plan and name == "TTC")
                }
            )
        return out


_sweep_cache: Dict[int, PlannedSweep] = {}


@pytest.fixture(scope="session")
def sweep_factory(libraries):
    def get(extent: int) -> PlannedSweep:
        if extent not in _sweep_cache:
            _sweep_cache[extent] = PlannedSweep(extent, libraries)
        return _sweep_cache[extent]

    return get


def render_sweep(sweep: PlannedSweep, scenario: str, title: str) -> str:
    """Paper-style chart data: per-case series plus per-rank means."""
    import numpy as np

    from repro.bench.ascii_plot import multi_series

    rows = sweep.bandwidths(scenario)
    libs = list(rows[0].keys())
    lines = [title, f"{len(rows)} cases, extent {sweep.extent}, {scenario} use"]
    # Per-scaled-rank means (the staircase).
    lines.append(
        f"{'scaled rank':>12s} {'#cases':>7s} "
        + " ".join(f"{n:>15s}" for n in libs)
    )
    by_rank: Dict[int, List[Dict[str, float]]] = {}
    for case, row in zip(sweep.cases, rows):
        by_rank.setdefault(case.scaled_rank, []).append(row)
    for rank in sorted(by_rank):
        vals = by_rank[rank]
        cells = " ".join(
            f"{np.mean([v[n] for v in vals]):>15.1f}" for n in libs
        )
        lines.append(f"{rank:>12d} {len(vals):>7d} {cells}")
    # Overall summary.
    lines.append("")
    for n in libs:
        series = [r[n] for r in rows]
        lines.append(
            f"{n:<16s} mean {np.mean(series):7.1f}  "
            f"median {np.median(series):7.1f}  peak {np.max(series):7.1f} GB/s"
        )
    wins = {n: 0 for n in libs}
    ties = 0
    for r in rows:
        best = max(r, key=r.get)
        runner_up = max((v for k, v in r.items() if k != best), default=0.0)
        if r[best] > 1.01 * runner_up:
            wins[best] += 1
        else:
            ties += 1
    lines.append(
        "wins (>1 % margin): "
        + "  ".join(f"{n}={wins[n]}" for n in libs)
        + f"  ties={ties}"
    )
    lines.append("")
    lines.append(
        multi_series(
            {n: [r[n] for r in rows] for n in libs},
            y_label="GB/s",
            x_label="case (sorted by scaled rank)",
        )
    )
    return "\n".join(lines)
