"""Consistent-hash ring: stability, determinism, and balance.

The properties ISSUE 6 pins:

- routing is deterministic across ring instances and across processes
  (blake2b, not the salted builtin ``hash``),
- adding/removing a replica only remaps the ~1/N of keys touching the
  affected arcs — never a key between two untouched replicas,
- a zipf-weighted key population spreads over replicas without any
  replica hogging the distinct-key space.
"""

import random
import subprocess
import sys

import pytest

from repro.serving.ring import DEFAULT_VNODES, HashRing


def _keys(n: int, seed: int = 7):
    rng = random.Random(seed)
    return [f"dims{rng.randrange(10**9)}|perm{i}" for i in range(n)]


class TestBasics:
    def test_empty_ring_cannot_route(self):
        with pytest.raises(ValueError, match="empty ring"):
            HashRing().route("k")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)

    def test_duplicate_add_rejected(self):
        ring = HashRing([0, 1])
        with pytest.raises(ValueError, match="already"):
            ring.add(0)

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing([0]).remove(3)

    def test_len_and_nodes(self):
        ring = HashRing(range(3))
        assert len(ring) == 3
        assert ring.nodes == [0, 1, 2]
        ring.remove(1)
        assert ring.nodes == [0, 2]

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.route(k) == "only" for k in _keys(50))

    def test_distribution_counts_sum(self):
        ring = HashRing(range(4))
        keys = _keys(400)
        dist = ring.distribution(keys)
        assert sum(dist.values()) == len(keys)
        assert set(dist) == {0, 1, 2, 3}


class TestDeterminism:
    def test_two_instances_agree(self):
        a = HashRing(range(5))
        b = HashRing(range(5))
        for key in _keys(300):
            assert a.route(key) == b.route(key)

    def test_insertion_order_is_irrelevant(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])
        for key in _keys(300):
            assert a.route(key) == b.route(key)

    def test_routing_is_stable_across_processes(self):
        # The builtin hash() is salted per process; blake2b is not.  A
        # fresh interpreter must route the same keys identically.
        keys = _keys(40)
        local = [HashRing(range(4)).route(k) for k in keys]
        script = (
            "import sys, json\n"
            "from repro.serving.ring import HashRing\n"
            "ring = HashRing(range(4))\n"
            "keys = json.loads(sys.stdin.read())\n"
            "print(json.dumps([ring.route(k) for k in keys]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=__import__("json").dumps(keys),
            capture_output=True,
            text=True,
            check=True,
        )
        assert __import__("json").loads(out.stdout) == local


class TestStability:
    def test_adding_a_node_only_moves_keys_to_it(self):
        ring = HashRing(range(4))
        keys = _keys(2000)
        before = {k: ring.route(k) for k in keys}
        ring.add(4)
        moved = 0
        for k in keys:
            owner = ring.route(k)
            if owner != before[k]:
                # The consistent-hash contract: a new node only STEALS
                # keys; no key migrates between two old nodes.
                assert owner == 4
                moved += 1
        # ~1/5 of the key space moves; allow generous slack either way.
        assert 0 < moved < len(keys) * 0.45

    def test_removing_a_node_only_moves_its_keys(self):
        ring = HashRing(range(5))
        keys = _keys(2000)
        before = {k: ring.route(k) for k in keys}
        ring.remove(2)
        for k in keys:
            if before[k] != 2:
                assert ring.route(k) == before[k]
            else:
                assert ring.route(k) != 2

    def test_add_then_remove_restores_routing(self):
        ring = HashRing(range(4))
        keys = _keys(500)
        before = {k: ring.route(k) for k in keys}
        ring.add("temp")
        ring.remove("temp")
        assert {k: ring.route(k) for k in keys} == before


class TestBalance:
    def test_uniform_keys_spread_evenly(self):
        replicas = 4
        ring = HashRing(range(replicas))
        dist = ring.distribution(_keys(8000))
        for count in dist.values():
            share = count / 8000
            assert 0.5 / replicas < share < 2.0 / replicas, dist

    def test_zipf_weighted_imbalance_is_bounded(self):
        # Zipf request weights concentrate traffic on few keys; the
        # ring can't fix that (one hot key lives on one replica), but
        # with enough distinct keys no replica should own much more
        # than its share of the *distinct-key* space, and the request
        # share of any replica is bounded by its key share plus the
        # hottest keys it happens to own.
        rng = random.Random(11)
        replicas = 4
        ring = HashRing(range(replicas), vnodes=DEFAULT_VNODES)
        distinct = _keys(512, seed=3)
        s = 1.1  # zipf exponent of the load generator
        weights = [1.0 / (rank + 1) ** s for rank in range(len(distinct))]
        total = sum(weights)
        requests: dict = {n: 0.0 for n in range(replicas)}
        for key, w in zip(distinct, weights):
            requests[ring.route(key)] += w / total
        key_share = {
            n: c / len(distinct)
            for n, c in ring.distribution(distinct).items()
        }
        top_weight = weights[0] / total  # hottest single key's share
        for node in range(replicas):
            assert key_share[node] < 2.0 / replicas
            # request share <= fair share + a few hot keys' worth
            assert requests[node] < 1.0 / replicas + 3 * top_weight, (
                requests,
                key_share,
            )
        sampled = rng.choices(distinct, weights=weights, k=2000)
        dist = ring.distribution(sampled)
        assert sum(dist.values()) == 2000

    def test_more_vnodes_tighten_the_spread(self):
        keys = _keys(8000, seed=5)

        def spread(vnodes: int) -> float:
            dist = HashRing(range(4), vnodes=vnodes).distribution(keys)
            shares = [c / len(keys) for c in dist.values()]
            return max(shares) - min(shares)

        assert spread(256) < spread(2)
