"""Global-memory coalescing analysis.

Kepler coalesces the addresses issued by the 32 lanes of a warp into the
minimal set of aligned 128-byte transactions that covers them.  The
functions here implement that rule two ways:

- :func:`warp_transactions` — exact, from a vector of byte addresses
  (used by the detailed engine),
- :func:`contiguous_run_transactions` — closed form for the common case
  of a warp reading ``n`` contiguous elements starting at a given byte
  offset (used by the kernels' fast analytic counters).

Both count a partially used transaction as a whole one, matching the
``ceil`` convention of the paper's Section IV-C.
"""

from __future__ import annotations

import numpy as np


def warp_transactions(
    byte_addresses: np.ndarray,
    elem_bytes: int,
    transaction_bytes: int = 128,
) -> int:
    """Number of 128 B transactions for one warp-level access.

    Parameters
    ----------
    byte_addresses:
        Byte address of the first byte touched by each *active* lane.
        Inactive lanes must be omitted by the caller.
    elem_bytes:
        Size of the element each lane reads/writes.
    transaction_bytes:
        Coalescing granularity.
    """
    if byte_addresses.size == 0:
        return 0
    addrs = np.asarray(byte_addresses, dtype=np.int64)
    first = addrs // transaction_bytes
    last = (addrs + elem_bytes - 1) // transaction_bytes
    # Each lane may straddle a transaction boundary; collect all segments.
    segments = np.concatenate([first, last])
    return int(np.unique(segments).size)


def contiguous_run_transactions(
    start_byte: int, num_elems: int, elem_bytes: int, transaction_bytes: int = 128
) -> int:
    """Transactions needed for ``num_elems`` contiguous elements.

    Equivalent to :func:`warp_transactions` on
    ``start_byte + elem_bytes * arange(num_elems)`` but O(1).
    """
    if num_elems <= 0:
        return 0
    if start_byte < 0:
        raise ValueError(f"start_byte must be >= 0, got {start_byte}")
    first = start_byte // transaction_bytes
    last = (start_byte + num_elems * elem_bytes - 1) // transaction_bytes
    return int(last - first + 1)


def run_transactions_over_strided_rows(
    num_rows: int,
    row_elems: int,
    row_stride_elems: int,
    base_byte: int,
    elem_bytes: int,
    transaction_bytes: int = 128,
) -> int:
    """Total transactions for ``num_rows`` contiguous runs at a fixed stride.

    This is the workhorse of the analytic counters: a kernel that moves a
    slice touches many rows of ``row_elems`` contiguous elements whose
    starting addresses advance by ``row_stride_elems``.  Rather than loop
    over millions of rows, exploit the periodicity of alignment: the
    per-row transaction count only depends on ``start_byte mod
    transaction_bytes``, which cycles with period
    ``lcm(transaction, stride) / stride`` rows.
    """
    if num_rows <= 0 or row_elems <= 0:
        return 0
    stride_bytes = row_stride_elems * elem_bytes
    if stride_bytes == 0:
        # Degenerate broadcast: all rows share one footprint.
        return contiguous_run_transactions(
            base_byte, row_elems, elem_bytes, transaction_bytes
        )
    g = np.gcd(int(stride_bytes), transaction_bytes)
    period = transaction_bytes // g  # rows before alignment phase repeats
    period = min(period, num_rows)
    # Count one full period exactly.
    per_period = 0
    for r in range(period):
        per_period += contiguous_run_transactions(
            base_byte + r * stride_bytes, row_elems, elem_bytes, transaction_bytes
        )
    full_periods, rem = divmod(num_rows, period)
    total = per_period * full_periods
    for r in range(rem):
        total += contiguous_run_transactions(
            base_byte + r * stride_bytes, row_elems, elem_bytes, transaction_bytes
        )
    return int(total)


def average_row_transactions(
    row_elems: int, elem_bytes: int, transaction_bytes: int = 128
) -> float:
    """Expected transactions for a ``row_elems``-element contiguous run
    whose start is uniformly distributed over alignment phases.

    Used when the exact base alignment is unknowable at plan time (the
    paper's model faces the same situation and folds it into regression
    features).  For a run of ``L`` bytes the footprint is ``L/T + P``
    transactions where ``P`` is the probability of straddling one extra
    boundary; this returns the exact expectation over the ``T/gcd``
    possible phases.
    """
    if row_elems <= 0:
        return 0.0
    run_bytes = row_elems * elem_bytes
    g = np.gcd(elem_bytes, transaction_bytes)
    phases = transaction_bytes // g
    total = 0
    for p in range(phases):
        start = p * g
        total += contiguous_run_transactions(
            start, row_elems, elem_bytes, transaction_bytes
        )
    return total / phases
