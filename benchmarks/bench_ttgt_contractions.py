"""Extension bench: TTGT contractions driven by the performance model.

The paper motivates the queryable model with TTGT tensor contraction.
This bench runs a small suite of computational-chemistry-shaped
contractions (CCSD-like index patterns), comparing the model-chosen
TTGT strategy against the naive fixed-layout strategy, and verifies
numerical agreement with einsum.
"""

import numpy as np

from conftest import write_result

from repro.gpusim.spec import KEPLER_K40C
from repro.ttgt import contract, parse_contraction, plan_contraction
from repro.ttgt.contraction import _transpose_cost

#: (expr, extents) — o/v index sizes shaped like CC amplitudes.
SUITE = [
    ("acij,bc->abij", dict(a=40, b=40, c=40, i=16, j=16)),
    ("abcd,cd->ab", dict(a=64, b=64, c=48, d=48)),
    ("aibj,cj->aibc", dict(a=32, b=32, c=32, i=24, j=24)),
    ("ijab,kjab->ik", dict(i=24, j=24, k=24, a=48, b=48)),
    ("abc,dc->abd", dict(a=96, b=96, c=64, d=64)),
]


def fixed_layout_total(spec, plan):
    """Cost of the no-planner strategy: canonical [M,K]/[K,N] layouts."""
    s = plan.spec
    t = _transpose_cost(s.a_labels, s.m_labels + s.k_labels, s.extents, KEPLER_K40C)
    t += _transpose_cost(s.b_labels, s.k_labels + s.n_labels, s.extents, KEPLER_K40C)
    t += plan.gemm_time
    t += _transpose_cost(
        s.m_labels + s.n_labels, s.c_labels, s.extents, KEPLER_K40C
    )
    return t


def test_ttgt_contractions(benchmark):
    rng = np.random.default_rng(7)
    lines = [
        "TTGT contraction suite (extension; model-driven layout choice)",
        f"{'contraction':<18s} {'GEMM flops':>12s} {'chosen us':>10s} "
        f"{'fixed us':>9s} {'speedup':>8s} {'max err':>9s}",
    ]
    speedups = []
    for expr, extents in SUITE:
        spec = parse_contraction(expr, extents)
        plan = plan_contraction(expr, extents)
        fixed = fixed_layout_total(spec, plan)
        speedups.append(fixed / plan.total_time)
        a = rng.standard_normal(spec.volume(spec.a_labels))
        b = rng.standard_normal(spec.volume(spec.b_labels))
        c = contract(expr, a, b, extents, plan=plan)
        # einsum reference over reversed labels (NumPy axis order).
        subs = (
            "".join(reversed(spec.a_labels))
            + ","
            + "".join(reversed(spec.b_labels))
            + "->"
            + "".join(reversed(spec.c_labels))
        )
        ref = np.einsum(
            subs,
            a.reshape([extents[l] for l in reversed(spec.a_labels)]),
            b.reshape([extents[l] for l in reversed(spec.b_labels)]),
        ).reshape(-1)
        err = float(np.abs(c - ref).max() / max(np.abs(ref).max(), 1e-30))
        assert err < 1e-12
        lines.append(
            f"{expr:<18s} {spec.flops:>12,} {plan.total_time * 1e6:>10.1f} "
            f"{fixed * 1e6:>9.1f} {fixed / plan.total_time:>8.2f}x "
            f"{err:>9.1e}"
        )
    lines.append(
        f"\nmodel-chosen vs fixed layout: "
        f"{min(speedups):.2f}-{max(speedups):.2f}x "
        f"(geo-mean {np.exp(np.mean(np.log(speedups))):.2f}x)"
    )
    text = "\n".join(lines)
    print(text)
    write_result("ttgt_contractions", text)

    # The planner never loses to the fixed layout and wins somewhere.
    assert min(speedups) >= 0.999
    assert max(speedups) > 1.05

    expr, extents = SUITE[0]
    benchmark(lambda: plan_contraction(expr, extents))
