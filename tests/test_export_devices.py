"""Tests for result export and per-device model fallback."""

import csv
import io
import json

import pytest

from repro.baselines import CuttHeuristic, TTLG
from repro.bench.export import (
    load_suite_json,
    suite_to_csv,
    suite_to_json,
    suite_to_rows,
)
from repro.bench.harness import run_suite
from repro.bench.record import SuiteResult
from repro.bench.suites import varying_dims_suite
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100
from repro.model.pretrained import (
    PRETRAINED_DEVICE_NAME,
    oracle_predictor,
    pretrained_predictor,
)


@pytest.fixture(scope="module")
def suite():
    libs = [TTLG(predictor=oracle_predictor()), CuttHeuristic()]
    results = run_suite(varying_dims_suite()[:4], libs)
    return SuiteResult(title="export test", results=results)


class TestExport:
    def test_rows_cover_all_pairs(self, suite):
        rows = suite_to_rows(suite)
        assert len(rows) == 4 * 2
        assert {r["library"] for r in rows} == {"TTLG", "cuTT Heuristic"}

    def test_csv_parses_back(self, suite, tmp_path):
        path = tmp_path / "s.csv"
        text = suite_to_csv(suite, path)
        assert path.read_text() == text
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 8
        assert float(parsed[0]["bandwidth_gbps"]) > 0

    def test_json_roundtrip(self, suite, tmp_path):
        path = tmp_path / "s.json"
        suite_to_json(suite, path)
        loaded = load_suite_json(path)
        assert loaded["title"] == "export test"
        assert loaded["num_cases"] == 4
        assert len(loaded["rows"]) == 8

    def test_json_valid_without_path(self, suite):
        payload = json.loads(suite_to_json(suite))
        assert payload["libraries"]


class TestDeviceFallback:
    def test_pretrained_only_for_training_device(self):
        assert KEPLER_K40C.name == PRETRAINED_DEVICE_NAME

    def test_other_device_gets_analytic_predictor(self):
        """On a device the coefficients were not fitted for, predictions
        must equal the analytic cost model (no stale regression)."""
        from repro.core.layout import TensorLayout
        from repro.core.permutation import Permutation
        from repro.kernels.orthogonal_distinct import (
            OrthogonalDistinctKernel,
        )

        k = OrthogonalDistinctKernel(
            TensorLayout((64, 4, 64)), Permutation((2, 1, 0)), 1, 1, 1, 1,
            spec=PASCAL_P100,
        )
        pred = pretrained_predictor(PASCAL_P100)
        assert pred(k) == pytest.approx(k.simulated_time())

    def test_k40_uses_regression(self):
        from repro.core.layout import TensorLayout
        from repro.core.permutation import Permutation
        from repro.kernels.orthogonal_distinct import (
            OrthogonalDistinctKernel,
        )

        k = OrthogonalDistinctKernel(
            TensorLayout((64, 4, 64)), Permutation((2, 1, 0)), 1, 1, 1, 1
        )
        pred = pretrained_predictor(KEPLER_K40C)
        # A fitted model rarely lands exactly on the simulator output.
        assert pred(k) != k.simulated_time()
        assert pred(k) > 0

    def test_p100_planning_beats_cutt_heuristic(self):
        """The regression-validity guard keeps TTLG competitive on a
        device it was never trained for."""
        ttlg = TTLG(spec=PASCAL_P100)
        cutt = CuttHeuristic(spec=PASCAL_P100)
        for dims, perm in [((27,) * 5, (4, 1, 2, 0, 3))]:
            assert (
                ttlg.plan(dims, perm).bandwidth_gbps()
                >= cutt.plan(dims, perm).bandwidth_gbps() * 0.99
            )
