"""Executor programs must survive both transports the process pool uses.

A pool worker obtains programs two ways: rebuilding them from a plan
content key via the persistent store (``serialize_plan`` -> ``PlanStore``
-> ``rehydrate_plan`` -> ``compile_executor``), or — for frozen program
state — by pickle.  Every program kind (view / region / indexed /
chunked / nest) must round-trip both ways bit-exactly, with the kind
preserved.  Nest programs carry compiled code objects, which do not
pickle: their ``__getstate__`` ships only the search descriptor and
regeneration is deterministic, which these tests pin down.
"""

import pickle

import numpy as np
import pytest

from repro.core.plan import make_plan
from repro.kernels.common import reference_transpose
from repro.kernels.executor import compile_executor
from repro.runtime.store import (
    PlanStore,
    plan_key,
    rehydrate_plan,
    serialize_plan,
)

#: kind -> (dims, perm, compile kwargs forcing that kind).
KIND_CASES = {
    "view": ((128, 64, 64, 4), (0, 3, 2, 1), {}),
    "region": ((27, 27, 27, 27), (2, 3, 0, 1), {}),
    "indexed": ((32, 32, 32, 32), (3, 0, 1, 2), {"lowering": False}),
    "chunked": (
        (32, 32, 32, 32),
        (3, 0, 1, 2),
        {"lowering": False, "max_index_bytes": 1 << 16},
    ),
    # Large enough (4 MiB) that the loop-nest search is profitable.
    "nest": (
        (64, 32, 16, 16),
        (3, 2, 1, 0),
        {"lowering": False, "codegen": True},
    ),
}


def _case(kind):
    dims, perm, opts = KIND_CASES[kind]
    plan = make_plan(dims, perm)
    program = compile_executor(plan.kernel, **opts)
    assert program.kind == kind, (
        f"case no longer compiles to a {kind} program (got {program.kind})"
    )
    src = np.random.default_rng(5).standard_normal(plan.layout.volume)
    ref = reference_transpose(src, plan.layout, plan.perm)
    return plan, program, opts, src, ref


@pytest.mark.parametrize("kind", list(KIND_CASES))
class TestPerKind:
    def test_pickle_round_trip(self, kind):
        plan, program, opts, src, ref = _case(kind)
        clone = pickle.loads(pickle.dumps(program))
        assert clone.kind == program.kind
        assert clone.nbytes == program.nbytes
        assert np.array_equal(clone.run(src), ref)
        # The partitioned path (what pool workers actually run).
        out = np.empty_like(src)
        for task in clone.partition(3):
            clone.run_part(src, out, task)
        assert np.array_equal(out, ref)

    def test_content_key_rehydration(self, kind, tmp_path):
        plan, program, opts, src, ref = _case(kind)
        store = PlanStore(tmp_path / "plans.json")
        store.put(plan)
        store.flush()

        # A different handle on the same file: the worker's view.
        worker_store = PlanStore(tmp_path / "plans.json")
        entry = worker_store.entry(plan_key(plan))
        assert entry is not None
        rebuilt = rehydrate_plan(entry, plan.kernel.spec)
        assert rebuilt.schema == plan.schema
        clone = compile_executor(rebuilt.kernel, **opts)
        assert clone.kind == program.kind
        assert np.array_equal(clone.run(src), ref)

    def test_pipe_entry_rehydration(self, kind):
        """The store-less fallback: the serialized entry itself crosses
        the pipe (as a pickled dict) and is rehydrated on arrival."""
        plan, program, opts, src, ref = _case(kind)
        entry = pickle.loads(pickle.dumps(serialize_plan(plan)))
        rebuilt = rehydrate_plan(entry, plan.kernel.spec)
        clone = compile_executor(rebuilt.kernel, **opts)
        assert clone.kind == program.kind
        assert np.array_equal(clone.run(src), ref)


def test_key_is_content_addressed():
    """Rebuilding the same problem yields the same key; a different
    problem does not collide."""
    a = make_plan((27, 27, 27, 27), (2, 3, 0, 1))
    b = make_plan((27, 27, 27, 27), (2, 3, 0, 1))
    c = make_plan((27, 27, 27, 27), (3, 0, 2, 1))
    assert plan_key(a) == plan_key(b)
    assert plan_key(a) != plan_key(c)
