"""The telemetry-driven model feedback loop.

The paper's Table II regression is fitted **offline** against the
simulator and never sees a serving measurement, so every component that
steers by it — plan search, backend routing, codegen profitability —
inherits its blind spots forever (ROADMAP item 3).  The serving stack
already produces the missing signal: every executed plan has a measured
host wall time and a feature vector.  This module closes the loop:

1. **Sampling** — :func:`record_execution_sample` offers each finished
   execution's ``(features, wall_time)`` to a bounded per-schema
   reservoir in the :class:`~repro.runtime.metrics.MetricsRegistry`
   (``model_samples.<schema>``; the log2 histograms are far too coarse
   to regress against).  Feature extraction runs only for admitted
   offers, so the hot path pays a counter bump for rejected ones.
2. **Retraining** — :meth:`FeedbackLoop.retrain` converts the
   reservoirs into per-schema training sets and fits a
   :class:`~repro.model.gp.GPModel` (RBF + noise; principled
   uncertainty on few points) per schema, producing a **candidate**
   model version.
3. **Shadow planning** — a deterministic sample of traffic
   (``shadow_fraction``) is predicted under every tracked version; the
   per-version predicted-vs-measured relative error accumulates per
   schema.  The candidate **promotes** only when both versions have
   enough shadow samples and the candidate's mean error beats the
   incumbent's — predictions never steer live planning until they have
   measured better on live traffic.
4. **Persistence** — the active version, candidate, fitted models, and
   shadow scoreboard persist as ``models.json`` next to the plan store
   (atomic, corruption-tolerant), so a restarted process resumes with
   the promoted model, not the offline coefficients.

The offline predictor targets *simulated GPU* time while the loop
trains on *measured wall* time; the shadow scoreboard is therefore also
the honest account of how far apart those worlds are per schema (the
``repro stats`` model table).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from threading import Lock
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.taxonomy import Schema
from repro.errors import ModelError
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import DeviceSpec
from repro.model.features import FEATURE_NAMES, feature_vector
from repro.model.gp import GPModel
from repro.model.pretrained import SchemaPredictor, pretrained_predictor
from repro.model.regression import FittedModel

#: Reservoir-name prefix of the per-schema training samples.
SAMPLE_PREFIX = "model_samples."

#: Version string of the never-retrained shipped/analytic predictor.
OFFLINE_VERSION = "offline"

#: Schema version of the persisted ``models.json``.
FEEDBACK_FORMAT_VERSION = 1

#: Fraction of observed executions that are shadow-predicted under
#: every tracked model version (deterministic every-Nth sampling).
DEFAULT_SHADOW_FRACTION = 0.25

#: Shadow samples each version needs before promotion is considered.
DEFAULT_MIN_SHADOW_SAMPLES = 16

#: Training points a schema needs before it gets a fitted model.
DEFAULT_MIN_TRAIN_POINTS = 8


def sample_name(schema: Schema) -> str:
    """The metrics-reservoir name carrying one schema's samples."""
    return SAMPLE_PREFIX + schema.value


def record_execution_sample(metrics, kernel, wall_s: float) -> bool:
    """Offer one finished execution to its schema's sample reservoir.

    Returns True when the reservoir admitted the sample.  Schemas
    without a registered feature set (naive) and degenerate times are
    skipped — the feature callable runs only on admission.
    """
    schema = getattr(kernel, "schema", None)
    if schema not in FEATURE_NAMES or wall_s <= 0:
        return False
    return metrics.observe_sample(
        sample_name(schema),
        float(wall_s),
        meta=lambda: {"features": feature_vector(kernel).tolist()},
    )


def collect_training_data(
    metrics,
) -> Dict[Schema, Tuple[np.ndarray, np.ndarray]]:
    """Per-schema ``(X, y)`` training sets from the sample reservoirs.

    Samples whose metadata is missing or has the wrong feature arity
    (e.g. written under an older feature registry) are dropped, not
    trusted.
    """
    out: Dict[Schema, Tuple[np.ndarray, np.ndarray]] = {}
    for schema, names in FEATURE_NAMES.items():
        res = metrics.reservoir(sample_name(schema))
        if res is None:
            continue
        rows, times = [], []
        for value, meta in res.samples():
            feats = (meta or {}).get("features")
            if not isinstance(feats, list) or len(feats) != len(names):
                continue
            rows.append(feats)
            times.append(value)
        if rows:
            out[schema] = (
                np.asarray(rows, dtype=np.float64),
                np.asarray(times, dtype=np.float64),
            )
    return out


class FeedbackPredictor(SchemaPredictor):
    """A :class:`SchemaPredictor` that trusts retrained models first.

    The base class deliberately prefers the analytic fallback for
    :data:`~repro.model.pretrained.ANALYTIC_SCHEMAS` — correct for the
    *offline* models, which are fitted against the simulator the
    fallback already computes exactly.  Feedback models are fitted
    against **measured wall time**, which the analytic simulator does
    not predict at all, so here a fitted model wins for every schema
    that has one.
    """

    def _model_for(self, schema: Schema):
        m = self.models.get(schema)
        if m is not None:
            return m
        return super()._model_for(schema)

    def predict_with_uncertainty(self, kernel) -> Tuple[float, float]:
        """Posterior ``(mean, std)`` of one kernel's predicted time.

        GP-backed schemas report their own posterior standard deviation
        (``predict_with_std``); linear and analytic routes have no
        uncertainty surface and report 0.0, so callers widen nothing.
        The plan search uses this to keep pruning honest: a candidate
        is only discarded against ``mean + std``, never against an
        overconfident mean alone.
        """
        m = self._model_for(kernel.schema)
        with_std = getattr(m, "predict_with_std", None)
        if with_std is None:
            return float(self(kernel)), 0.0
        mean, std = with_std(feature_vector(kernel)[None, :])
        return max(float(mean[0]), self.min_time), max(float(std[0]), 0.0)


def _model_to_dict(model) -> dict:
    if isinstance(model, GPModel):
        return model.to_dict()
    return {
        "kind": "linear",
        "feature_names": list(model.feature_names),
        "coef": [float(c) for c in model.coef],
        "intercept": float(model.intercept),
    }


def _model_from_dict(payload: dict):
    kind = payload.get("kind")
    if kind == "gp":
        return GPModel.from_dict(payload)
    if kind == "linear":
        coef = np.asarray(payload["coef"], dtype=np.float64)
        if len(coef) != len(payload["feature_names"]):
            raise ModelError("coefficient/feature mismatch in feedback model")
        return FittedModel(
            feature_names=list(payload["feature_names"]),
            coef=coef,
            intercept=float(payload["intercept"]),
        )
    raise ModelError(f"unknown feedback model kind {kind!r}")


def _blank_score() -> dict:
    return {"count": 0, "err_sum": 0.0, "schemas": {}}


class FeedbackLoop:
    """Retraining, shadow scoring, and gated promotion of cost models.

    One instance per service (attach with ``TransposeService(feedback=
    True)``).  Thread-safe; all prediction math runs outside the lock.

    Parameters
    ----------
    path:
        Where the loop persists (``models.json`` next to the plan
        store; ``None`` = in-memory only).
    spec:
        Device the fallback cost model (and default base predictor)
        are built for.
    base_predictor:
        The incumbent "offline" predictor shadow-scored against every
        candidate (default: :func:`~repro.model.pretrained
        .pretrained_predictor`).
    shadow_fraction:
        Fraction of observed executions that are shadow-predicted
        (deterministic every-Nth sampling; 0 disables shadowing).
    min_shadow_samples:
        Shadow samples *each* version needs before promotion can flip.
    min_train_points:
        Reservoir points a schema needs to earn a fitted model.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        spec: Optional[DeviceSpec] = None,
        base_predictor=None,
        shadow_fraction: float = DEFAULT_SHADOW_FRACTION,
        min_shadow_samples: int = DEFAULT_MIN_SHADOW_SAMPLES,
        min_train_points: int = DEFAULT_MIN_TRAIN_POINTS,
    ) -> None:
        if not 0.0 <= shadow_fraction <= 1.0:
            raise ValueError(
                f"shadow_fraction must be in [0, 1], got {shadow_fraction}"
            )
        self.path = Path(path) if path is not None else None
        self.spec = spec
        self.base_predictor = (
            base_predictor
            if base_predictor is not None
            else pretrained_predictor(spec)
        )
        self.fallback = CostModel(spec) if spec is not None else CostModel()
        self.shadow_fraction = float(shadow_fraction)
        self._shadow_every = (
            int(round(1.0 / shadow_fraction)) if shadow_fraction > 0 else 0
        )
        self.min_shadow_samples = max(1, int(min_shadow_samples))
        self.min_train_points = max(2, int(min_train_points))
        self._lock = Lock()
        self.active_version = OFFLINE_VERSION
        self.candidate_version: Optional[str] = None
        self._next_version = 1
        #: version -> {Schema: fitted model}; only versions still in
        #: play (active + candidate) are kept.
        self._models: Dict[str, Dict[Schema, object]] = {}
        #: version -> shadow scoreboard (count / err_sum / per-schema).
        self._scores: Dict[str, dict] = {OFFLINE_VERSION: _blank_score()}
        self._observed = 0
        self.promotions = 0
        self._predictor_cache: Dict[str, object] = {}
        self._dirty = False
        if self.path is not None:
            self._load()

    # ---- predictors --------------------------------------------------
    def _predictor_for(self, version: str):
        """The prediction surface of one tracked version (cached)."""
        if version == OFFLINE_VERSION:
            return self.base_predictor
        cached = self._predictor_cache.get(version)
        if cached is None:
            cached = FeedbackPredictor(
                self._models.get(version, {}), fallback=self.fallback
            )
            self._predictor_cache[version] = cached
        return cached

    def predictor(self):
        """The currently *promoted* predictor — what planning should use."""
        with self._lock:
            version = self.active_version
        return self._predictor_for(version)

    # ---- observation / shadow scoring --------------------------------
    def observe(self, metrics, kernel, wall_s: float) -> bool:
        """Feed one finished execution into the loop.

        Always offers the sample to the training reservoir; every
        ``1/shadow_fraction``-th observation is also shadow-predicted
        under each tracked version.  Returns True when this observation
        triggered a promotion (callers refresh their planning predictor
        then).
        """
        record_execution_sample(metrics, kernel, wall_s)
        if wall_s <= 0 or self._shadow_every == 0:
            return False
        with self._lock:
            self._observed += 1
            if self._observed % self._shadow_every != 0:
                return False
            versions = [self.active_version]
            if self.candidate_version is not None:
                versions.append(self.candidate_version)
        preds = {}
        for version in versions:
            try:
                preds[version] = float(self._predictor_for(version)(kernel))
            except (ModelError, KeyError):
                continue
        if not preds:
            return False
        return self._score_shadow(preds, kernel.schema, float(wall_s))

    def _score_shadow(
        self, preds: Dict[str, float], schema: Schema, measured_s: float
    ) -> bool:
        promoted = False
        with self._lock:
            for version, predicted in preds.items():
                rel_err = abs(measured_s - predicted) / measured_s
                score = self._scores.setdefault(version, _blank_score())
                score["count"] += 1
                score["err_sum"] += rel_err
                per = score["schemas"].setdefault(
                    schema.value, {"count": 0, "err_sum": 0.0}
                )
                per["count"] += 1
                per["err_sum"] += rel_err
            self._dirty = True
            promoted = self._maybe_promote_locked()
        if promoted and self.path is not None:
            self.flush()
        return promoted

    def _maybe_promote_locked(self) -> bool:
        cand = self.candidate_version
        if cand is None:
            return False
        cs = self._scores.get(cand)
        inc = self._scores.get(self.active_version)
        if cs is None or inc is None:
            return False
        if (
            cs["count"] < self.min_shadow_samples
            or inc["count"] < self.min_shadow_samples
        ):
            return False
        if cs["err_sum"] / cs["count"] >= inc["err_sum"] / inc["count"]:
            return False
        # The candidate measured better on live traffic: flip.
        retired = self.active_version
        self.active_version = cand
        self.candidate_version = None
        if retired != OFFLINE_VERSION:
            self._models.pop(retired, None)
            self._predictor_cache.pop(retired, None)
        self.promotions += 1
        self._dirty = True
        return True

    # ---- retraining --------------------------------------------------
    def retrain(self, metrics) -> Optional[str]:
        """Fit a new candidate version from the sample reservoirs.

        One GP per schema with at least ``min_train_points`` samples;
        schemas below the floor keep their previous route.  Replaces
        any un-promoted candidate (and its shadow scoreboard — stale
        evidence must not promote a newer model).  Returns the new
        version name, or ``None`` when no schema had enough data.
        """
        data = collect_training_data(metrics)
        fitted: Dict[Schema, object] = {}
        for schema, (X, y) in data.items():
            if X.shape[0] < self.min_train_points:
                continue
            try:
                fitted[schema] = GPModel(FEATURE_NAMES[schema], X, y)
            except ModelError:
                continue
        if not fitted:
            return None
        with self._lock:
            old = self.candidate_version
            if old is not None:
                self._models.pop(old, None)
                self._scores.pop(old, None)
                self._predictor_cache.pop(old, None)
            name = f"v{self._next_version}"
            self._next_version += 1
            self._models[name] = fitted
            self._scores[name] = _blank_score()
            self.candidate_version = name
            self._dirty = True
        if self.path is not None:
            self.flush()
        return name

    # ---- introspection -----------------------------------------------
    def stats(self) -> dict:
        """The model table: versions, shadow errors, promotion state."""
        with self._lock:
            versions = {}
            for version, score in sorted(self._scores.items()):
                per_schema = {
                    name: {
                        "count": s["count"],
                        "mean_err_pct": round(
                            s["err_sum"] / s["count"] * 100.0, 2
                        ),
                    }
                    for name, s in sorted(score["schemas"].items())
                    if s["count"]
                }
                versions[version] = {
                    "shadow_count": score["count"],
                    "mean_err_pct": (
                        round(score["err_sum"] / score["count"] * 100.0, 2)
                        if score["count"]
                        else None
                    ),
                    "schemas": per_schema,
                    "fitted_schemas": sorted(
                        s.value for s in self._models.get(version, {})
                    ),
                }
            return {
                "active": self.active_version,
                "candidate": self.candidate_version,
                "shadow_fraction": self.shadow_fraction,
                "min_shadow_samples": self.min_shadow_samples,
                "observed": self._observed,
                "promotions": self.promotions,
                "versions": versions,
                "path": str(self.path) if self.path else None,
            }

    # ---- persistence -------------------------------------------------
    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("feedback_version") != FEEDBACK_FORMAT_VERSION
        ):
            return
        try:
            models: Dict[str, Dict[Schema, object]] = {}
            for version, per_schema in payload.get("models", {}).items():
                fitted = {}
                for name, body in per_schema.items():
                    fitted[Schema(name)] = _model_from_dict(body)
                if fitted:
                    models[version] = fitted
            scores: Dict[str, dict] = {}
            for version, score in payload.get("shadow", {}).items():
                scores[version] = {
                    "count": int(score["count"]),
                    "err_sum": float(score["err_sum"]),
                    "schemas": {
                        str(k): {
                            "count": int(v["count"]),
                            "err_sum": float(v["err_sum"]),
                        }
                        for k, v in score.get("schemas", {}).items()
                    },
                }
            active = str(payload.get("active", OFFLINE_VERSION))
            candidate = payload.get("candidate")
            next_version = int(payload.get("next_version", 1))
            promotions = int(payload.get("promotions", 0))
        except (KeyError, TypeError, ValueError, ModelError):
            # A truncated or hand-edited file must not take down
            # service start; the loop restarts from the offline model.
            return
        if active != OFFLINE_VERSION and active not in models:
            return
        if candidate is not None and candidate not in models:
            candidate = None
        self._models = models
        self._scores = scores or {OFFLINE_VERSION: _blank_score()}
        self._scores.setdefault(OFFLINE_VERSION, _blank_score())
        self.active_version = active
        self.candidate_version = candidate
        self._next_version = max(next_version, 1)
        self.promotions = promotions

    def flush(self) -> None:
        """Atomically persist the loop state (no-op without a path)."""
        if self.path is None:
            return
        with self._lock:
            payload = {
                "feedback_version": FEEDBACK_FORMAT_VERSION,
                "active": self.active_version,
                "candidate": self.candidate_version,
                "next_version": self._next_version,
                "promotions": self.promotions,
                "models": {
                    version: {
                        schema.value: _model_to_dict(m)
                        for schema, m in per_schema.items()
                    }
                    for version, per_schema in self._models.items()
                },
                "shadow": {
                    version: {
                        "count": s["count"],
                        "err_sum": s["err_sum"],
                        "schemas": s["schemas"],
                    }
                    for version, s in self._scores.items()
                },
            }
            self._dirty = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def close(self) -> None:
        if self.path is not None and self._dirty:
            self.flush()
