"""JSON round-trip for fitted models (and the shipped pretrained file)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.core.taxonomy import Schema
from repro.errors import ModelError
from repro.model.regression import FittedModel

FORMAT_VERSION = 1


def models_to_dict(models: Dict[Schema, FittedModel]) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "models": {
            schema.value: {
                "feature_names": m.feature_names,
                "coef": [float(c) for c in m.coef],
                "intercept": float(m.intercept),
            }
            for schema, m in models.items()
        },
    }


def models_from_dict(payload: dict) -> Dict[Schema, FittedModel]:
    if payload.get("format_version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported model file version {payload.get('format_version')}"
        )
    out: Dict[Schema, FittedModel] = {}
    for name, body in payload["models"].items():
        try:
            schema = Schema(name)
        except ValueError as exc:
            raise ModelError(f"unknown schema {name!r} in model file") from exc
        coef = np.asarray(body["coef"], dtype=np.float64)
        if len(coef) != len(body["feature_names"]):
            raise ModelError(f"coefficient/feature mismatch for {name}")
        out[schema] = FittedModel(
            feature_names=list(body["feature_names"]),
            coef=coef,
            intercept=float(body["intercept"]),
        )
    return out


def save_models(models: Dict[Schema, FittedModel], path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(models_to_dict(models), indent=2))


def load_models(path: Union[str, Path]) -> Dict[Schema, FittedModel]:
    p = Path(path)
    if not p.exists():
        raise ModelError(f"model file not found: {p}")
    return models_from_dict(json.loads(p.read_text()))
