"""Persistent, versioned JSON plan store.

The paper's repeated-use win (Fig. 12) dies at process exit with a
purely in-memory cache.  This store keeps the *outcome* of planning —
the chosen kernel's constructor parameters plus the recorded search
costs — on disk, so a restarted process rehydrates plans in O(rank)
instead of re-running candidate enumeration and model selection (the
TTC ahead-of-time idea applied to TTLG plans).

Entries are keyed exactly like :meth:`repro.core.cache.PlanCache._key`
(dims, perm, elem_bytes, device name, device content fingerprint) plus a
file-level ``store_version``.  A corrupt file is moved aside to
``<path>.corrupt`` and the store restarts empty; individually bad
entries are dropped and counted, never fatal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from threading import Lock
from typing import Dict, Optional, Sequence, Union

from repro.core.cache import spec_fingerprint
from repro.core.fusion import fuse_indices
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.plan import TransposePlan
from repro.core.taxonomy import Schema, select_schema
from repro.gpusim.spec import DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.fvi_match_large import FviMatchLargeKernel
from repro.kernels.fvi_match_small import FviMatchSmallKernel
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel

STORE_VERSION = 1


def native_cache_dir(store_path: Union[str, Path]) -> Path:
    """The native compiled-object cache directory for a store path.

    The :mod:`repro.kernels.native` tier caches compiled shared objects
    *next to* the plan store (``plans.json`` → ``plans_native/``), so
    the warm-restart property extends to compiled kernels: a process —
    or a pool worker — reopening the same store path finds the same
    objects and runs zero compiles.  Derivation is a pure function of
    the path, so parent and workers agree without coordination.
    """
    path = Path(store_path)
    return path.with_name(path.stem + "_native")


def _key_str(
    dims: Sequence[int],
    perm: Sequence[int],
    elem_bytes: int,
    spec: DeviceSpec,
) -> str:
    return "|".join(
        (
            "x".join(str(d) for d in dims),
            ",".join(str(p) for p in perm),
            str(elem_bytes),
            spec.name,
            spec_fingerprint(spec),
        )
    )


def content_key(
    dims: Sequence[int],
    perm: Sequence[int],
    elem_bytes: int,
    spec: DeviceSpec,
) -> str:
    """The stable string content key of a problem.

    The same key the store and the process-pool protocol use — and the
    routing key of the sharded serving front end (``docs/serving.md``):
    deterministic across processes, so every front end instance maps a
    given problem to the same replica.
    """
    return _key_str(dims, perm, elem_bytes, spec)


def plan_key(plan: TransposePlan) -> str:
    """The store content key of a plan (what the process-pool protocol
    ships instead of the program itself)."""
    return _key_str(
        plan.layout.dims, plan.perm.mapping, plan.elem_bytes, plan.kernel.spec
    )


def _kernel_params(kernel: TransposeKernel) -> dict:
    """The schema-specific constructor parameters worth persisting."""
    schema = kernel.schema
    if schema is Schema.FVI_MATCH_LARGE:
        return {"chunk": kernel.chunk}
    if schema is Schema.FVI_MATCH_SMALL:
        return {"b": kernel.b}
    if schema is Schema.ORTHOGONAL_DISTINCT:
        return {
            "in_prefix": kernel.in_prefix,
            "blockA": kernel.blockA,
            "out_prefix": kernel.out_prefix,
            "blockB": kernel.blockB,
        }
    if schema is Schema.ORTHOGONAL_ARBITRARY:
        return {
            "in_prefix": kernel.in_prefix,
            "blockA": kernel.blockA,
            "out_prefix": kernel.out_prefix,
            "blockB": kernel.blockB,
            "pad": kernel.pad,
            "coarsen": list(kernel.coarsen) if kernel.coarsen else None,
        }
    raise ValueError(f"cannot persist a {schema.value} kernel")


def serialize_plan(plan: TransposePlan) -> dict:
    """A JSON-friendly record sufficient to rebuild ``plan`` cheaply."""
    return {
        "dims": list(plan.layout.dims),
        "perm": list(plan.perm.mapping),
        "elem_bytes": plan.elem_bytes,
        "spec_name": plan.kernel.spec.name,
        "spec_fingerprint": spec_fingerprint(plan.kernel.spec),
        "schema": plan.schema.value,
        "kernel_params": _kernel_params(plan.kernel),
        "predicted_time": plan.predicted_time,
        "num_candidates": plan.num_candidates,
        "coarsening": list(plan.coarsening) if plan.coarsening else None,
        "plan_time": plan.plan_time,
    }


def rehydrate_plan(entry: dict, spec: DeviceSpec) -> TransposePlan:
    """Rebuild a :class:`TransposePlan` from a store entry.

    Fusion and taxonomy are recomputed (both O(rank)); the kernel is
    constructed directly from the persisted parameters — no candidate
    enumeration, no predictor calls.  Raises on any mismatch or malformed
    entry; callers treat that as a miss.
    """
    if entry["spec_fingerprint"] != spec_fingerprint(spec):
        raise ValueError(
            f"entry was planned for {entry['spec_name']!r} "
            f"({entry['spec_fingerprint']}), not for {spec.name!r}"
        )
    dims = tuple(int(d) for d in entry["dims"])
    perm = tuple(int(p) for p in entry["perm"])
    elem_bytes = int(entry["elem_bytes"])
    layout = TensorLayout(dims)
    permutation = Permutation(perm)
    fused = fuse_indices(layout, permutation)
    decision = select_schema(fused.layout, fused.perm, warp_size=spec.warp_size)

    schema = Schema(entry["schema"])
    params = entry["kernel_params"]
    fl, fp = fused.layout, fused.perm
    if schema is Schema.FVI_MATCH_LARGE:
        kernel: TransposeKernel = FviMatchLargeKernel(
            fl, fp, elem_bytes, spec, chunk=int(params["chunk"])
        )
    elif schema is Schema.FVI_MATCH_SMALL:
        kernel = FviMatchSmallKernel(fl, fp, int(params["b"]), elem_bytes, spec)
    elif schema is Schema.ORTHOGONAL_DISTINCT:
        kernel = OrthogonalDistinctKernel(
            fl,
            fp,
            int(params["in_prefix"]),
            int(params["blockA"]),
            int(params["out_prefix"]),
            int(params["blockB"]),
            elem_bytes,
            spec,
        )
    elif schema is Schema.ORTHOGONAL_ARBITRARY:
        coarsen = params.get("coarsen")
        kernel = OrthogonalArbitraryKernel(
            fl,
            fp,
            in_prefix=int(params["in_prefix"]),
            blockA=int(params["blockA"]),
            out_prefix=int(params["out_prefix"]),
            blockB=int(params["blockB"]),
            elem_bytes=elem_bytes,
            spec=spec,
            pad=int(params["pad"]),
            coarsen=tuple(coarsen) if coarsen else None,
        )
    else:
        raise ValueError(f"cannot rehydrate a {schema.value} kernel")

    coarsening = entry.get("coarsening")
    return TransposePlan(
        layout=layout,
        perm=permutation,
        elem_bytes=elem_bytes,
        fused=fused,
        decision=decision,
        kernel=kernel,
        predicted_time=float(entry["predicted_time"]),
        num_candidates=int(entry["num_candidates"]),
        coarsening=tuple(coarsening) if coarsening else None,
        plan_time=float(entry["plan_time"]),
    )


class PlanStore:
    """JSON-on-disk plan store with atomic writes and corruption recovery.

    Parameters
    ----------
    path:
        The JSON file backing the store (created on first flush).
    autoflush:
        Write the file after every :meth:`put`.  Disable for bulk loads
        and call :meth:`flush` once at the end.
    """

    def __init__(self, path: Union[str, Path], autoflush: bool = True):
        self.path = Path(path)
        self.autoflush = autoflush
        self._lock = Lock()
        self._entries: Dict[str, dict] = {}
        #: Non-plan build artifacts (generated-kernel descriptors from
        #: :mod:`repro.kernels.codegen`), persisted in the same file
        #: under a separate namespace so warm restarts skip searches
        #: the same way they skip planning.
        self._artifacts: Dict[str, dict] = {}
        #: Entries dropped during load because they were malformed.
        self.corrupt_entries = 0
        #: True when the whole file was unreadable and moved aside.
        self.recovered_from_corruption = False
        self._dirty = False
        self._load()

    # ---- persistence -------------------------------------------------
    def _quarantine(self) -> None:
        backup = self.path.with_suffix(self.path.suffix + ".corrupt")
        try:
            os.replace(self.path, backup)
        except OSError:
            pass
        self.recovered_from_corruption = True

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text())
            if not isinstance(payload, dict):
                raise ValueError("store root must be an object")
        except (ValueError, OSError):
            self._quarantine()
            return
        if payload.get("store_version") != STORE_VERSION:
            # A future (or garbage) version: keep the file for inspection,
            # serve nothing from it, and only overwrite on flush.
            self._quarantine()
            return
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            self._quarantine()
            return
        for key, entry in entries.items():
            if isinstance(entry, dict) and "schema" in entry:
                self._entries[key] = entry
            else:
                self.corrupt_entries += 1
        # The artifacts section is optional (files written before the
        # codegen tier simply lack it) and individually validated the
        # same way: malformed records are dropped, never fatal.
        artifacts = payload.get("artifacts", {})
        if isinstance(artifacts, dict):
            for key, desc in artifacts.items():
                if isinstance(desc, dict):
                    self._artifacts[key] = desc
                else:
                    self.corrupt_entries += 1
        else:
            self.corrupt_entries += 1

    def flush(self) -> None:
        """Atomically persist the current entries (tmp file + rename)."""
        with self._lock:
            payload = {
                "store_version": STORE_VERSION,
                "entries": dict(self._entries),
                "artifacts": dict(self._artifacts),
            }
            self._dirty = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    # ---- cache-facing interface -------------------------------------
    def get(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int,
        spec: DeviceSpec,
    ) -> Optional[TransposePlan]:
        """Rehydrate the stored plan for a key, or None.

        A malformed or mismatched entry is dropped from the store and
        reported as a miss — corruption never propagates to callers.
        """
        key = _key_str(dims, perm, elem_bytes, spec)
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        try:
            return rehydrate_plan(entry, spec)
        except Exception:
            with self._lock:
                self._entries.pop(key, None)
                self.corrupt_entries += 1
                self._dirty = True
            return None

    def put(self, plan: TransposePlan) -> None:
        key = _key_str(
            plan.layout.dims, plan.perm.mapping, plan.elem_bytes, plan.kernel.spec
        )
        entry = serialize_plan(plan)
        with self._lock:
            self._entries[key] = entry
            self._dirty = True
        if self.autoflush:
            self.flush()

    # ---- raw-entry interface (process-pool workers) ------------------
    def entry(self, key: str) -> Optional[dict]:
        """The raw serialized entry for a content key (no rehydration).

        Process-pool workers look plans up by the key string the parent
        shipped and rehydrate with their own ``DeviceSpec``.
        """
        with self._lock:
            return self._entries.get(key)

    def reload(self) -> None:
        """Re-read the backing file, merging fresh entries in.

        Workers call this when a key misses: the parent may have
        flushed new plans since the worker opened its handle.  In-memory
        entries win over the file's on conflict (they may be newer
        unflushed puts).
        """
        fresh = PlanStore.__new__(PlanStore)
        fresh.path = self.path
        fresh._entries = {}
        fresh._artifacts = {}
        fresh.corrupt_entries = 0
        fresh.recovered_from_corruption = False
        fresh._load()
        with self._lock:
            merged = dict(fresh._entries)
            merged.update(self._entries)
            self._entries = merged
            merged_art = dict(fresh._artifacts)
            merged_art.update(self._artifacts)
            self._artifacts = merged_art
            self.corrupt_entries += fresh.corrupt_entries

    @property
    def native_dir(self) -> Path:
        """Where this store's native compiled objects live (see
        :func:`native_cache_dir`); consumed by
        :func:`repro.kernels.codegen.maybe_nest_program` via the
        ``artifacts`` handle."""
        return native_cache_dir(self.path)

    # ---- artifact interface (codegen descriptors) --------------------
    def artifact(self, key: str) -> Optional[dict]:
        """The persisted build artifact for a key, or None.

        Artifacts are auxiliary build outcomes keyed by content — today
        the :mod:`repro.kernels.codegen` loop-nest descriptors, keyed by
        fused geometry — living alongside plans so one warm file skips
        both planning and the loop-order search.
        """
        with self._lock:
            return self._artifacts.get(key)

    def put_artifact(self, key: str, desc: dict) -> None:
        with self._lock:
            self._artifacts[key] = dict(desc)
            self._dirty = True
        if self.autoflush:
            self.flush()

    def artifact_keys(self):
        with self._lock:
            return list(self._artifacts)

    # ---- introspection ----------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self):
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._artifacts.clear()
            self._dirty = True

    def close(self) -> None:
        if self._dirty:
            self.flush()

    def describe(self) -> dict:
        with self._lock:
            native = self.native_dir
            return {
                "path": str(self.path),
                "entries": len(self._entries),
                "artifacts": len(self._artifacts),
                "native_dir": str(native),
                "native_objects": (
                    len(list(native.glob("*.so"))) if native.is_dir() else 0
                ),
                "store_version": STORE_VERSION,
                "corrupt_entries_dropped": self.corrupt_entries,
                "recovered_from_corruption": self.recovered_from_corruption,
            }
