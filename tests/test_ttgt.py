"""Tests for the TTGT contraction subpackage."""

import numpy as np
import pytest

from repro.errors import ContractionError
from repro.ttgt import contract, parse_contraction, plan_contraction
from repro.ttgt.contraction import gemm_time
from repro.gpusim.spec import KEPLER_K40C


def einsum_reference(expr, a, b, extents):
    """np.einsum over our linearization (labels reversed for NumPy)."""
    spec = parse_contraction(expr, extents)
    An = a.reshape([extents[l] for l in reversed(spec.a_labels)])
    Bn = b.reshape([extents[l] for l in reversed(spec.b_labels)])
    subs = (
        "".join(reversed(spec.a_labels))
        + ","
        + "".join(reversed(spec.b_labels))
        + "->"
        + "".join(reversed(spec.c_labels))
    )
    return np.einsum(subs, An, Bn).reshape(-1)


class TestParse:
    def test_mnk_classification(self):
        s = parse_contraction("abc,dce->adbe", dict(a=2, b=3, c=4, d=5, e=6))
        assert s.m_labels == ("a", "b")
        assert s.n_labels == ("d", "e")
        assert s.k_labels == ("c",)

    def test_flops(self):
        s = parse_contraction("ab,bc->ac", dict(a=10, b=20, c=30))
        assert s.flops == 2 * 10 * 30 * 20

    @pytest.mark.parametrize(
        "expr",
        [
            "ab->ab",          # no comma
            "aab,bc->ac",      # repeated label
            "ab,bc->ad",       # output label from nowhere
            "ab,ab->ab",       # batch label
            "ab,cd->abcd",     # nothing contracted
            "abz,bc->ac",      # dangling label in A
        ],
    )
    def test_malformed(self, expr):
        ext = {l: 4 for l in "abcdz"}
        with pytest.raises(ContractionError):
            parse_contraction(expr, ext)

    def test_missing_extent(self):
        with pytest.raises(ContractionError):
            parse_contraction("ab,bc->ac", dict(a=4, b=4))


class TestPlan:
    def test_total_is_sum_of_parts(self):
        ext = dict(a=16, b=16, c=16, d=16)
        p = plan_contraction("abc,cd->abd", ext)
        assert p.total_time == pytest.approx(
            p.transpose_a_time
            + p.transpose_b_time
            + p.gemm_time
            + p.transpose_c_time
        )

    def test_identity_layouts_cost_zero(self):
        """A already in [M,K] order: its transpose must be free."""
        ext = dict(a=32, b=32, c=32)
        p = plan_contraction("ab,bc->ac", ext)
        assert p.transpose_a_time == 0.0

    def test_describe_mentions_gemm(self):
        ext = dict(a=8, b=8, c=8)
        assert "GEMM" in plan_contraction("ab,bc->ac", ext).describe()

    def test_gemm_time_positive_and_monotone(self):
        small = parse_contraction("ab,bc->ac", dict(a=64, b=64, c=64))
        big = parse_contraction("ab,bc->ac", dict(a=512, b=512, c=512))
        assert 0 < gemm_time(small, KEPLER_K40C) < gemm_time(big, KEPLER_K40C)

    def test_planner_prefers_cheap_layout(self):
        """The chosen strategy must not be worse than the naive
        M-then-K orderings it competes with."""
        ext = dict(a=24, b=12, c=48, d=8, e=6)
        p = plan_contraction("cab,dce->adbe", ext)
        assert p.total_time > 0


class TestContract:
    @pytest.mark.parametrize(
        "expr,ext",
        [
            ("ab,bc->ac", dict(a=33, b=47, c=29)),
            ("abc,cd->abd", dict(a=8, b=12, c=10, d=6)),
            ("abc,dce->adbe", dict(a=8, b=12, c=10, d=6, e=4)),
            ("ab,cbd->dac", dict(a=9, b=11, c=7, d=5)),
            ("abcd,db->ca", dict(a=5, b=6, c=7, d=8)),
        ],
    )
    def test_matches_einsum(self, expr, ext, rng):
        spec = parse_contraction(expr, ext)
        a = rng.standard_normal(spec.volume(spec.a_labels))
        b = rng.standard_normal(spec.volume(spec.b_labels))
        got = contract(expr, a, b, ext)
        want = einsum_reference(expr, a, b, ext)
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-10)

    def test_wrong_input_size(self, rng):
        ext = dict(a=4, b=4, c=4)
        with pytest.raises(ContractionError):
            contract("ab,bc->ac", np.zeros(7), np.zeros(16), ext)

    def test_explicit_plan_reused(self, rng):
        ext = dict(a=8, b=8, c=8)
        plan = plan_contraction("ab,bc->ac", ext)
        spec = plan.spec
        a = rng.standard_normal(64)
        b = rng.standard_normal(64)
        got = contract("ab,bc->ac", a, b, ext, plan=plan)
        np.testing.assert_allclose(
            got, einsum_reference("ab,bc->ac", a, b, ext)
        )


class TestContractMany:
    @pytest.mark.parametrize(
        "expr,ext",
        [
            ("ab,bc->ac", dict(a=9, b=11, c=7)),
            ("abc,cd->abd", dict(a=4, b=6, c=5, d=3)),
            ("abc,dce->adbe", dict(a=4, b=6, c=5, d=3, e=2)),
        ],
    )
    def test_matches_per_pair_contract(self, expr, ext, rng):
        from repro.ttgt import contract_many

        spec = parse_contraction(expr, ext)
        av, bv = spec.volume(spec.a_labels), spec.volume(spec.b_labels)
        a_batch = [rng.standard_normal(av) for _ in range(5)]
        b_batch = [rng.standard_normal(bv) for _ in range(5)]
        got = contract_many(expr, a_batch, b_batch, ext)
        assert len(got) == 5
        for g, a, b in zip(got, a_batch, b_batch):
            # Bit-exact: batched GEMM over a stacked axis performs the
            # same multiply per pair as the scalar path.
            np.testing.assert_array_equal(g, contract(expr, a, b, ext))
            np.testing.assert_allclose(
                g, einsum_reference(expr, a, b, ext), rtol=1e-10, atol=1e-10
            )

    def test_explicit_plan_and_empty_batch(self, rng):
        from repro.ttgt import contract_many

        ext = dict(a=6, b=5, c=4)
        plan = plan_contraction("ab,bc->ac", ext)
        a_batch = [rng.standard_normal(30) for _ in range(3)]
        b_batch = [rng.standard_normal(20) for _ in range(3)]
        got = contract_many("ab,bc->ac", a_batch, b_batch, ext, plan=plan)
        for g, a, b in zip(got, a_batch, b_batch):
            np.testing.assert_array_equal(g, contract("ab,bc->ac", a, b, ext, plan=plan))
        assert contract_many("ab,bc->ac", [], [], ext) == []

    def test_operand_validation(self):
        from repro.ttgt import contract_many

        ext = dict(a=4, b=4, c=4)
        with pytest.raises(ContractionError):
            contract_many("ab,bc->ac", [np.zeros(16)], [], ext)
        with pytest.raises(ContractionError):
            contract_many("ab,bc->ac", [np.zeros(7)], [np.zeros(16)], ext)
        with pytest.raises(ContractionError):
            contract_many("ab,bc->ac", [np.zeros(16)], [np.zeros(7)], ext)
