"""Two-phase planner fast path: parity with eager search, batched
prediction equivalence, pruning safety, and the planning caches."""

import random

import numpy as np
import pytest

from repro.core.fusion import fuse_indices
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.plan import (
    candidate_descriptors,
    candidates_for,
    clear_plan_caches,
    make_plan,
)
from repro.core.slices import (
    PRUNE_SAFETY,
    candidate_lower_bound,
    candidate_sort_key,
    choose_best,
    enumerate_orthogonal_arbitrary,
    enumerate_orthogonal_arbitrary_descs,
    enumerate_orthogonal_distinct,
    enumerate_orthogonal_distinct_descs,
    materialize_candidate,
)
from repro.core.taxonomy import select_schema
from repro.errors import PlanError
from repro.gpusim.cost import CostModel
from repro.gpusim.sharedmem import conflict_degree, conflict_degrees_rows
from repro.gpusim.spec import KEPLER_K40C
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel
from repro.model.pretrained import oracle_predictor, pretrained_predictor
from repro.model.regression import FittedModel

SPEC = KEPLER_K40C

#: dims x perm grid covering all four schemas, floor-time ties, fusion,
#: awkward extents, and the issue's 6D acceptance case.
GRID = [
    ([16, 8, 4, 8, 4, 16], [5, 4, 3, 2, 1, 0]),
    ([27, 27, 27, 27, 27], [4, 1, 2, 0, 3]),
    ([64, 16, 16, 16], [0, 3, 2, 1]),
    ([8, 16, 16, 16], [0, 3, 2, 1]),
    ([32, 32, 32], [2, 1, 0]),
    ([128, 128], [1, 0]),
    ([5, 7, 11, 13], [3, 0, 2, 1]),
    ([15, 17, 9, 10], [2, 3, 1, 0]),
    ([16, 16, 16], [2, 1, 0]),
    ([15, 17, 9], [1, 0, 2]),
    ([128, 4, 128], [2, 1, 0]),
    ([4, 4, 4, 4, 4, 4, 4], [6, 5, 4, 3, 2, 1, 0]),
]

KERNEL_PARAMS = ("in_prefix", "blockA", "out_prefix", "blockB", "b", "pad", "coarsen")


def kernel_signature(kernel):
    return (type(kernel).__name__,) + tuple(
        getattr(kernel, p, None) for p in KERNEL_PARAMS
    )


class TestFastSlowParity:
    @pytest.mark.parametrize("dims,perm", GRID)
    @pytest.mark.parametrize("predictor_factory", [pretrained_predictor, oracle_predictor])
    def test_same_plan(self, dims, perm, predictor_factory):
        predictor = predictor_factory(SPEC)
        eager = make_plan(dims, perm, 8, SPEC, predictor, search="eager")
        fast = make_plan(dims, perm, 8, SPEC, predictor, search="two_phase")
        assert kernel_signature(fast.kernel) == kernel_signature(eager.kernel)
        assert fast.num_candidates == eager.num_candidates
        assert fast.predicted_time == eager.predicted_time
        assert fast.coarsening == eager.coarsening
        assert fast.plan_time == eager.plan_time

    def test_unknown_search_rejected(self):
        with pytest.raises(PlanError):
            make_plan([8, 8], [1, 0], search="lazy")


class TestDescriptorEnumeration:
    @pytest.mark.parametrize("dims,perm", GRID)
    def test_descs_mirror_kernels(self, dims, perm):
        """Descriptor enumeration matches the eager kernel lists 1:1."""
        layout, p = TensorLayout(dims), Permutation(perm)
        oa_kernels = enumerate_orthogonal_arbitrary(layout, p, SPEC)
        oa_descs = enumerate_orthogonal_arbitrary_descs(layout, p, SPEC)
        assert len(oa_kernels) == len(oa_descs)
        for k, d in zip(oa_kernels, oa_descs):
            assert (k.in_prefix, k.blockA, k.out_prefix, k.blockB) == (
                d.in_prefix, d.blockA, d.out_prefix, d.blockB,
            )
            assert (k.A, k.B) == (d.A, d.B)
        od_kernels = enumerate_orthogonal_distinct(layout, p, SPEC)
        od_descs = enumerate_orthogonal_distinct_descs(layout, p, SPEC)
        assert len(od_kernels) == len(od_descs)
        for k, d in zip(od_kernels, od_descs):
            assert (k.in_prefix, k.blockA, k.out_prefix, k.blockB) == (
                d.in_prefix, d.blockA, d.out_prefix, d.blockB,
            )

    def test_materialize_reproduces_kernel(self):
        layout, p = TensorLayout([16, 8, 4, 8, 4, 16]), Permutation([5, 4, 3, 2, 1, 0])
        kernels = enumerate_orthogonal_arbitrary(layout, p, SPEC)
        descs = enumerate_orthogonal_arbitrary_descs(layout, p, SPEC)
        for k, d in zip(kernels[:8], descs[:8]):
            m = materialize_candidate(d, layout, p, SPEC, 8)
            assert kernel_signature(m) == kernel_signature(k)


class TestBatchedPrediction:
    def test_fitted_model_batch_equals_one(self):
        rng = np.random.default_rng(7)
        model = FittedModel(
            feature_names=[f"f{i}" for i in range(5)],
            coef=rng.normal(size=5),
            intercept=0.3,
        )
        X = rng.normal(size=(40, 5))
        batch = model.predict_batch(X)
        ones = np.array([model.predict_one(x) for x in X])
        assert batch.shape == (40,)
        np.testing.assert_allclose(batch, ones, rtol=1e-12, atol=0)

    def test_fitted_model_batch_rejects_1d(self):
        model = FittedModel(feature_names=["a"], coef=np.ones(1), intercept=0.0)
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            model.predict_batch(np.ones(3))

    @pytest.mark.parametrize("factory", [pretrained_predictor, oracle_predictor])
    def test_predictor_batch_equals_scalar(self, factory):
        layout, p = TensorLayout([16, 8, 4, 8, 4, 16]), Permutation([5, 4, 3, 2, 1, 0])
        kernels = enumerate_orthogonal_arbitrary(layout, p, SPEC)
        predictor = factory(SPEC)
        batch = predictor.predict_batch(kernels)
        scalar = np.array([predictor(k) for k in kernels])
        np.testing.assert_allclose(batch, scalar, rtol=1e-9, atol=0)

    def test_predictor_batch_mixed_schemas(self):
        """Grouped scoring keeps each time at its kernel's position."""
        fused = fuse_indices(TensorLayout([8, 16, 16, 16]), Permutation([0, 3, 2, 1]))
        decision = select_schema(fused.layout, fused.perm)
        kernels = candidates_for(fused.layout, fused.perm, decision, SPEC, 8)
        assert len({k.schema for k in kernels}) > 1
        predictor = pretrained_predictor(SPEC)
        batch = predictor.predict_batch(kernels)
        scalar = np.array([predictor(k) for k in kernels])
        np.testing.assert_allclose(batch, scalar, rtol=1e-9, atol=0)

    def test_cost_model_batch_bit_identical(self):
        layout, p = TensorLayout([27] * 5), Permutation([4, 1, 2, 0, 3])
        kernels = enumerate_orthogonal_distinct(layout, p, SPEC)[:20]
        cm = CostModel(SPEC)
        batch = cm.kernel_time_batch(
            [k.counters() for k in kernels],
            [k.launch_geometry for k in kernels],
        )
        for i, k in enumerate(kernels):
            assert batch[i] == cm.kernel_time(k.counters(), k.launch_geometry)

    def test_cost_model_batch_empty_and_mismatch(self):
        cm = CostModel(SPEC)
        assert cm.kernel_time_batch([], []).shape == (0,)
        k = enumerate_orthogonal_arbitrary(
            TensorLayout([32, 32]), Permutation([1, 0]), SPEC
        )[0]
        with pytest.raises(ValueError):
            cm.kernel_time_batch([k.counters()], [])


class TestPruningBound:
    @pytest.mark.parametrize("dims,perm", GRID[:6])
    def test_lower_bound_holds_for_oracle(self, dims, perm):
        """The DRAM floor never exceeds the cost model's prediction."""
        fused = fuse_indices(TensorLayout(dims), Permutation(perm))
        decision = select_schema(fused.layout, fused.perm)
        descs = candidate_descriptors(fused.layout, fused.perm, decision, SPEC, 8)
        predictor = oracle_predictor(SPEC)
        for d in descs:
            lb = candidate_lower_bound(d, fused.layout, fused.perm, SPEC, 8)
            kernel = materialize_candidate(d, fused.layout, fused.perm, SPEC, 8)
            assert lb <= predictor(kernel) * (1 + 1e-12)

    @pytest.mark.parametrize("dims,perm", GRID)
    def test_winner_never_pruned(self, dims, perm):
        """The eager winner's bound always clears the pruning threshold."""
        predictor = pretrained_predictor(SPEC)
        fused = fuse_indices(TensorLayout(dims), Permutation(perm))
        decision = select_schema(fused.layout, fused.perm)
        descs = candidate_descriptors(fused.layout, fused.perm, decision, SPEC, 8)
        kernels = candidates_for(fused.layout, fused.perm, decision, SPEC, 8)
        winner = choose_best(kernels, predictor)
        bounds = {
            d: candidate_lower_bound(d, fused.layout, fused.perm, SPEC, 8)
            for d in descs
        }
        # Threshold as built by choose_best_two_phase: the smallest-bound
        # candidate's predicted time times the safety margin.
        first = min(descs, key=lambda d: bounds[d])
        incumbent = materialize_candidate(first, fused.layout, fused.perm, SPEC, 8)
        threshold = predictor(incumbent) * PRUNE_SAFETY
        winner_desc = next(
            d
            for d in descs
            if candidate_sort_key(winner.kernel)[1:] == (*d.param_key, 0)[:5]
            and d.schema is winner.kernel.schema
        )
        assert bounds[winner_desc] <= threshold


class TestTieBreak:
    def test_choose_best_deterministic_under_shuffling(self):
        layout, p = TensorLayout([16, 16, 16]), Permutation([2, 1, 0])
        fused = fuse_indices(layout, p)
        decision = select_schema(fused.layout, fused.perm)
        kernels = candidates_for(fused.layout, fused.perm, decision, SPEC, 8)
        predictor = oracle_predictor(SPEC)
        rank = {s: i for i, s in enumerate(decision.all_candidates)}
        baseline = choose_best(kernels, predictor, schema_rank=rank)
        rng = random.Random(42)
        for _ in range(5):
            shuffled = list(kernels)
            rng.shuffle(shuffled)
            res = choose_best(shuffled, predictor, schema_rank=rank)
            assert kernel_signature(res.kernel) == kernel_signature(baseline.kernel)
            assert res.predicted_time == baseline.predicted_time

    def test_constant_predictor_picks_smallest_key(self):
        layout, p = TensorLayout([32, 32, 32]), Permutation([2, 1, 0])
        kernels = enumerate_orthogonal_arbitrary(layout, p, SPEC)
        res = choose_best(kernels, lambda k: 1.0)
        assert candidate_sort_key(res.kernel) == min(
            candidate_sort_key(k) for k in kernels
        )

    def test_picks_strictly_better_time_over_key(self):
        layout, p = TensorLayout([32, 32, 32]), Permutation([2, 1, 0])
        kernels = enumerate_orthogonal_arbitrary(layout, p, SPEC)
        target = max(kernels, key=candidate_sort_key)
        res = choose_best(kernels, lambda k: 0.5 if k is target else 1.0)
        assert res.kernel is target


class TestPlanningCaches:
    def test_offset_arrays_cached_per_variant(self):
        kernel = OrthogonalArbitraryKernel(
            TensorLayout([16, 8, 4, 8, 4, 16]),
            Permutation([5, 4, 3, 2, 1, 0]),
            in_prefix=3,
            blockA=4,
            out_prefix=0,
            blockB=1,
            spec=SPEC,
        )
        first = kernel.offset_arrays()
        second = kernel.offset_arrays()
        assert all(a is b for a, b in zip(first, second))
        partial = {kernel.a_dim: 1} if kernel.a_dim is not None else {}
        if partial:
            assert kernel.offset_arrays(partial)[0] is kernel.offset_arrays(partial)[0]

    def test_full_slice_sm_offsets_match_offset_arrays(self):
        kernel = OrthogonalArbitraryKernel(
            TensorLayout([27, 27, 27]),
            Permutation([2, 0, 1]),
            in_prefix=1,
            blockA=2,
            out_prefix=1,
            blockB=1,
            spec=SPEC,
        )
        np.testing.assert_array_equal(
            kernel._sm_off_sample(), kernel.offset_arrays()[2]
        )

    def test_conflict_degrees_rows_match_reference(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 500, size=(17, 32))
        vectorized = conflict_degrees_rows(rows)
        reference = np.array([conflict_degree(r) for r in rows])
        np.testing.assert_array_equal(vectorized, reference)

    def test_clear_plan_caches_preserves_selection(self):
        before = make_plan([16, 8, 4, 8, 4, 16], [5, 4, 3, 2, 1, 0])
        clear_plan_caches()
        after = make_plan([16, 8, 4, 8, 4, 16], [5, 4, 3, 2, 1, 0])
        assert kernel_signature(before.kernel) == kernel_signature(after.kernel)
        assert before.predicted_time == after.predicted_time
