"""Table II reproduction: regression models, coefficients, precision.

Regenerates the offline dataset, fits the Orthogonal-Distinct and
Orthogonal-Arbitrary models, and prints per-feature estimate / standard
error / t value / Pr(>|t|) tables in the paper's format together with
the precision metric ``mean(|actual-pred|/actual)*100`` on the train and
test splits (paper: OD 4.161 % / 4.159 %, OA 11.084 % / 10.75 %).
"""

from conftest import QUICK, write_result

from repro.core.taxonomy import Schema
from repro.model.dataset import generate_cases
from repro.model.trainer import train


def test_table2(benchmark):
    cases = generate_cases(
        ranks=(3, 4) if QUICK else (3, 4, 5, 6),
        volumes=(2 * 1024**2,)
        if QUICK
        else (2 * 1024**2, 16 * 1024**2, 128 * 1024**2),
        max_perms_per_rank=5 if QUICK else 10,
    )
    report = train(cases)

    lines = ["Table II — linear regression fits (simulated measurements)", ""]
    for schema in (Schema.ORTHOGONAL_DISTINCT, Schema.ORTHOGONAL_ARBITRARY):
        m = report.models[schema]
        lines.append(f"== {schema.value} ({report.n_points[schema]} points) ==")
        lines.append(m.summary.format_table())
        lines.append(
            f"precision error: train {report.train_error_pct[schema]:.3f} % "
            f"test {report.test_error_pct[schema]:.3f} %"
        )
        lines.append("")
    lines.append(
        "paper: Orthogonal-Distinct 4.161 % / 4.159 % on 77,502 points; "
        "Orthogonal-Arbitrary 11.084 % / 10.75 % on 8,042 points"
    )
    text = "\n".join(lines)
    print(text)
    write_result("table2_regression", text)

    # Shape assertions: the majority of features significant (the paper
    # reports all at p < 2e-16; our simulated dataset leaves secondary
    # features marginal once the cycles feature explains most variance),
    # the cycles feature itself highly significant, and precision in the
    # paper's band.
    for schema in (Schema.ORTHOGONAL_DISTINCT, Schema.ORTHOGONAL_ARBITRARY):
        rows = report.models[schema].summary.rows
        significant = sum(r.p_value < 0.05 for r in rows)
        assert significant >= (len(rows) + 1) // 2, (
            schema,
            [(r.name, r.p_value) for r in rows],
        )
        cycles = next(r for r in rows if r.name == "cycles")
        assert cycles.p_value < 1e-6
    assert report.test_error_pct[Schema.ORTHOGONAL_DISTINCT] < 10.0
    assert report.test_error_pct[Schema.ORTHOGONAL_ARBITRARY] < 20.0

    # Benchmark one model prediction (the Alg. 3 inner-loop cost).
    from repro.core.layout import TensorLayout
    from repro.core.permutation import Permutation
    from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel
    from repro.model.features import feature_vector

    k = OrthogonalDistinctKernel(
        TensorLayout((64, 4, 64)), Permutation((2, 1, 0)), 1, 1, 1, 1
    )
    model = report.models[Schema.ORTHOGONAL_DISTINCT]
    x = feature_vector(k)
    benchmark(lambda: model.predict_one(x))
