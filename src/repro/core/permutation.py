"""Index permutations.

Conventions (Sec. III footnote of the paper):

- Dimension 0 is the **fastest varying** dimension of the linearized
  tensor (MATLAB/Fortran-style abstract notation over a row-major C
  implementation — only the *naming* differs, the math is identical).
- A permutation ``p`` describes the output tensor in terms of the input:
  ``p[i] = j`` means output dimension ``i`` is input dimension ``j``
  (the paper's ``P[i] = j`` convention from the Fig. 12 discussion).
  Equivalently, output extents are ``dims[p[i]]`` and the output index
  tuple of the element at input index ``idx`` is ``idx[p[i]]``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.errors import InvalidPermutationError


class Permutation:
    """An immutable bijection over ``range(rank)``.

    Examples
    --------
    >>> p = Permutation((2, 0, 1))
    >>> p.apply(("a", "b", "c"))        # output dims in terms of input
    ('c', 'a', 'b')
    >>> p.inverse().apply(("c", "a", "b"))
    ('a', 'b', 'c')
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Iterable[int]):
        m = tuple(int(x) for x in mapping)
        if len(m) == 0:
            raise InvalidPermutationError("permutation must have rank >= 1")
        if sorted(m) != list(range(len(m))):
            raise InvalidPermutationError(
                f"{m} is not a permutation of range({len(m)})"
            )
        self._map = m

    # -- basics ---------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self._map)

    @property
    def mapping(self) -> Tuple[int, ...]:
        return self._map

    def __len__(self) -> int:
        return len(self._map)

    def __iter__(self) -> Iterator[int]:
        return iter(self._map)

    def __getitem__(self, i: int) -> int:
        return self._map[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Permutation):
            return self._map == other._map
        if isinstance(other, (tuple, list)):
            return self._map == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._map)

    def __repr__(self) -> str:
        return f"Permutation({self._map})"

    # -- algebra --------------------------------------------------------
    @classmethod
    def identity(cls, rank: int) -> "Permutation":
        return cls(range(rank))

    @classmethod
    def reversal(cls, rank: int) -> "Permutation":
        """The full transposition ``[i0, ..., id-1] => [id-1, ..., i0]``."""
        return cls(range(rank - 1, -1, -1))

    def inverse(self) -> "Permutation":
        inv = [0] * self.rank
        for i, j in enumerate(self._map):
            inv[j] = i
        return Permutation(inv)

    def compose(self, other: "Permutation") -> "Permutation":
        """Return the permutation equivalent to applying ``other`` first,
        then ``self`` (``(self . other)[i] = other[self[i]]``).

        ``a.compose(b).apply(x) == a.apply(b.apply(x))``.
        """
        if other.rank != self.rank:
            raise InvalidPermutationError(
                f"rank mismatch: {self.rank} vs {other.rank}"
            )
        return Permutation(tuple(other._map[j] for j in self._map))

    def apply(self, seq: Sequence) -> tuple:
        """Permute a sequence: element ``i`` of the result is ``seq[p[i]]``."""
        if len(seq) != self.rank:
            raise InvalidPermutationError(
                f"sequence of length {len(seq)} does not match rank {self.rank}"
            )
        return tuple(seq[j] for j in self._map)

    # -- structural queries ----------------------------------------------
    def is_identity(self) -> bool:
        return all(i == j for i, j in enumerate(self._map))

    def fvi_matches(self) -> bool:
        """True when the fastest varying index is the same in input and
        output — the right branch of the paper's Fig. 3 flow chart."""
        return self._map[0] == 0

    def fixed_points(self) -> Tuple[int, ...]:
        return tuple(i for i, j in enumerate(self._map) if i == j)

    def cycles(self) -> Tuple[Tuple[int, ...], ...]:
        """Disjoint cycle decomposition (useful for tests/diagnostics)."""
        seen = [False] * self.rank
        out = []
        for start in range(self.rank):
            if seen[start]:
                continue
            cyc = []
            i = start
            while not seen[i]:
                seen[i] = True
                cyc.append(i)
                i = self._map[i]
            out.append(tuple(cyc))
        return tuple(out)

    # -- numpy interop ----------------------------------------------------
    def numpy_axes(self) -> Tuple[int, ...]:
        """Axes argument for ``np.transpose`` under our conventions.

        We store a tensor of extents ``dims`` (dim 0 fastest) as a NumPy
        array of shape ``dims[::-1]`` (NumPy's last axis is fastest).  The
        output of the transposition, viewed the same way, is
        ``np.transpose(arr, axes)`` with the axes produced here.

        Derivation: input dim ``j`` lives on NumPy axis ``rank-1-j``;
        output dim ``i`` (= input dim ``p[i]``) must land on NumPy axis
        ``rank-1-i``.  So ``axes[rank-1-i] = rank-1-p[i]``.
        """
        r = self.rank
        axes = [0] * r
        for i, j in enumerate(self._map):
            axes[r - 1 - i] = r - 1 - j
        return tuple(axes)
