"""Coalescing primitives: SingleFlight error paths, MicroBatcher.

SingleFlight's failure semantics are load-bearing for the service: a
leader's exception must reach every concurrent follower (they cannot
hang), and the flight must retire so a later call retries instead of
being poisoned forever.  MicroBatcher must flush each bucket exactly
once — via the window timer, the max_batch fast path, or close() — and
resolve (or fail) every promised future.
"""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.runtime.batching import MicroBatcher, SingleFlight


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


# ----------------------------------------------------------------------
# SingleFlight
# ----------------------------------------------------------------------


def test_singleflight_leader_exception_reaches_followers():
    sf = SingleFlight()
    release = threading.Event()
    n_followers = 4
    results = []
    boom = RuntimeError("planning failed")

    def leader_fn():
        release.wait(timeout=5)
        raise boom

    def leader():
        try:
            sf.do("k", leader_fn)
        except RuntimeError as exc:
            results.append(("leader", exc))

    def follower():
        try:
            sf.do("k", lambda: pytest.fail("follower must never run fn"))
        except RuntimeError as exc:
            results.append(("follower", exc))

    lt = threading.Thread(target=leader)
    lt.start()
    # The leader holds the flight open until every follower has joined.
    followers = [threading.Thread(target=follower) for _ in range(n_followers)]
    for t in followers:
        t.start()
    assert _wait_until(lambda: sf.coalesced == n_followers)
    release.set()
    lt.join(timeout=5)
    for t in followers:
        t.join(timeout=5)
    assert len(results) == n_followers + 1
    # Everyone saw the leader's exception object, not a wrapper.
    assert all(exc is boom for _, exc in results)


def test_singleflight_retires_failed_flight_and_retries():
    sf = SingleFlight()
    calls = []

    def failing():
        calls.append("fail")
        raise ValueError("transient")

    with pytest.raises(ValueError):
        sf.do("k", failing)
    assert sf.in_flight() == 0  # the failed flight is gone ...
    value, leader = sf.do("k", lambda: "recovered")  # ... so this retries
    assert value == "recovered" and leader
    assert calls == ["fail"]


def test_singleflight_concurrent_leader_election():
    sf = SingleFlight()
    release = threading.Event()
    outcomes = []

    def fn():
        release.wait(timeout=5)
        return 42

    def call():
        outcomes.append(sf.do("k", fn))

    threads = [threading.Thread(target=call) for _ in range(5)]
    for t in threads:
        t.start()
    assert _wait_until(lambda: sf.coalesced == 4)
    release.set()
    for t in threads:
        t.join(timeout=5)
    assert [v for v, _ in outcomes] == [42] * 5
    assert sum(1 for _, leader in outcomes if leader) == 1
    assert sf.in_flight() == 0


# ----------------------------------------------------------------------
# MicroBatcher
# ----------------------------------------------------------------------


def _collecting_batcher(**kwargs):
    flushed = []

    def flush(key, context, payloads, futures):
        flushed.append((key, context, list(payloads)))
        for i, f in enumerate(futures):
            f.set_result((key, payloads[i]))

    return MicroBatcher(flush, **kwargs), flushed


def test_microbatcher_window_coalesces():
    mb, flushed = _collecting_batcher(window_s=0.05, max_batch=64)
    futs = [mb.submit("k", i, context="ctx") for i in range(3)]
    assert mb.pending() == 3  # window still open
    assert [f.result(timeout=5) for f in futs] == [("k", i) for i in range(3)]
    assert flushed == [("k", "ctx", [0, 1, 2])]
    s = mb.stats()
    assert s["requests"] == 3 and s["flushes"] == 1 and s["coalesced"] == 2
    assert s["per_key"]["k"]["max_batch"] == 3
    mb.close()


def test_microbatcher_max_batch_flushes_immediately():
    mb, flushed = _collecting_batcher(window_s=30.0, max_batch=2)
    f1 = mb.submit("k", "a")
    f2 = mb.submit("k", "b")  # hits max_batch: flushes on this thread
    assert f1.result(timeout=1) == ("k", "a")
    assert f2.result(timeout=1) == ("k", "b")
    assert len(flushed) == 1 and flushed[0][2] == ["a", "b"]
    mb.close()


def test_microbatcher_zero_window_is_passthrough():
    mb, flushed = _collecting_batcher(window_s=0.0)
    assert mb.submit("k", 1).result(timeout=1) == ("k", 1)
    assert mb.submit("k", 2).result(timeout=1) == ("k", 2)
    assert len(flushed) == 2
    assert mb.stats()["coalesced"] == 0
    mb.close()


def test_microbatcher_keys_isolate_buckets():
    mb, flushed = _collecting_batcher(window_s=30.0, max_batch=2)
    fa = [mb.submit("a", i) for i in range(2)]
    fb = [mb.submit("b", i) for i in range(2)]
    for f in fa + fb:
        f.result(timeout=1)
    assert sorted(k for k, _, _ in flushed) == ["a", "b"]
    assert mb.stats()["per_key"]["a"]["requests"] == 2
    mb.close()


def test_microbatcher_flush_exception_fails_all_futures():
    boom = RuntimeError("flush blew up")

    def flush(key, context, payloads, futures):
        raise boom

    mb = MicroBatcher(flush, window_s=30.0, max_batch=2)
    f1 = mb.submit("k", 1)
    f2 = mb.submit("k", 2)
    assert f1.exception(timeout=1) is boom
    assert f2.exception(timeout=1) is boom
    # The failed bucket is retired; the batcher keeps serving.
    f3 = mb.submit("k", 3)
    f4 = mb.submit("k", 4)
    assert f4.exception(timeout=1) is boom and f3.exception(timeout=1) is boom
    mb.close()


def test_microbatcher_close_flushes_open_buckets():
    mb, flushed = _collecting_batcher(window_s=30.0, max_batch=64)
    fut = mb.submit("k", "pending")
    mb.close()  # window never expired; close drains the bucket
    assert fut.result(timeout=1) == ("k", "pending")
    assert flushed == [("k", None, ["pending"])]
    with pytest.raises(RuntimeError):
        mb.submit("k", "late")


def test_microbatcher_close_without_flush_fails_futures():
    mb, _ = _collecting_batcher(window_s=30.0, max_batch=64)
    fut = mb.submit("k", "doomed")
    mb.close(flush=False)
    with pytest.raises(RuntimeError):
        fut.result(timeout=1)


def test_microbatcher_timer_and_full_path_flush_exactly_once():
    """A bucket filling right as its timer fires must flush once."""
    flushes = []
    done = threading.Event()

    def flush(key, context, payloads, futures):
        flushes.append(list(payloads))
        for f in futures:
            f.set_result(None)
        done.set()

    mb = MicroBatcher(flush, window_s=0.001, max_batch=3)
    for round_no in range(20):
        done.clear()
        futs = [mb.submit("k", (round_no, i)) for i in range(3)]
        assert done.wait(timeout=5)
        for f in futs:
            f.result(timeout=5)
    assert sum(len(p) for p in flushes) == 60
    mb.close()


def test_microbatcher_validates_parameters():
    with pytest.raises(ValueError):
        MicroBatcher(lambda *a: None, window_s=-1)
    with pytest.raises(ValueError):
        MicroBatcher(lambda *a: None, max_batch=0)


def test_future_type_is_concurrent_futures():
    mb, _ = _collecting_batcher(window_s=0.0)
    assert isinstance(mb.submit("k", 1), Future)
    mb.close()
