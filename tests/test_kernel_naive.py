"""Unit tests for the naive strawman kernel."""

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.gpusim.cost import CostModel
from repro.gpusim.engine import simulate_warp_accesses
from repro.gpusim.spec import KEPLER_K40C
from repro.kernels.naive import NaiveKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel

from tests.helpers import assert_kernel_correct


def make(dims, perm, **kw):
    return NaiveKernel(TensorLayout(dims), Permutation(perm), **kw)


class TestCorrectness:
    @pytest.mark.parametrize(
        "dims,perm",
        [
            ((32, 8, 10), (2, 1, 0)),
            ((7, 9, 11), (1, 2, 0)),
            ((5, 5), (1, 0)),
            ((3, 4, 5, 6), (3, 1, 0, 2)),
        ],
    )
    def test_correct(self, dims, perm, rng):
        assert_kernel_correct(make(dims, perm), rng)

    def test_schema(self):
        assert make((5, 5), (1, 0)).schema is Schema.NAIVE


class TestCounters:
    def test_reads_coalesced(self):
        """Input is read in linear order: ld transactions = footprint."""
        c = make((32, 32, 32), (2, 1, 0)).counters()
        assert c.dram_ld_tx == 32**3 * 8 // 128

    def test_writes_scattered(self):
        """A full reversal scatters stores across lines."""
        c = make((32, 32, 32), (2, 1, 0)).counters()
        assert c.dram_st_tx > 4 * c.dram_ld_tx

    def test_detailed_matches_on_stores(self):
        k = make((32, 8, 10), (2, 1, 0))
        ana = k.counters()
        det = simulate_warp_accesses(k.trace(), KEPLER_K40C)
        # Store sampling extrapolates; exact here because all warps alike.
        assert ana.dram_st_tx == det.dram_st_tx
        assert ana.dram_ld_tx == det.dram_ld_tx

    def test_special_ops_per_element_arithmetic(self):
        c = make((32, 8, 10), (2, 1, 0)).counters()
        assert c.special_ops > 0


class TestStrawmanStory:
    def test_naive_much_slower_than_tiled(self):
        """The Sec. I motivation: tiling beats the naive loop by a wide
        margin on a transpose-unfriendly permutation."""
        dims, perm = (256, 16, 256), (2, 1, 0)
        naive = make(dims, perm)
        tiled = OrthogonalDistinctKernel(
            TensorLayout(dims), Permutation(perm), 1, 1, 1, 1
        )
        cm = CostModel()
        assert naive.simulated_time(cm) > 3 * tiled.simulated_time(cm)
