"""Unit tests for the shared kernel machinery (repro.kernels.common)."""

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.gpusim.engine import _LineCache
from repro.kernels.common import (
    Coverage,
    DimCoverage,
    SliceCoverage,
    ceil_div,
    effective_runs,
    lattice_run_transactions,
    reference_transpose,
    strides_lattice,
    tile_cycles,
    weighted_slice_cycles,
)


class TestReferenceTranspose:
    def test_matches_manual_element_mapping(self):
        layout = TensorLayout((3, 4, 5))
        perm = Permutation((2, 0, 1))
        src = np.arange(60)
        out = reference_transpose(src, layout, perm)
        out_layout = layout.permuted(perm)
        for off in range(60):
            idx = layout.delinearize(off)
            out_idx = perm.apply(idx)
            assert out[out_layout.linearize(out_idx)] == src[off]

    def test_identity(self):
        layout = TensorLayout((4, 5))
        src = np.arange(20)
        np.testing.assert_array_equal(
            reference_transpose(src, layout, Permutation((0, 1))), src
        )


class TestSliceCoverage:
    def make(self):
        layout = TensorLayout((8, 5, 6, 7))
        perm = Permutation((2, 1, 3, 0))
        covs = [
            DimCoverage(0, Coverage.FULL),
            DimCoverage(1, Coverage.BLOCK, 2),
            DimCoverage(2, Coverage.FULL),
            DimCoverage(3, Coverage.OUTER),
        ]
        return SliceCoverage(layout, perm, covs)

    def test_num_blocks(self):
        cov = self.make()
        assert cov.num_blocks == ceil_div(5, 2) * 7  # 3 * 7

    def test_slice_volume(self):
        assert self.make().slice_volume() == 8 * 2 * 6

    def test_outer_dims(self):
        assert self.make().outer_dims() == (1, 3)

    def test_variants_cover_all_blocks(self):
        cov = self.make()
        assert sum(v.count for v in cov.variants()) == cov.num_blocks

    def test_variants_sizes(self):
        cov = self.make()
        sizes = sorted(v.sizes[1] for v in cov.variants())
        assert sizes == [1, 2]  # remainder 1, full block 2

    def test_block_bases_are_valid_offsets(self):
        cov = self.make()
        in_base, out_base, variant = cov.block_bases()
        assert len(in_base) == cov.num_blocks
        assert in_base.min() >= 0
        assert in_base.max() < cov.layout.volume
        assert out_base.max() < cov.out_layout.volume
        assert set(np.unique(variant)) <= {0, 1}

    def test_block_bases_distinct(self):
        cov = self.make()
        in_base, _, _ = cov.block_bases()
        assert len(np.unique(in_base)) == len(in_base)

    def test_variant_ids_match_order(self):
        cov = self.make()
        _, _, variant = cov.block_bases()
        order = cov.variants_order()
        # id 0 = full block(2) on dim 1; id 1 = remainder (1).
        assert order[0][1] == 2
        assert order[1][1] == 1
        # The remainder position is the last along dim 1 (every 3rd).
        assert np.all(variant.reshape(7, 3)[:, 2] == 1)

    def test_rejects_incomplete_coverage(self):
        layout = TensorLayout((4, 4))
        with pytest.raises(ValueError):
            SliceCoverage(
                layout, Permutation((1, 0)), [DimCoverage(0, Coverage.FULL)]
            )


class TestEffectiveRuns:
    def cov(self, spec):
        return {d: DimCoverage(d, c, b) for d, (c, b) in spec.items()}

    def test_covered_prefix(self):
        """Fully covered fast dims form the base run."""
        runs = effective_runs(
            range(3),
            self.cov({0: (Coverage.FULL, 1), 1: (Coverage.OUTER, 1), 2: (Coverage.OUTER, 1)}),
            (16, 5, 7),
            16 * 5 * 7,
            resident_blocks=1,
        )
        # dim 1 cannot chain (only 1 resident block) -> runs of 16.
        assert runs == [(35, 16)]

    def test_outer_dim_chains_within_residency(self):
        runs = effective_runs(
            range(3),
            self.cov({0: (Coverage.FULL, 1), 1: (Coverage.OUTER, 1), 2: (Coverage.OUTER, 1)}),
            (16, 5, 7),
            16 * 5 * 7,
            resident_blocks=240,
        )
        # Both outer dims chain: the whole tensor is one span.
        assert runs == [(1, 16 * 5 * 7)]

    def test_blocked_dim_with_remainder_splits(self):
        runs = effective_runs(
            range(2),
            self.cov({0: (Coverage.FULL, 1), 1: (Coverage.BLOCK, 3)}),
            (8, 7),
            56,
            resident_blocks=1,
        )
        # 2 full blocks of 3 and a remainder of 1 per outer setting.
        assert sorted(runs) == [(1, 8 * 1), (2, 8 * 3)]

    def test_blocked_dim_chains_when_resident(self):
        runs = effective_runs(
            range(2),
            self.cov({0: (Coverage.FULL, 1), 1: (Coverage.BLOCK, 3)}),
            (8, 7),
            56,
            resident_blocks=16,
        )
        assert runs == [(1, 56)]

    def test_gap_stops_chain(self):
        """An output-order walk hits a non-fastest grid dim and stops."""
        runs = effective_runs(
            [2, 0, 1],  # output order: dim2 first
            self.cov({0: (Coverage.FULL, 1), 1: (Coverage.OUTER, 1), 2: (Coverage.FULL, 1)}),
            (4, 5, 6),
            120,
            resident_blocks=240,
        )
        # Walk starts at dim2 (covered, x6) then dim0 (covered, x4) then
        # dim1 (outer, and the only grid dim -> fastest) chains.
        assert runs == [(1, 120)]

    def test_total_elements_preserved(self):
        for resident in (1, 4, 240):
            runs = effective_runs(
                range(3),
                self.cov({0: (Coverage.FULL, 1), 1: (Coverage.BLOCK, 2), 2: (Coverage.OUTER, 1)}),
                (8, 5, 6),
                240,
                resident_blocks=resident,
            )
            assert sum(c * r for c, r in runs) == 240


class TestLatticeHelpers:
    def test_lattice_aligned_exact(self):
        # 16 doubles on a 128-byte lattice: exactly one line.
        assert lattice_run_transactions(16, 8, 128) == 1.0

    def test_lattice_unaligned_average(self):
        v = lattice_run_transactions(16, 8, 8)
        assert 1.0 < v < 2.0

    def test_strides_lattice(self):
        assert strides_lattice([256, 384]) == 128
        assert strides_lattice([96]) == 32
        assert strides_lattice([7]) == 1
        assert strides_lattice([]) == 128


class TestCycles:
    def test_exact_full_tile(self):
        assert tile_cycles(32, 32) == 64

    def test_paper_formula_mixed(self):
        # 40 x 40: n1=1 full, n2=n3=1 partial (rem 8), n4=1 corner.
        expect = 1 * 64 + 1 * (32 + 8) + 1 * (8 + 32) + 1 * 16
        assert tile_cycles(40, 40) == expect

    def test_weighted_sum(self):
        assert weighted_slice_cycles([(3, 32, 32), (1, 8, 8)]) == (
            3 * 64 + 16
        )


class TestLineCache:
    def test_compulsory_misses(self):
        c = _LineCache(4)
        assert c.misses(np.array([1, 2, 3])) == 3

    def test_hit_on_recent(self):
        c = _LineCache(4)
        c.misses(np.array([1, 2]))
        assert c.misses(np.array([2, 3])) == 1

    def test_lru_eviction(self):
        c = _LineCache(2)
        c.misses(np.array([1, 2]))
        c.misses(np.array([3]))  # evicts 1
        assert c.misses(np.array([1])) == 1
        assert c.misses(np.array([3])) == 0
