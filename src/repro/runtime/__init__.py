"""Concurrent transpose-serving runtime.

The production layer over the one-shot planning API: a
:class:`TransposeService` accepts requests from many threads, coalesces
identical in-flight plans, serves repeats from the LRU plan cache,
persists plans across process restarts via :class:`PlanStore`, schedules
executions over simulated streams (:class:`StreamScheduler`), and
accounts everything in a :class:`MetricsRegistry`.

See ``docs/runtime.md`` for the architecture, the metrics schema, and
the persistence format.  CLI: ``python -m repro serve`` /
``python -m repro stats``.
"""

from __future__ import annotations

from threading import Lock
from typing import Optional

from repro.runtime.arena import ArenaBlock, BufferArena
from repro.runtime.autotune import ThroughputCalibrator
from repro.runtime.batching import MicroBatcher, SingleFlight
from repro.runtime.metrics import LatencyHistogram, MetricsRegistry
from repro.runtime.procpool import ProcessPool
from repro.runtime.scheduler import ExecutionReport, StreamScheduler
from repro.runtime.service import TransposeService
from repro.runtime.store import (
    PlanStore,
    content_key,
    plan_key,
    rehydrate_plan,
    serialize_plan,
)

__all__ = [
    "TransposeService",
    "StreamScheduler",
    "ExecutionReport",
    "BufferArena",
    "ArenaBlock",
    "ProcessPool",
    "PlanStore",
    "content_key",
    "plan_key",
    "serialize_plan",
    "rehydrate_plan",
    "MetricsRegistry",
    "LatencyHistogram",
    "SingleFlight",
    "MicroBatcher",
    "ThroughputCalibrator",
    "get_default_service",
    "set_default_service",
    "install_default_service",
]

_default_lock = Lock()
_default_service: Optional[TransposeService] = None


def get_default_service() -> Optional[TransposeService]:
    """The installed process-wide service, or None when none is active."""
    return _default_service


def set_default_service(
    service: Optional[TransposeService],
) -> Optional[TransposeService]:
    """Install (or, with None, uninstall) the process-wide service.

    While a default service is installed, the :mod:`repro.core.api`
    entry points route their planning through it.  Returns the previous
    default so callers can restore it.
    """
    global _default_service
    with _default_lock:
        previous = _default_service
        _default_service = service
    return previous


def install_default_service(**kwargs) -> TransposeService:
    """Create a :class:`TransposeService` and install it as the default."""
    service = TransposeService(**kwargs)
    set_default_service(service)
    return service
