"""Unit tests for index fusion (repro.core.fusion)."""

import numpy as np
import pytest

from repro.core.fusion import fuse_indices, scaled_rank
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.kernels.common import reference_transpose


def fuse(dims, perm):
    return fuse_indices(TensorLayout(dims), Permutation(perm))


class TestPaperExamples:
    def test_paper_middle_pair(self):
        """[i0,i1,i2,i3] => [i3,i1,i2,i0]: i1,i2 fuse (Sec. III)."""
        r = fuse((2, 3, 4, 5), (3, 1, 2, 0))
        assert r.layout.dims == (2, 12, 5)
        assert r.perm.mapping == (2, 1, 0)
        assert r.groups == ((0,), (1, 2), (3,))

    def test_scaled_rank_example(self):
        """Perm (0 2 1 3 4 5...) style: contiguous tail fuses."""
        assert scaled_rank((16,) * 6, (0, 2, 1, 3, 4, 5)) == 4

    def test_identity_fuses_to_rank_one(self):
        r = fuse((4, 5, 6), (0, 1, 2))
        assert r.layout.dims == (120,)
        assert r.perm.is_identity()

    def test_reversal_never_fuses(self):
        r = fuse((4, 5, 6, 7), (3, 2, 1, 0))
        assert r.layout.rank == 4


class TestSemantics:
    @pytest.mark.parametrize(
        "dims,perm",
        [
            ((2, 3, 4, 5), (3, 1, 2, 0)),
            ((4, 4, 4, 4), (1, 0, 3, 2)),
            ((2, 2, 2, 2, 2), (4, 2, 3, 0, 1)),
            ((6, 5), (0, 1)),
            ((3, 1, 4), (2, 1, 0)),
        ],
    )
    def test_fused_transpose_equals_original(self, dims, perm):
        """The fused problem must move data identically: the output
        linearizations agree element for element."""
        layout, p = TensorLayout(dims), Permutation(perm)
        r = fuse_indices(layout, p)
        src = np.arange(layout.volume, dtype=np.int64)
        ref = reference_transpose(src, layout, p)
        fused_ref = reference_transpose(src, r.layout, r.perm)
        np.testing.assert_array_equal(ref, fused_ref)

    def test_volume_preserved(self):
        r = fuse((3, 4, 5, 6), (2, 3, 0, 1))
        assert r.layout.volume == 360

    def test_groups_partition_in_input_order(self):
        r = fuse((2, 3, 4, 5, 6), (4, 0, 1, 2, 3))
        flat = [d for g in r.groups for d in g]
        assert flat == sorted(flat)

    def test_fused_perm_consistent_with_groups(self):
        """Fused output order must list groups by their output position."""
        dims, perm = (2, 3, 4, 5), (1, 2, 3, 0)
        r = fuse(dims, perm)
        out_pos = {j: i for i, j in enumerate(perm)}
        group_pos = [out_pos[g[0]] for g in r.groups]
        expected_order = sorted(
            range(len(r.groups)), key=lambda t: group_pos[t]
        )
        assert list(r.perm.mapping) == expected_order


class TestExtentOne:
    def test_extent_one_dims_dropped(self):
        r = fuse((4, 1, 5), (2, 1, 0))
        assert 1 not in r.layout.dims
        assert r.layout.volume == 20

    def test_all_ones(self):
        r = fuse((1, 1, 1), (2, 0, 1))
        assert r.layout.dims == (1,)
        assert r.perm.is_identity()

    def test_extent_one_bridges_fusion(self):
        """(4, 1, 5) with perm keeping 4 before 5 in output: the size-1
        dim drops and the 4,5 pair may fuse if adjacent in output."""
        r = fuse((4, 1, 5), (0, 1, 2))
        assert r.layout.dims == (20,)

    def test_semantics_with_ones(self):
        dims, perm = (3, 1, 4, 1, 2), (4, 2, 3, 0, 1)
        layout, p = TensorLayout(dims), Permutation(perm)
        r = fuse_indices(layout, p)
        src = np.arange(layout.volume, dtype=np.int64)
        np.testing.assert_array_equal(
            reference_transpose(src, layout, p),
            reference_transpose(src, r.layout, r.perm),
        )


class TestScaledRankDistribution:
    def test_6d_all_perms_ranks_in_range(self):
        import itertools

        ranks = [
            scaled_rank((16,) * 6, p)
            for p in itertools.permutations(range(6))
        ]
        assert min(ranks) == 1  # identity
        assert max(ranks) == 6
        # The paper's charts show every scaled rank 1..6 populated.
        assert set(ranks) == {1, 2, 3, 4, 5, 6}

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            fuse_indices(TensorLayout((2, 3)), Permutation((0, 1, 2)))
