"""Worker-pool scheduler dispatching executions across simulated streams.

Each worker thread owns one simulated *stream* — an execution lane with
its own :class:`~repro.gpusim.cost.CostModel` and a monotonically
advancing simulated clock (the sum of simulated kernel times it has
retired).  Streams may be spread round-robin over several simulated
devices.  Jobs are pulled from one shared FIFO, so dispatch is
least-loaded by construction; the registry's ``queue_depth`` gauge and
``queue_depth_peak`` high-water mark expose backlog.

Per-schema simulated and wall (host) execution times are recorded into
the metrics registry, giving the ``sim_s.<schema>`` / ``wall_s.<schema>``
histograms documented in ``docs/runtime.md``.  Executions run through
the compiled-executor layer (``docs/executor.md``): program-cache hits
and misses are counted (``exec_cache_hits`` / ``exec_cache_misses``)
and the wall time of warm vs cold calls is recorded separately
(``exec_warm_s`` / ``exec_cold_s`` histograms).  One large execution
can also be split across the whole pool with
:meth:`StreamScheduler.submit_partitioned`, and ``B`` same-geometry
operands run as one fused batched program via
:meth:`StreamScheduler.submit_batch` (split along the batch axis).
For both, the part count defaults to what the attached
:class:`~repro.runtime.autotune.ThroughputCalibrator` has measured to
be fastest for the program kind and payload size — finished runs feed
their wall time back into the calibrator.
"""

from __future__ import annotations

import queue
import time
from concurrent.futures import Future
from dataclasses import dataclass
from threading import Lock, Thread
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.plan import TransposePlan
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.kernels.executor import executor_with_status
from repro.runtime.autotune import ThroughputCalibrator
from repro.runtime.metrics import MetricsRegistry

_SHUTDOWN = object()


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of one dispatched transposition (or batch of them)."""

    stream: int
    device: str
    schema: str
    #: Simulated GPU time of the kernel launch, in seconds.
    sim_time_s: float
    #: Host (wall) time spent moving the data functionally, in seconds.
    wall_time_s: float
    #: Time the job spent queued before a stream picked it up.
    queued_s: float
    #: Transposed flat data, when the job carried a payload.  Batched
    #: jobs carry the ``(B, volume)`` stack of per-operand outputs.
    output: Optional[np.ndarray]
    #: Disjoint tasks the execution was split into (1 = unsplit).
    parts: int = 1
    #: Operands moved by the job (``> 1`` only for batched jobs).
    batch: int = 1


class _PartitionedJob:
    """Shared state of one execution split into disjoint tasks.

    Workers invoke ``runner(task)`` against one shared output buffer —
    for partitioned jobs the tasks are :meth:`~repro.kernels.executor
    .ExecutorProgram.partition` tasks, for batched jobs they are ranges
    of the batch axis.  The last task to retire resolves the future.
    """

    def __init__(
        self,
        plan: TransposePlan,
        program,
        runner: Callable[[tuple], None],
        src: np.ndarray,
        out: np.ndarray,
        fut: "Future[ExecutionReport]",
        enqueued: float,
        total: int,
        batch: int = 1,
    ):
        self.plan = plan
        self.program = program
        self.runner = runner
        self.src = src
        self.out = out
        self.fut = fut
        self.enqueued = enqueued
        self.lock = Lock()
        self.parts = total
        self.remaining = total
        self.batch = batch
        self.started: Optional[float] = None
        self.failed = False
        self.cancelled = False


@dataclass(frozen=True)
class _PartTask:
    job: _PartitionedJob
    task: tuple


class StreamScheduler:
    """Dispatch plan executions over ``num_streams`` worker threads."""

    def __init__(
        self,
        num_streams: int = 4,
        devices: Optional[Sequence[DeviceSpec]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tuner: Optional[ThroughputCalibrator] = None,
    ):
        if num_streams <= 0:
            raise ValueError(f"num_streams must be positive, got {num_streams}")
        self.devices: List[DeviceSpec] = list(devices) if devices else [KEPLER_K40C]
        self.num_streams = num_streams
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Online parts auto-tuner consulted when ``parts`` is omitted;
        #: finished split jobs feed their wall time back into it.
        self.tuner = tuner
        self._stream_devices = [
            self.devices[i % len(self.devices)] for i in range(num_streams)
        ]
        self._cost_models = [CostModel(d) for d in self._stream_devices]
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = Lock()
        self._sim_clocks = [0.0] * num_streams
        self._jobs_done = [0] * num_streams
        self._closed = False
        self._workers = [
            Thread(target=self._worker, args=(i,), daemon=True, name=f"stream-{i}")
            for i in range(num_streams)
        ]
        for w in self._workers:
            w.start()

    # ------------------------------------------------------------------
    def submit(
        self, plan: TransposePlan, payload: Optional[np.ndarray] = None
    ) -> "Future[ExecutionReport]":
        """Enqueue one execution; resolves to an :class:`ExecutionReport`."""
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        fut: "Future[ExecutionReport]" = Future()
        self._queue.put((plan, payload, fut, time.perf_counter()))
        depth = self._queue.qsize()
        self.metrics.set_gauge("queue_depth", depth)
        self.metrics.max_gauge("queue_depth_peak", depth)
        return fut

    def _pick_parts(self, kind: str, total_bytes: int) -> int:
        """The part count for a split job: the calibrated winner when a
        tuner is attached, the stream count otherwise."""
        if self.tuner is not None:
            return self.tuner.choose(kind, total_bytes)
        return self.num_streams

    def _enqueue_split(self, job: "_PartitionedJob", tasks) -> None:
        for task in tasks:
            self._queue.put(_PartTask(job, task))
        depth = self._queue.qsize()
        self.metrics.set_gauge("queue_depth", depth)
        self.metrics.max_gauge("queue_depth_peak", depth)

    def submit_partitioned(
        self,
        plan: TransposePlan,
        payload: np.ndarray,
        parts: Optional[int] = None,
    ) -> "Future[ExecutionReport]":
        """Execute ONE transposition split across the worker pool.

        The plan's compiled program is partitioned into up to ``parts``
        disjoint output-covering tasks that workers retire concurrently
        against a shared output buffer; the future resolves when the
        last task lands, carrying the full output.  Wall time spans
        first task start to last task end.  Without ``parts`` the count
        comes from the attached auto-tuner's online calibration (the
        stream count when no tuner is attached).
        """
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        program, hit = executor_with_status(plan.kernel)
        self.metrics.inc("exec_cache_hits" if hit else "exec_cache_misses")
        src = plan.kernel.check_input(payload)
        out = np.empty(plan.kernel.volume, dtype=src.dtype)
        if parts is None:
            parts = self._pick_parts(program.kind, src.nbytes)
        tasks = program.partition(parts)
        fut: "Future[ExecutionReport]" = Future()
        job = _PartitionedJob(
            plan,
            program,
            lambda task: program.run_part(src, out, task),
            src,
            out,
            fut,
            time.perf_counter(),
            len(tasks),
        )
        self._enqueue_split(job, tasks)
        return fut

    def submit_batch(
        self,
        plan: TransposePlan,
        payloads: Sequence[np.ndarray],
        parts: Optional[int] = None,
    ) -> "Future[ExecutionReport]":
        """Execute ``B`` same-geometry operands as one batched program.

        The payloads are stacked into a ``(B, volume)`` block and moved
        by the compiled program's fused :meth:`~repro.kernels.executor
        .ExecutorProgram.run_batch` — split along the batch axis into up
        to ``parts`` row ranges that workers retire concurrently.  The
        future resolves to an :class:`ExecutionReport` whose ``output``
        is the ``(B, volume)`` stack of per-operand results.  Without
        ``parts`` the split comes from the auto-tuner, as in
        :meth:`submit_partitioned`.
        """
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        if not len(payloads):
            raise ValueError("submit_batch requires at least one payload")
        program, hit = executor_with_status(plan.kernel)
        self.metrics.inc("exec_cache_hits" if hit else "exec_cache_misses")
        srcs = program.batch_view(
            [plan.kernel.check_input(p) for p in payloads]
        )
        outs = np.empty_like(srcs)
        rows = srcs.shape[0]
        if parts is None:
            parts = self._pick_parts(program.kind, srcs.nbytes)
        nparts = max(1, min(parts, rows))
        bounds = np.linspace(0, rows, nparts + 1, dtype=np.int64)
        tasks = [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        fut: "Future[ExecutionReport]" = Future()
        job = _PartitionedJob(
            plan,
            program,
            lambda task: program.run_batch(
                srcs[task[0] : task[1]], out=outs[task[0] : task[1]]
            ),
            srcs,
            outs,
            fut,
            time.perf_counter(),
            len(tasks),
            batch=rows,
        )
        self._enqueue_split(job, tasks)
        return fut

    def _run_part(self, stream: int, item: _PartTask) -> None:
        job = item.job
        now = time.perf_counter()
        with job.lock:
            if job.started is None:
                job.started = now
                if not job.fut.set_running_or_notify_cancel():
                    job.cancelled = True
            skip = job.cancelled or job.failed
        if not skip:
            try:
                job.runner(item.task)
            except BaseException as exc:
                with job.lock:
                    already = job.failed
                    job.failed = True
                if not already:
                    self.metrics.inc("executions_failed")
                    job.fut.set_exception(exc)
        with job.lock:
            job.remaining -= 1
            last = job.remaining == 0
            finalize = last and not (job.cancelled or job.failed)
        if not finalize:
            return
        plan = job.plan
        # A batched job retires the simulated work of B launches.
        sim = plan.simulated_time() * max(1, job.batch)
        wall = time.perf_counter() - job.started
        with self._lock:
            self._sim_clocks[stream] += sim
            self._jobs_done[stream] += 1
        schema = plan.schema.value
        self.metrics.inc("executions_completed")
        if job.batch > 1:
            self.metrics.inc("batch_rows", job.batch)
        self.metrics.observe(f"sim_s.{schema}", sim)
        self.metrics.observe(f"wall_s.{schema}", wall)
        self.metrics.set_gauge("queue_depth", self._queue.qsize())
        if self.tuner is not None:
            self.tuner.record(
                job.program.kind, job.src.nbytes, job.parts, wall
            )
        job.fut.set_result(
            ExecutionReport(
                stream=stream,
                device=self._stream_devices[stream].name,
                schema=schema,
                sim_time_s=sim,
                wall_time_s=wall,
                queued_s=job.started - job.enqueued,
                output=job.out,
                parts=job.parts,
                batch=job.batch,
            )
        )

    def _worker(self, stream: int) -> None:
        cm = self._cost_models[stream]
        device = self._stream_devices[stream]
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            if isinstance(item, _PartTask):
                self._run_part(stream, item)
                continue
            plan, payload, fut, enqueued = item
            if not fut.set_running_or_notify_cancel():
                continue
            started = time.perf_counter()
            try:
                output = None
                if payload is not None:
                    program, hit = executor_with_status(plan.kernel)
                    self.metrics.inc(
                        "exec_cache_hits" if hit else "exec_cache_misses"
                    )
                    output = program.run(plan.kernel.check_input(payload))
                # Use the stream's own cost model only when the plan was
                # built for this stream's device; a foreign plan keeps
                # its own device's timing.
                if plan.kernel.spec is device:
                    sim = plan.simulated_time(cm)
                else:
                    sim = plan.simulated_time()
                wall = time.perf_counter() - started
                with self._lock:
                    self._sim_clocks[stream] += sim
                    self._jobs_done[stream] += 1
                schema = plan.schema.value
                self.metrics.inc("executions_completed")
                self.metrics.observe(f"sim_s.{schema}", sim)
                self.metrics.observe(f"wall_s.{schema}", wall)
                if payload is not None:
                    self.metrics.observe(
                        "exec_warm_s" if hit else "exec_cold_s", wall
                    )
                self.metrics.set_gauge("queue_depth", self._queue.qsize())
                fut.set_result(
                    ExecutionReport(
                        stream=stream,
                        device=device.name,
                        schema=schema,
                        sim_time_s=sim,
                        wall_time_s=wall,
                        queued_s=started - enqueued,
                        output=output,
                    )
                )
            except BaseException as exc:
                self.metrics.inc("executions_failed")
                fut.set_exception(exc)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "num_streams": self.num_streams,
                "devices": [d.name for d in self.devices],
                "sim_clock_s": list(self._sim_clocks),
                "jobs_done": list(self._jobs_done),
                "queue_depth": self._queue.qsize(),
            }

    def shutdown(self, wait: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for w in self._workers:
                w.join()

    def __enter__(self) -> "StreamScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
