"""Batched execution throughput: fused run_batch vs a per-request loop,
and the online auto-partitioner vs hand-picked ``parts``.

Two sections:

**batched** — for small same-permutation workloads (every case moves
<= 32 KiB per operand), times B operands moved by one fused
:meth:`~repro.kernels.executor.ExecutorProgram.run_batch` against the
same B operands moved by B individual warm ``run()`` calls.  Both paths
use the same compiled program and are asserted bit-identical before
anything is timed.  The >=3x acceptance gate applies to the
dispatch-bound cases (<= 4 KiB operands, view-lowered programs — the
regime micro-batching exists for: a contraction chain's many tiny
same-permutation transposes).  Larger operands are reported but not
gated: by 16-32 KiB the stacked copy itself dominates and fusing
honestly yields 1.4-2.6x, approaching 1x as operands grow — the same
bandwidth floor the exec-throughput benchmark documents for its
reversed-permutation case.

**autotune** — for 6D orthogonal problems through the serving runtime's
partitioned path, measures every hand-picked ``parts`` candidate
explicitly (which also feeds the calibrator), then lets the
auto-partitioner choose (``parts=None``) and reports how close the
auto-chosen throughput lands to the best hand-picked candidate.

Run directly::

    PYTHONPATH=src python benchmarks/bench_batched_throughput.py

writes a JSON summary to ``results/batched_throughput.json``.  CI runs
``--smoke``: fewer repeats, no file output, and a hard failure when the
fused batched path is not comfortably faster than the per-request loop
— so a future change cannot silently un-fuse batched execution.  The
autotune ratio is reported in smoke mode but only gated in the
committed full results (it measures a scheduling choice, too noisy for
shared CI runners).
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

import numpy as np

from conftest import bench_parser, gate, interleaved_ms, pick_repeats
from repro.core.plan import make_plan
from repro.kernels.executor import clear_exec_caches

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent
    / "results"
    / "batched_throughput.json"
)

#: Batched cases: every operand is <= 32 KiB of f64.  The gated cases
#: are the dispatch-bound regime (see module docstring).
#: name -> (dims, perm, gated).
BATCH_CASES = {
    "3d-2KiB": ((8, 8, 4), (2, 1, 0), True),
    "3d-4KiB": ((8, 8, 8), (2, 1, 0), True),
    "3d-4KiB-rot": ((16, 8, 4), (1, 2, 0), True),
    "4d-4KiB": ((8, 4, 8, 2), (2, 3, 0, 1), True),
    # Full reversal: the strided-copy worst case (compare the exec
    # benchmark's od-6d-reverse) — hovers right at 3x, reported only.
    "4d-4KiB-rev": ((8, 4, 4, 4), (3, 2, 1, 0), False),
    "3d-8KiB": ((16, 8, 8), (2, 1, 0), False),
    "4d-16KiB": ((16, 8, 4, 4), (3, 2, 1, 0), False),
    "6d-32KiB": ((4, 4, 4, 4, 4, 4), (5, 4, 3, 2, 1, 0), False),
}

#: 6D orthogonal problems for the auto-partitioner section.
AUTOTUNE_CASES = {
    "oa-6d": ((16, 8, 4, 8, 4, 16), (5, 4, 3, 2, 1, 0)),
    "oa-6d-partial": ((4, 16, 8, 8, 16, 4), (2, 3, 4, 5, 0, 1)),
}

#: Smoke threshold: the committed full run shows >=3x; 2x keeps slow
#: shared CI runners green while still failing any un-fused regression.
SMOKE_MIN_SPEEDUP = 2.0

#: Committed-results gate: auto-chosen parts must land within 10% of
#: the best hand-picked candidate (checked in full mode only).
MIN_AUTO_RATIO = 0.9


_interleaved_ms = interleaved_ms


# ----------------------------------------------------------------------
# Section 1: fused run_batch vs per-request loop
# ----------------------------------------------------------------------


def bench_batch_case(dims, perm, batch, repeats):
    plan = make_plan(dims, perm)
    program = plan.executor()
    volume = plan.layout.volume
    rng = np.random.default_rng(7)
    srcs = rng.standard_normal((batch, volume))
    outs_loop = np.empty_like(srcs)
    outs_fused = np.empty_like(srcs)

    # Parity first: the fused stack must equal B independent runs.
    fused = program.run_batch(srcs)
    for i in range(batch):
        assert np.array_equal(fused[i], program.run(srcs[i])), "batch parity"

    def per_request():
        for i in range(batch):
            program.run(srcs[i], out=outs_loop[i])

    def batched():
        program.run_batch(srcs, out=outs_fused)

    timed = _interleaved_ms(
        {"per_request": per_request, "batched": batched}, repeats
    )
    per_ms, per_med = timed["per_request"]
    fused_ms, fused_med = timed["batched"]
    bytes_moved = 2 * srcs.nbytes  # one read + one write of the stack
    return {
        "schema": plan.schema.value,
        "program": program.kind,
        "batch": batch,
        "operand_bytes": volume * 8,
        "per_request_ms": round(per_ms, 4),
        "per_request_median_ms": round(per_med, 4),
        "batched_ms": round(fused_ms, 4),
        "batched_median_ms": round(fused_med, 4),
        "batched_gbps": round(bytes_moved / (fused_ms * 1e-3) / 1e9, 2),
        "speedup_vs_per_request": round(per_ms / fused_ms, 2),
    }


# ----------------------------------------------------------------------
# Section 2: auto-partitioner vs hand-picked parts
# ----------------------------------------------------------------------


def bench_autotune_case(dims, perm, repeats, streams=4):
    from repro.runtime import TransposeService

    with TransposeService(num_streams=streams) as service:
        volume = int(np.prod(dims))
        src = np.random.default_rng(11).standard_normal(volume)
        candidates = service.autotuner.candidates
        # Calibration pre-phase (untimed): warm the plan, the compiled
        # program, and the worker pool, and feed the calibrator enough
        # samples of every candidate that the auto path measures
        # instead of exploring.
        for _ in range(max(2, service.autotuner.min_samples)):
            for p in candidates:
                service.execute_partitioned(dims, perm, payload=src, parts=p)

        # One interleaved timed phase: every hand-picked candidate AND
        # the auto path, round-robin, so host drift cannot bias the
        # comparison toward whichever side ran first.
        auto_parts = []
        fns = {
            f"parts={p}": (
                lambda p=p: service.execute_partitioned(
                    dims, perm, payload=src, parts=p
                )
            )
            for p in candidates
        }
        fns["auto"] = lambda: auto_parts.append(
            service.execute_partitioned(dims, perm, payload=src).parts
        )
        timed = _interleaved_ms(fns, repeats)
        hand = {
            p: round(timed[f"parts={p}"][0], 4) for p in candidates
        }
        best_parts, best_ms = min(hand.items(), key=lambda kv: kv[1])
        auto_ms = timed["auto"][0]
    return {
        "volume": volume,
        "streams": streams,
        "hand_picked_ms": {str(p): ms for p, ms in hand.items()},
        "best_hand_parts": best_parts,
        "best_hand_ms": best_ms,
        "auto_ms": round(auto_ms, 4),
        "auto_parts_chosen": sorted(set(auto_parts)),
        "auto_vs_best_ratio": round(best_ms / auto_ms, 3),
    }


# ----------------------------------------------------------------------


def run(repeats, batch):
    clear_exec_caches()
    batched = {}
    for name, (dims, perm, gated) in BATCH_CASES.items():
        row = bench_batch_case(dims, perm, batch, repeats)
        row["acceptance_gated"] = gated
        batched[name] = row
    autotune = {
        name: bench_autotune_case(dims, perm, repeats)
        for name, (dims, perm) in AUTOTUNE_CASES.items()
    }
    return batched, autotune


def main(argv=None):
    ap = bench_parser(__doc__.splitlines()[0])
    ap.add_argument("--batch", type=int, default=None)
    ap.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = ap.parse_args(argv)

    repeats = pick_repeats(args, full=11)
    batch = args.batch if args.batch is not None else (32 if args.smoke else 64)
    batched, autotune = run(repeats, batch)

    print(
        f"{'case':<12s} {'schema':<22s} {'prog':<8s} {'KiB':>5s} "
        f"{'per-req':>9s} {'batched':>9s} {'GB/s':>7s} {'speedup':>8s}"
    )
    for name, r in batched.items():
        print(
            f"{name:<12s} {r['schema']:<22s} {r['program']:<8s} "
            f"{r['operand_bytes'] // 1024:>5d} "
            f"{r['per_request_ms']:>7.3f}ms {r['batched_ms']:>7.3f}ms "
            f"{r['batched_gbps']:>7.2f} {r['speedup_vs_per_request']:>7.2f}x"
        )
    print()
    for name, r in autotune.items():
        hand = "  ".join(
            f"p={p}:{ms:.2f}ms" for p, ms in r["hand_picked_ms"].items()
        )
        print(
            f"{name:<16s} best hand p={r['best_hand_parts']} "
            f"({r['best_hand_ms']:.2f}ms)  auto {r['auto_ms']:.2f}ms "
            f"(chose {r['auto_parts_chosen']}, "
            f"ratio {r['auto_vs_best_ratio']})  [{hand}]"
        )

    if args.smoke:
        failures = [
            f"{name}: batched speedup {r['speedup_vs_per_request']}x < "
            f"{SMOKE_MIN_SPEEDUP}x over per-request loop"
            for name, r in batched.items()
            if r["acceptance_gated"]
            and r["speedup_vs_per_request"] < SMOKE_MIN_SPEEDUP
        ]
        return gate("BATCHED THROUGHPUT REGRESSION", failures, smoke=True)

    gated = [
        r["speedup_vs_per_request"]
        for r in batched.values()
        if r["acceptance_gated"]
    ]
    ratios = [r["auto_vs_best_ratio"] for r in autotune.values()]
    failures = []
    if min(gated) < 3.0:
        failures.append(
            f"min batched speedup {min(gated)}x < 3x acceptance threshold"
        )
    if min(ratios) < MIN_AUTO_RATIO:
        failures.append(
            f"auto-partitioner ratio {min(ratios)} < {MIN_AUTO_RATIO}"
        )
    summary = {
        "repeats": repeats,
        "batch": batch,
        "min_gated_speedup": math.floor(min(gated) * 100) / 100,
        "min_auto_vs_best_ratio": min(ratios),
        "batched": batched,
        "autotune": autotune,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.out}")
    return gate("ACCEPTANCE THRESHOLDS NOT MET", failures)


if __name__ == "__main__":
    sys.exit(main())
