"""High-rank support (the paper's Sec. IV-B supports tensors to rank 15)."""

import numpy as np
import pytest

import repro
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.kernels.common import reference_transpose
from repro.model.pretrained import oracle_predictor

ORACLE = oracle_predictor()


class TestHighRank:
    def test_rank_10_reversal(self, rng):
        dims = (2,) * 10
        perm = tuple(range(9, -1, -1))
        plan = repro.make_plan(dims, perm, predictor=ORACLE)
        src = rng.standard_normal(1024)
        ref = reference_transpose(src, TensorLayout(dims), Permutation(perm))
        np.testing.assert_array_equal(plan.execute(src), ref)

    def test_rank_15_shuffle(self, rng):
        dims = (2,) * 15
        perm = (14, 0, 13, 1, 12, 2, 11, 3, 10, 4, 9, 5, 8, 6, 7)
        plan = repro.make_plan(dims, perm, predictor=ORACLE)
        src = rng.standard_normal(2**15)
        ref = reference_transpose(src, TensorLayout(dims), Permutation(perm))
        np.testing.assert_array_equal(plan.execute(src), ref)
        assert plan.simulated_time() > 0

    def test_rank_8_mixed_extents(self, rng):
        dims = (3, 2, 5, 2, 4, 2, 3, 2)
        perm = (6, 1, 4, 7, 0, 3, 2, 5)
        plan = repro.make_plan(dims, perm, predictor=ORACLE)
        src = rng.standard_normal(plan.layout.volume)
        ref = reference_transpose(src, TensorLayout(dims), Permutation(perm))
        np.testing.assert_array_equal(plan.execute(src), ref)

    def test_high_rank_fuses_down(self):
        """Rank 12 with long fusible tails collapses to a small problem."""
        dims = (4,) * 12
        perm = (6, 7, 8, 9, 10, 11, 0, 1, 2, 3, 4, 5)
        plan = repro.make_plan(dims, perm, predictor=ORACLE)
        assert plan.fused.scaled_rank == 2

    def test_predict_time_high_rank(self):
        est = repro.predict_time((2,) * 12, tuple(range(11, -1, -1)))
        assert est.kernel_time > 0
