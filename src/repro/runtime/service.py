"""The concurrent transpose-serving front door.

:class:`TransposeService` is what a long-running process embeds: many
threads submit transpositions; the service coalesces identical in-flight
planning requests (single-flight), serves repeats from the LRU cache,
warm-starts the cache from a persistent :class:`PlanStore` across
process restarts, dispatches executions over a pool of simulated
streams, and accounts everything in a :class:`MetricsRegistry`.

Beyond per-request dispatch, the service micro-batches: concurrent
:meth:`~TransposeService.submit_batched` requests for the same plan key
within a bounded window coalesce into **one fused batched program run**
(see :class:`~repro.runtime.batching.MicroBatcher` and
``docs/runtime.md``), and partitioned/batched executions pick their
``parts`` split from an online :class:`~repro.runtime.autotune
.ThroughputCalibrator` persisted next to the plan store.

A process-wide default service can be installed so the classic
:mod:`repro.core.api` entry points (``repro.transpose`` etc.) route
through it transparently — see :func:`install_default_service`.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from pathlib import Path
from threading import Event, Lock, Thread
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.cache import DEFAULT_CAPACITY, PlanCache
from repro.core.plan import Predictor, TransposePlan
from repro.errors import DrainingError, InvalidLayoutError
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.model.feedback import DEFAULT_SHADOW_FRACTION, FeedbackLoop
from repro.runtime.autotune import ThroughputCalibrator
from repro.runtime.batching import MicroBatcher, SingleFlight
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.scheduler import ExecutionReport, StreamScheduler
from repro.runtime.store import PlanStore

#: How cache events surface in the metrics registry.
_EVENT_COUNTERS = {
    "hit": "cache_hits",
    "miss": "cache_misses",
    "restore": "plans_restored",
    "build": "plans_built",
    "eviction": "cache_evictions",
    "store_error": "store_errors",
}


class TransposeService:
    """Thread-safe transpose server over the simulated GPU.

    Parameters
    ----------
    spec:
        Default simulated device plans are built for.
    store:
        An existing :class:`PlanStore` to warm-start from (mutually
        exclusive with ``store_path``).
    store_path:
        Path of a JSON plan store to open (created when absent).
    cache_capacity:
        LRU capacity of the in-memory plan cache.
    num_streams / devices:
        Worker pool shape; streams round-robin over ``devices``
        (default: ``[spec]``).
    predictor:
        Optional override of the performance model used when planning
        for ``spec`` (tests use the oracle predictor for speed).
    metrics:
        Share a registry between services; a fresh one by default.
    batch_window_s / batch_max:
        Micro-batching knobs for :meth:`submit_batched`: how long the
        first request of a key waits for same-key company, and the
        batch size that flushes immediately.
    autotune_path:
        Where the parts auto-tuner persists its calibration.  Defaults
        to ``autotune.json`` next to the plan store (in-memory only
        when the service has no store).
    backend / proc_workers / proc_start_method:
        Execution-backend routing (see ``docs/execution-tiers.md``):
        ``thread`` keeps everything on the stream workers, ``process``
        sends eligible large indexed/chunked jobs to the shared-memory
        :class:`~repro.runtime.procpool.ProcessPool` (``proc_workers``
        processes, created lazily), ``codegen`` recompiles them as
        generated cache-blocked loop nests (``docs/codegen.md``) run on
        the stream workers, ``auto`` lets the calibrator's backend axis
        pick per (kind, size) cell across all three.
    arena:
        Share a :class:`~repro.runtime.arena.BufferArena` between
        services; by default the scheduler owns a fresh one.
    program_cache_size / program_cache_bytes:
        When either is set, the service compiles executor programs into
        a **private** bounded LRU instead of the process-wide cache.
        Sharded serving uses this so each replica's cache only holds its
        routed key subset and per-replica hit rate is meaningful (see
        ``docs/serving.md``).
    feedback / shadow_fraction:
        ``feedback=True`` attaches a :class:`~repro.model.feedback
        .FeedbackLoop` (persisted as ``models.json`` next to the plan
        store): executed plans feed per-schema sample reservoirs, a
        ``shadow_fraction`` of traffic is shadow-predicted under every
        tracked model version, and :meth:`retrain_model` fits candidate
        models that promote into live planning only after beating the
        incumbent's predicted-vs-measured error (``docs/model.md``).
        Pass a ready :class:`FeedbackLoop` to share one across
        services.  When the caller supplies ``predictor`` explicitly,
        the loop still records and scores but never overrides it.
    codegen_refine:
        When > 0, codegen compilation keeps the top-K analytic nest
        configurations and a short timed micro-probe on this host picks
        the winner (persisted in the plan store's artifact section, so
        warm restarts skip both search and probe — ``docs/codegen.md``).
    retrain_every / retrain_every_s:
        Scheduled model retraining (requires ``feedback``): a
        background tick calls :meth:`retrain_model` every
        ``retrain_every`` resolved executions and/or every
        ``retrain_every_s`` seconds, so candidate models enter the
        shadow pipeline continuously instead of only when an operator
        remembers to call :meth:`retrain_model` at end of run.
        Retraining runs on the tick thread, never on a stream worker.
    """

    def __init__(
        self,
        spec: DeviceSpec = KEPLER_K40C,
        *,
        store: Optional[PlanStore] = None,
        store_path: Optional[Union[str, Path]] = None,
        cache_capacity: int = DEFAULT_CAPACITY,
        num_streams: int = 4,
        devices: Optional[Sequence[DeviceSpec]] = None,
        predictor: Optional[Predictor] = None,
        metrics: Optional[MetricsRegistry] = None,
        store_autoflush: bool = True,
        batch_window_s: float = 0.002,
        batch_max: int = 64,
        autotune_path: Optional[Union[str, Path]] = None,
        backend: str = "thread",
        proc_workers: Optional[int] = None,
        proc_start_method: Optional[str] = None,
        arena=None,
        program_cache_size: Optional[int] = None,
        program_cache_bytes: Optional[int] = None,
        feedback: Union[bool, FeedbackLoop, None] = None,
        shadow_fraction: Optional[float] = None,
        codegen_refine: int = 0,
        retrain_every: Optional[int] = None,
        retrain_every_s: Optional[float] = None,
    ):
        if store is not None and store_path is not None:
            raise ValueError("pass either store or store_path, not both")
        self.spec = spec
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = store
        if store_path is not None:
            self.store = PlanStore(store_path, autoflush=store_autoflush)
        self.cache = PlanCache(
            cache_capacity, store=self.store, on_event=self._cache_event
        )
        self._predictor = predictor
        # An explicitly supplied predictor is the caller's decision;
        # feedback promotions then score silently instead of replacing
        # it (the stats table still shows who would have won).
        self._user_predictor = predictor is not None
        self.feedback: Optional[FeedbackLoop] = None
        if feedback:
            if isinstance(feedback, FeedbackLoop):
                self.feedback = feedback
            else:
                fb_path = (
                    Path(self.store.path).with_name("models.json")
                    if self.store is not None
                    else None
                )
                self.feedback = FeedbackLoop(
                    fb_path,
                    spec=spec,
                    shadow_fraction=(
                        shadow_fraction
                        if shadow_fraction is not None
                        else DEFAULT_SHADOW_FRACTION
                    ),
                )
            if not self._user_predictor:
                self._predictor = self.feedback.predictor()
        self._flights = SingleFlight()
        if autotune_path is None and self.store is not None:
            autotune_path = Path(self.store.path).with_name("autotune.json")
        # The calibrator cells the service measures: only the backends
        # this configuration can actually route to, so exploration never
        # waits on a backend that will never run.  ``auto`` arbitrates
        # across all three tiers.
        if backend == "thread":
            backends = ("thread",)
        elif backend == "process":
            backends = ("thread", "process")
        elif backend == "codegen":
            backends = ("thread", "codegen")
        else:
            backends = ("thread", "process", "codegen")
        self.autotuner = ThroughputCalibrator(
            pool_size=num_streams, path=autotune_path, backends=backends
        )
        self.program_cache = None
        if program_cache_size is not None or program_cache_bytes is not None:
            from repro.kernels.executor import (
                EXEC_CACHE_MAX_BYTES,
                EXEC_CACHE_MAX_PROGRAMS,
                new_program_cache,
            )

            self.program_cache = new_program_cache(
                maxsize=program_cache_size or EXEC_CACHE_MAX_PROGRAMS,
                max_bytes=program_cache_bytes or EXEC_CACHE_MAX_BYTES,
            )
        self.scheduler = StreamScheduler(
            num_streams=num_streams,
            devices=devices if devices else [spec],
            metrics=self.metrics,
            tuner=self.autotuner,
            backend=backend,
            proc_workers=proc_workers,
            proc_start_method=proc_start_method,
            arena=arena,
            store_path=self.store.path if self.store is not None else None,
            program_cache=self.program_cache,
            store=self.store,
            codegen_refine=codegen_refine,
        )
        self._batcher = MicroBatcher(
            self._flush_batch, window_s=batch_window_s, max_batch=batch_max
        )
        self._closed = False
        self._draining = False
        self._inflight = 0
        self._inflight_lock = Lock()
        self._idle = Event()
        self._idle.set()
        # ---- scheduled retraining tick -------------------------------
        if (retrain_every is not None or retrain_every_s is not None) and (
            self.feedback is None
        ):
            raise ValueError(
                "retrain_every/retrain_every_s require feedback=True"
            )
        if retrain_every is not None and retrain_every <= 0:
            raise ValueError("retrain_every must be positive")
        if retrain_every_s is not None and retrain_every_s <= 0:
            raise ValueError("retrain_every_s must be positive")
        self.retrain_every = retrain_every
        self.retrain_every_s = retrain_every_s
        self._since_retrain = 0
        self._retrain_wake = Event()
        self._retrain_stop = False
        self._retrain_thread: Optional[Thread] = None
        if retrain_every is not None or retrain_every_s is not None:
            self._retrain_thread = Thread(
                target=self._retrain_tick, name="retrain-tick", daemon=True
            )
            self._retrain_thread.start()

    # ------------------------------------------------------------------
    def _cache_event(self, event: str) -> None:
        self.metrics.inc(_EVENT_COUNTERS.get(event, event))

    def _check_intake(self) -> None:
        """Refuse new executions once draining started or after close.

        Planning stays available while draining (micro-batch flushes
        still need it); only the execution entry points are gated.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if self._draining:
            raise DrainingError("service is draining; intake is closed")

    def _track(self, fut):
        """Count a dispatched execution until its future resolves."""
        with self._inflight_lock:
            self._inflight += 1
            self._idle.clear()
        fut.add_done_callback(self._untrack)
        return fut

    def _untrack(self, _fut) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            if self.retrain_every is not None:
                self._since_retrain += 1
                due = self._since_retrain >= self.retrain_every
            else:
                due = False
        if due:
            # Wake the tick thread; retraining never runs on the
            # scheduler thread resolving this future.
            self._retrain_wake.set()

    def _retrain_tick(self) -> None:
        """Background loop behind scheduled retraining.

        Sleeps until the request-count trigger fires
        (:meth:`_untrack` sets the wake event after ``retrain_every``
        resolved executions) or ``retrain_every_s`` elapses, then calls
        :meth:`retrain_model`.  Fit outcomes surface in the metrics
        registry (``model_retrain_ticks`` / ``model_retrain_fits``);
        a failed fit is counted and the loop keeps ticking — scheduled
        retraining must never take the serving path down.
        """
        while True:
            fired = self._retrain_wake.wait(timeout=self.retrain_every_s)
            if self._retrain_stop:
                return
            with self._inflight_lock:
                if fired and self.retrain_every is not None:
                    if self._since_retrain < self.retrain_every:
                        # Spurious wake (e.g. counter reset raced): skip.
                        self._retrain_wake.clear()
                        continue
                self._since_retrain = 0
            self._retrain_wake.clear()
            self.metrics.inc("model_retrain_ticks")
            try:
                version = self.retrain_model()
            except Exception:
                self.metrics.inc("model_retrain_errors")
                continue
            if version is not None:
                self.metrics.inc("model_retrain_fits")

    def _stop_retrain_tick(self) -> None:
        if self._retrain_thread is None:
            return
        self._retrain_stop = True
        self._retrain_wake.set()
        self._retrain_thread.join(timeout=5.0)
        self._retrain_thread = None

    @property
    def inflight(self) -> int:
        """Executions dispatched but not yet resolved."""
        with self._inflight_lock:
            return self._inflight

    def _observe_feedback(self, plan, fut):
        """Feed a resolved execution into the model feedback loop.

        Only jobs that moved real data count (timing-only submissions
        have no ``output``); batched runs contribute their *per-operand*
        wall time so the sample matches what the predictor estimates.
        When a shadow observation promotes a candidate model, planning
        flips to it immediately (unless the caller pinned a predictor).
        """
        if self.feedback is None:
            return fut

        def _cb(f) -> None:
            if f.cancelled() or f.exception() is not None:
                return
            report = f.result()
            if report.output is None or report.wall_time_s <= 0:
                return
            wall = report.wall_time_s / max(1, report.batch)
            promoted = self.feedback.observe(self.metrics, plan.kernel, wall)
            if promoted and not self._user_predictor:
                self._predictor = self.feedback.predictor()

        fut.add_done_callback(_cb)
        return fut

    def retrain_model(self) -> Optional[str]:
        """Fit a candidate model version from accumulated telemetry.

        Returns the new version name (``None`` when no schema has
        enough reservoir samples yet).  The candidate starts shadowed —
        it steers nothing until it out-predicts the incumbent on live
        traffic.  Raises when the service was built without
        ``feedback``.
        """
        if self.feedback is None:
            raise RuntimeError("service was created without feedback=True")
        return self.feedback.retrain(self.metrics)

    def plan(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        spec: Optional[DeviceSpec] = None,
    ) -> TransposePlan:
        """Cache-backed, store-backed, single-flight planning.

        Concurrent requests for the same key share one planning search:
        exactly one caller builds (or restores) the plan, the rest wait
        on it.  Later arrivals hit the LRU.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        spec = spec if spec is not None else self.spec
        predictor = self._predictor if spec is self.spec else None
        self.metrics.inc("plan_requests")
        key = PlanCache._key(dims, perm, elem_bytes, spec)
        started = time.perf_counter()
        plan, leader = self._flights.do(
            key, lambda: self.cache.get(dims, perm, elem_bytes, spec, predictor)
        )
        if not leader:
            self.metrics.inc("requests_coalesced")
        self.metrics.observe("plan_s", time.perf_counter() - started)
        return plan

    # ------------------------------------------------------------------
    @staticmethod
    def _check_payload(
        dims: Sequence[int],
        elem_bytes: int,
        payload: Optional[np.ndarray],
        required: bool = False,
    ) -> Optional[np.ndarray]:
        """Validate a payload against the request at the service door.

        A mismatched payload used to surface as an opaque reshape
        failure deep inside ``kernel.check_input`` on a worker thread;
        here it raises a clear :class:`InvalidLayoutError` before
        anything is planned or enqueued.
        """
        if payload is None:
            if required:
                raise InvalidLayoutError("this call requires a payload to move")
            return None
        arr = np.asarray(payload)
        volume = math.prod(int(d) for d in dims)
        if arr.size != volume:
            raise InvalidLayoutError(
                f"payload has {arr.size} elements, but dims "
                f"{tuple(dims)} require {volume}"
            )
        if arr.dtype.itemsize != elem_bytes:
            raise InvalidLayoutError(
                f"payload dtype {arr.dtype} is {arr.dtype.itemsize} bytes "
                f"per element, but the request says elem_bytes={elem_bytes}"
            )
        return arr

    def submit(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
        out: Optional[np.ndarray] = None,
    ):
        """Plan (coalesced/cached) and enqueue the execution.

        Returns a ``concurrent.futures.Future`` resolving to an
        :class:`~repro.runtime.scheduler.ExecutionReport`.  ``payload``
        is the linearized input data; without it the stream still
        retires the launch on its simulated clock (a timing-only call).
        ``out``, when given, receives the transposed data in place and
        becomes the report's output (no arena lease; the caller owns
        the buffer — the serving layer points this at its own lease so
        replies encode as views over it).
        """
        self._check_intake()
        payload = self._check_payload(dims, elem_bytes, payload)
        if out is not None:
            if payload is None:
                raise InvalidLayoutError("out= requires a payload to move")
            self._check_payload(dims, elem_bytes, out)
        plan = self.plan(dims, perm, elem_bytes, spec)
        self.metrics.inc("executions_submitted")
        return self._track(
            self._observe_feedback(
                plan, self.scheduler.submit(plan, payload, out=out)
            )
        )

    def execute(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
    ) -> ExecutionReport:
        """Blocking :meth:`submit`."""
        return self.submit(dims, perm, elem_bytes, payload, spec).result()

    def submit_partitioned(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
        parts: Optional[int] = None,
        backend: Optional[str] = None,
        lowering: bool = True,
    ):
        """Plan, then execute ONE transposition across the whole pool.

        The plan's compiled executor program is split into up to
        ``parts`` disjoint tasks that the worker streams retire
        concurrently into a shared output buffer — the multi-stream
        analogue of splitting a launch's thread blocks across streams.
        Without ``parts`` the split is chosen by the online
        auto-partitioner (see :attr:`autotuner`), which calibrates
        per-program-kind throughput on the first runs and then picks
        the measured argmax.  Returns a future resolving to an
        :class:`~repro.runtime.scheduler.ExecutionReport`.

        ``backend`` overrides the service's configured execution
        backend for this call; ``lowering=False`` forces index-map
        compilation (see ``docs/execution-tiers.md``).
        """
        self._check_intake()
        if payload is None:
            raise InvalidLayoutError(
                "submit_partitioned requires a payload to move"
            )
        payload = self._check_payload(dims, elem_bytes, payload)
        plan = self.plan(dims, perm, elem_bytes, spec)
        self.metrics.inc("executions_submitted")
        return self._track(
            self._observe_feedback(
                plan,
                self.scheduler.submit_partitioned(
                    plan, payload, parts, backend=backend, lowering=lowering
                ),
            )
        )

    def execute_partitioned(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
        parts: Optional[int] = None,
        backend: Optional[str] = None,
        lowering: bool = True,
    ) -> ExecutionReport:
        """Blocking :meth:`submit_partitioned`."""
        return self.submit_partitioned(
            dims, perm, elem_bytes, payload, spec, parts,
            backend=backend, lowering=lowering,
        ).result()

    # ------------------------------------------------------------------
    def submit_batched(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
    ):
        """Queue one request into the micro-batching window.

        Concurrent requests for the same ``(dims, perm, elem_bytes,
        device)`` key arriving within ``batch_window_s`` (or until
        ``batch_max`` of them are waiting) coalesce into **one** fused
        batched program run over the worker pool — the shape of a
        contraction chain transposing many small same-permutation
        tensors back-to-back.  Returns a future resolving to an
        :class:`~repro.runtime.scheduler.ExecutionReport` whose
        ``output`` is this caller's own transposed payload; ``batch``
        on the report says how many requests shared the run.
        """
        self._check_intake()
        payload = self._check_payload(dims, elem_bytes, payload, required=True)
        spec = spec if spec is not None else self.spec
        dims = tuple(int(d) for d in dims)
        perm = tuple(int(p) for p in perm)
        key = PlanCache._key(dims, perm, elem_bytes, spec)
        self.metrics.inc("batch_requests")
        return self._track(
            self._batcher.submit(
                key, payload, context=(dims, perm, elem_bytes, spec)
            )
        )

    def execute_batched(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
    ) -> ExecutionReport:
        """Blocking :meth:`submit_batched` (waits out the window)."""
        return self.submit_batched(dims, perm, elem_bytes, payload, spec).result()

    def _flush_batch(self, key, context, payloads, futures) -> None:
        """Run one coalesced bucket as a single batched execution."""
        dims, perm, elem_bytes, spec = context
        rows = len(payloads)
        self.metrics.inc("batch_flushes")
        if rows > 1:
            self.metrics.inc("batch_coalesced", rows - 1)
            self.metrics.inc(
                "batch_coalesced."
                + "x".join(str(d) for d in dims)
                + "|"
                + ",".join(str(p) for p in perm),
                rows - 1,
            )
        plan = self.plan(dims, perm, elem_bytes, spec)
        self.metrics.inc("executions_submitted")
        batch_fut = self._observe_feedback(
            plan, self.scheduler.submit_batch(plan, payloads)
        )

        def _resolve(done) -> None:
            exc = done.exception()
            if exc is not None:
                for f in futures:
                    if not f.done():
                        f.set_exception(exc)
                return
            report = done.result()
            # Every caller's report shares the one batch output block:
            # give each its own reference so per-caller release() works,
            # then drop the batch-level one.
            for i, f in enumerate(futures):
                if not f.done():
                    if report.block is not None:
                        report.block.retain()
                    f.set_result(replace(report, output=report.output[i]))
            if report.block is not None:
                report.block.release()

        batch_fut.add_done_callback(_resolve)

    def transpose(self, array: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        """NumPy-convention transposition routed through the service."""
        from repro.core.api import _elem_bytes_of, axes_to_perm

        a = np.ascontiguousarray(array)
        if a.ndim != len(axes):
            raise InvalidLayoutError(
                f"axes of length {len(axes)} for a rank-{a.ndim} array"
            )
        dims = a.shape[::-1]
        perm = axes_to_perm(axes)
        report = self.execute(
            dims, perm, _elem_bytes_of(a.dtype), payload=a.reshape(-1)
        )
        out_shape = tuple(a.shape[ax] for ax in axes)
        return report.output.reshape(out_shape)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Full JSON-friendly status: metrics + cache + streams + store
        + compiled-executor program cache + batching + autotune +
        codegen."""
        from repro.kernels.codegen import codegen_stats
        from repro.kernels.executor import exec_cache_stats

        executor = (
            self.program_cache.stats()
            if self.program_cache is not None
            else exec_cache_stats()
        )
        codegen = codegen_stats()
        codegen["backend_wins"] = self.autotuner.backend_wins()
        return {
            "device": self.spec.name,
            "metrics": self.metrics.snapshot(),
            "cache": {
                "capacity": self.cache.capacity,
                "resident_plans": len(self.cache),
                **self.cache.snapshot_stats().as_dict(),
            },
            "executor": executor,
            "scheduler": self.scheduler.snapshot(),
            "batching": self._batcher.stats(),
            "autotune": self.autotuner.table(),
            "codegen": codegen,
            "model": self.feedback.stats() if self.feedback else None,
            "store": self.store.describe() if self.store else None,
        }

    def flush(self) -> None:
        if self.store is not None:
            self.store.flush()
        self.autotuner.flush()
        if self.feedback is not None:
            self.feedback.flush()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Orderly intake shutdown: stop accepting executions, flush
        open micro-batch windows, wait for inflight work to resolve,
        then close the scheduler.

        Returns True when every inflight execution resolved within
        ``timeout`` seconds (None = wait indefinitely).  On False the
        scheduler is still shut down — queued jobs drain on their
        streams — but some futures may resolve after this returns.
        After a drain the service refuses new executions with
        :class:`~repro.errors.DrainingError` (planning via :meth:`plan`
        keeps working until :meth:`close`); draining twice is a no-op.
        """
        if self._closed:
            return True
        self._draining = True
        self._stop_retrain_tick()
        # Flush open micro-batch windows while the service still plans
        # and schedules; their futures join the inflight count.
        self._batcher.close()
        drained = self._idle.wait(timeout)
        self.scheduler.shutdown()
        return drained

    def close(self) -> None:
        if self._closed:
            return
        self.drain()
        self._closed = True
        self.autotuner.close()
        if self.feedback is not None:
            self.feedback.close()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "TransposeService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
