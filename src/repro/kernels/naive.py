"""Naive transposition kernel (the Sec. I strawman).

One thread per element: thread ``t`` reads input element ``t`` and writes
it at its permuted position.  Reads are perfectly coalesced; writes
scatter with the output stride of the input's fastest dimension, which on
any non-trivial permutation wastes most of every store transaction.  This
is the 2-3x-slower baseline the prior work (Lyakh) improved upon and the
motivation for everything else in the library.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.engine import WarpAccess
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.common import ceil_div


class NaiveKernel(TransposeKernel):
    """Uncoalesced elementwise copy; the performance strawman."""

    schema = Schema.NAIVE

    THREADS = 256

    def __init__(
        self,
        layout: TensorLayout,
        perm: Permutation,
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
    ):
        super().__init__(layout, perm, elem_bytes, spec)

    @property
    def launch_geometry(self) -> LaunchGeometry:
        return LaunchGeometry(
            num_blocks=ceil_div(self.volume, self.THREADS),
            threads_per_block=self.THREADS,
            shared_mem_per_block=0,
        )

    # ------------------------------------------------------------------
    def _out_addresses_of_warp(self, start: int, count: int) -> np.ndarray:
        """Output element offsets of ``count`` consecutive input elements."""
        idx = self.layout.delinearize_many(
            np.arange(start, start + count, dtype=np.int64)
        )
        out_strides = np.asarray(self.out_layout.strides, dtype=np.int64)
        perm = self.perm.mapping
        out_idx = idx[:, list(perm)]
        return out_idx @ out_strides

    def counters(self) -> KernelCounters:
        c = KernelCounters()
        eb, ws = self.elem_bytes, self.spec.warp_size
        vol = self.volume
        n_warps = ceil_div(vol, ws)
        c.warp_ld_accesses = n_warps
        c.warp_st_accesses = n_warps
        c.dram_ld_tx = ceil_div(vol * eb, self.spec.transaction_bytes)
        # Store scatter: replay a contiguous window of warps through the
        # same small line cache the detailed engine uses, so partially
        # shared lines between nearby warps are credited, then
        # extrapolate per-warp.  Exact when the window covers the launch.
        from repro.gpusim.engine import _LineCache

        window = min(n_warps, 256)
        cache = _LineCache()
        tx = 0
        tb = self.spec.transaction_bytes
        for w in range(window):
            start = w * ws
            count = min(ws, vol - start)
            addrs = self._out_addresses_of_warp(start, count) * eb
            lines = np.unique(
                np.concatenate([addrs // tb, (addrs + eb - 1) // tb])
            )
            tx += cache.misses(lines)
        c.dram_st_tx = int(round(tx / window * n_warps))
        c.dram_ld_useful_bytes = vol * eb
        c.dram_st_useful_bytes = vol * eb
        c.lane_slots = 2 * n_warps * ws
        c.active_lanes = 2 * vol
        # Full per-element index arithmetic: rank mod/div pairs each.
        c.special_ops = 2 * self.layout.rank * vol // ws
        c.alu_ops = 2 * self.layout.rank * vol
        return c

    def trace(self, max_blocks: Optional[int] = None) -> Iterator[WarpAccess]:
        eb, ws = self.elem_bytes, self.spec.warp_size
        vol = self.volume
        n_warps = ceil_div(vol, ws)
        if max_blocks is not None:
            n_warps = min(n_warps, max_blocks * (self.THREADS // ws))
        for w in range(n_warps):
            start = w * ws
            count = min(ws, vol - start)
            lanes = np.arange(start, start + count, dtype=np.int64)
            yield WarpAccess("gld", lanes * eb, eb, ws)
            yield WarpAccess(
                "gst", self._out_addresses_of_warp(start, count) * eb, eb, ws
            )
