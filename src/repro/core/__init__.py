"""Core tensor-transposition machinery: layouts, permutations, index
fusion, the schema taxonomy (Alg. 1), slice-size choice (Alg. 3), offset
arrays (Alg. 4), and the public planning/execution API."""

from repro.core.fusion import FusionResult, fuse_indices, scaled_rank
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema, TaxonomyDecision, select_schema

__all__ = [
    "Permutation",
    "TensorLayout",
    "FusionResult",
    "fuse_indices",
    "scaled_rank",
    "Schema",
    "TaxonomyDecision",
    "select_schema",
]
