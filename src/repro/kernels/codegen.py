"""Codegen execution tier: specialized cache-blocked loop-nest kernels.

The indexed/chunked executor programs move every element through NumPy
fancy gather/scatter, which streams a volume-sized int64 index map
*alongside* the data — roughly doubling DRAM traffic — and holds the
GIL for the whole move.  The procpool results
(``results/procpool_scaling.json``) show that path is memory-bound, not
GIL-bound, on the large cases; HPTT demonstrates that on CPUs a
cache-blocked loop nest with an explicit loop-order/blocking search
beats gather-based transposition outright.  This module is that tier
for the NumPy layer:

1. **Search** (:func:`search_nest`) — an HPTT-style enumeration over
   the two *critical* output axes (where the source's fastest axis
   lands, and the output's own fastest axis), block-size candidates
   per axis, and the tile-loop orders — scored entirely by the
   repository's analytic DRAM model (:func:`nest_cost`, built on
   :func:`~repro.kernels.common.lattice_run_transactions`), never by
   measurement.  The paper's own slice search (Alg. 3) is the shape:
   tiny candidate grid, analytic scoring, deterministic winner.
2. **Generation** (:func:`nest_source`) — the winning configuration is
   emitted as *source code*: a loop nest of NumPy slice assignments
   specialized to the exact shape, blocks, and loop order (constants
   baked in, ``exec``-compiled once).  Strided slice assignment
   releases the GIL, so nest tasks also scale on the thread pool.
3. **JIT** — when ``numba`` is installed (the ``jit`` optional
   dependency), a fully scalarized loop nest is emitted instead and
   ``numba.njit``-compiled; any numba failure falls back to the NumPy
   slice backend at runtime, bit-exactly.  :func:`compile_backend`
   reports which backend is active.
4. **Fallback** — when the model says blocking cannot beat fancy
   indexing (plus its map traffic) by :data:`PROFIT_MARGIN`, or the
   operand is below :data:`NEST_MIN_BYTES`, :func:`maybe_nest_program`
   returns ``None`` and the caller keeps the bit-exact
   :class:`~repro.kernels.executor.IndexedProgram` route.

Search outcomes are persisted as **artifacts** (loop order, blocks,
source hash, search time) in the :class:`~repro.runtime.store
.PlanStore` next to the plans, keyed by the fused geometry
(:func:`artifact_key`), so a warm restart rebuilds zero searches —
:func:`codegen_stats` counts hits/misses and the search seconds saved.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from threading import Lock
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.common import lattice_run_transactions, strides_lattice
from repro.kernels.executor import ExecutorProgram

#: Cache-line granularity of the CPU cost model (bytes).
LINE_BYTES = 64

#: Effective last-level-cache budget for the source-line reuse test.
#: Deliberately below a typical 1 MiB L2: the reuse working set shares
#: the cache with the destination stream and everything else, so a
#: tile whose reuse distance *equals* the nominal capacity already
#: thrashes.  Overridable for foreign hosts.
CACHE_BUDGET_BYTES = int(
    os.environ.get("REPRO_CODEGEN_CACHE_BYTES", (1 << 20) * 3 // 4)
)

#: Modeled per-tile interpreter overhead, in cache-line equivalents.
#: This is what makes the model reject tiny tiles (and tiny tensors):
#: each tile costs one Python-level slice-assignment dispatch.
TILE_OVERHEAD_LINES = 256

#: Block-size candidates per critical axis (the axis's full extent is
#: always added).  Powers of two bracketing one cache line of f64/f32
#: elements up to a typical L1-resident panel.
BLOCK_CANDIDATES = (8, 16, 32, 64)

#: Writing destination lines out of ascending order defeats the
#: hardware's sequential-writeback prefetch; tile-loop orders whose
#: innermost loop is not the output's fastest axis pay this factor on
#: the destination stream.
NONSEQ_DST_FACTOR = 1.05

#: Below this many payload bytes generation is never profitable: the
#: whole move is a handful of cache-resident gathers and the nest's
#: per-tile dispatch dominates anything the model could save.
NEST_MIN_BYTES = 1 << 20

#: The modeled nest must beat the modeled indexed path by this factor
#: before a generated kernel replaces the (simpler) IndexedProgram.
PROFIT_MARGIN = 1.2

#: Bumped when the search space, cost model, or generated source shape
#: changes: stale persisted artifacts are ignored, never misapplied.
CODEGEN_VERSION = 1


# ----------------------------------------------------------------------
# Optional numba backend (the `jit` extra)
# ----------------------------------------------------------------------

_NUMBA = None
if os.environ.get("REPRO_CODEGEN_JIT", "1") != "0":  # pragma: no branch
    try:  # pragma: no cover - exercised only with the jit extra installed
        import numba as _NUMBA  # type: ignore[no-redef]
    except Exception:  # ImportError, or a broken install
        _NUMBA = None


def compile_backend() -> str:
    """Which codegen compile backend is active: ``numba`` or ``numpy``."""
    return "numba" if _NUMBA is not None else "numpy"


# ----------------------------------------------------------------------
# Module-level codegen statistics
# ----------------------------------------------------------------------

_STATS_LOCK = Lock()
_STATS = {
    "searches": 0,
    "search_s": 0.0,
    "artifact_hits": 0,
    "artifact_misses": 0,
    "search_s_saved": 0.0,
    "programs_generated": 0,
    "fallbacks": 0,
    "jit_compiled": 0,
    "jit_failures": 0,
}


def _count(name: str, value=1) -> None:
    with _STATS_LOCK:
        _STATS[name] += value


def codegen_stats() -> dict:
    """Snapshot of the module's search/artifact/backend counters."""
    with _STATS_LOCK:
        snap = dict(_STATS)
    snap["backend"] = compile_backend()
    return snap


def reset_codegen_stats() -> None:
    """Zero the counters (benchmark cold-start conditions)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0.0 if isinstance(_STATS[key], float) else 0


# ----------------------------------------------------------------------
# Analytic cost model
# ----------------------------------------------------------------------


def _strides_of(shape: Sequence[int]) -> List[int]:
    strides = [0] * len(shape)
    s = 1
    for a in range(len(shape) - 1, -1, -1):
        strides[a] = s
        s *= int(shape[a])
    return strides


def _inverse(axes: Sequence[int]) -> List[int]:
    inv = [0] * len(axes)
    for k, a in enumerate(axes):
        inv[a] = k
    return inv


def nest_cost(
    in_shape: Sequence[int],
    axes: Sequence[int],
    tiles: Sequence[int],
    elem_bytes: int,
    order: Sequence[int] = (),
) -> float:
    """Modeled cache-line traffic of one blocked nest configuration.

    ``in_shape``/``axes`` are the NumPy input shape and transpose axes;
    ``tiles`` gives the tile extent per *output* axis (full extent =
    unblocked); ``order`` lists the blocked output axes outermost
    first.  The unit is cache lines — comparable across configurations
    and against :func:`indexed_cost`, nothing more.

    The model reuses the kernels' DRAM primitives: per tile, the
    destination touches ``tile_vol / r_dst`` contiguous runs and the
    source ``tile_vol / r_src`` (``r`` = the contiguous run length the
    tiling preserves on each side), each run costing
    :func:`~repro.kernels.common.lattice_run_transactions` lines on its
    stride lattice.  Source lines are *refetched* when the reuse
    distance between consecutive visits — everything the nest touches
    across the inner axes, twice (source + destination streams) —
    exceeds :data:`CACHE_BUDGET_BYTES`; the penalty saturates at the
    per-line element count.  A per-tile interpreter overhead term
    (:data:`TILE_OVERHEAD_LINES`) makes small tiles and small tensors
    lose, which is exactly the fallback regime.
    """
    nd = len(in_shape)
    out_shape = [int(in_shape[a]) for a in axes]
    tiles = [min(int(t), e) for t, e in zip(tiles, out_shape)]
    src_strides = _strides_of(in_shape)
    out_strides = _strides_of(out_shape)
    moved_strides = [src_strides[axes[k]] for k in range(nd)]
    inv = _inverse(axes)
    eb = int(elem_bytes)

    tile_vol = math.prod(tiles)
    n_tiles = math.prod(
        -(-out_shape[k] // tiles[k]) for k in range(nd)
    )

    # Contiguous run lengths a tile preserves on each side: walk the
    # fastest axes inward until one is blocked below its full extent.
    r_dst = 1
    for k in range(nd - 1, -1, -1):
        r_dst *= tiles[k]
        if tiles[k] < out_shape[k]:
            break
    r_src = 1
    for a in range(nd - 1, -1, -1):
        r_src *= tiles[inv[a]]
        if tiles[inv[a]] < int(in_shape[a]):
            break

    lat_dst = strides_lattice(
        [out_strides[k] * eb for k in range(nd)], LINE_BYTES
    )
    lat_src = strides_lattice(
        [moved_strides[k] * eb for k in range(nd)], LINE_BYTES
    )
    dst_lines = (
        tile_vol / max(r_dst, 1)
        * lattice_run_transactions(r_dst, eb, lat_dst, LINE_BYTES)
    )
    src_lines = (
        tile_vol / max(r_src, 1)
        * lattice_run_transactions(r_src, eb, lat_src, LINE_BYTES)
    )

    # Source-line refetch: the source's fastest axis lands at output
    # position p.  Between consecutive values of that axis the nest
    # sweeps every inner output axis, touching source + destination
    # once each; when that working set overflows the cache budget, the
    # partially-consumed source lines are gone and each line is re-read
    # once per element it holds.
    p = inv[nd - 1]
    refetch = 1.0
    if p != nd - 1:
        reuse_elems = math.prod(tiles[k] for k in range(p + 1, nd))
        if 2 * reuse_elems * eb > CACHE_BUDGET_BYTES:
            refetch = float(min(max(LINE_BYTES // eb, 1), tiles[p]))

    dst_factor = 1.0
    if order and order[-1] != nd - 1 and tiles[nd - 1] < out_shape[nd - 1]:
        dst_factor = NONSEQ_DST_FACTOR

    cost = (src_lines * refetch + dst_lines * dst_factor) * n_tiles
    cost += TILE_OVERHEAD_LINES * n_tiles
    return cost


def indexed_cost(
    in_shape: Sequence[int], axes: Sequence[int], elem_bytes: int
) -> float:
    """Modeled cache-line traffic of the fancy-indexing route.

    The same data movement as an unblocked nest (full-extent tiles,
    including the refetch penalty — gather iterates in output order
    exactly like the nest does), **plus** the volume-sized int64 index
    map streaming alongside (the traffic the codegen tier exists to
    remove).
    """
    out_shape = [int(in_shape[a]) for a in axes]
    volume = math.prod(out_shape) if out_shape else 0
    map_lines = volume * 8 / LINE_BYTES
    return nest_cost(in_shape, axes, out_shape, elem_bytes) + map_lines


# ----------------------------------------------------------------------
# Search
# ----------------------------------------------------------------------


def critical_axes(axes: Sequence[int]) -> List[int]:
    """The output axes worth blocking, HPTT-style: where the source's
    fastest (stride-1) axis lands, and the output's own fastest axis.
    Blocking any other axis changes neither side's run structure."""
    nd = len(axes)
    if nd == 0:
        return []
    p = _inverse(axes)[nd - 1]
    return sorted({p, nd - 1})


def _axis_candidates(extent: int) -> List[int]:
    cands = {c for c in BLOCK_CANDIDATES if c < extent}
    cands.add(int(extent))
    return sorted(cands)


def _loop_orders(blocked: Sequence[int], nd: int) -> List[Tuple[int, ...]]:
    """Tile-loop order candidates: the blocked axes (axis 0 always
    leads — it is the partition axis), in each relative order."""
    inner = [a for a in blocked if a != 0]
    orders = [tuple(inner)]
    if len(inner) == 2:
        orders.append((inner[1], inner[0]))
    lead = [0] if (0 in blocked or True) else []
    return [tuple(lead) + o for o in orders]


def search_nest(
    in_shape: Sequence[int], axes: Sequence[int], elem_bytes: int
) -> dict:
    """Exhaustive scored search over blocks x loop orders.

    Returns the winning descriptor::

        {"codegen_version", "in_shape", "axes", "elem_bytes",
         "tiles", "order", "cost", "indexed_cost", "profitable",
         "search_ms"}

    ``profitable`` is the :data:`PROFIT_MARGIN` verdict against
    :func:`indexed_cost`; deterministic: ties break toward larger
    blocks (fewer tiles) and the destination-sequential loop order,
    both already encoded in the score.
    """
    started = time.perf_counter()
    nd = len(in_shape)
    out_shape = [int(in_shape[a]) for a in axes]
    crit = critical_axes(axes)
    per_axis = [_axis_candidates(out_shape[a]) for a in crit]
    orders = _loop_orders(sorted(set(crit) | {0}), nd)

    best: Optional[Tuple[float, Tuple[int, ...], Tuple[int, ...]]] = None
    combos: List[List[int]] = [[]]
    for cands in per_axis:
        combos = [c + [b] for c in combos for b in cands]
    for combo in combos:
        tiles = list(out_shape)
        for a, b in zip(crit, combo):
            tiles[a] = b
        for order in orders:
            cost = nest_cost(in_shape, axes, tiles, elem_bytes, order)
            cand = (cost, tuple(tiles), order)
            if best is None or cand < best:
                best = cand
    assert best is not None
    cost, tiles, order = best
    idx_cost = indexed_cost(in_shape, axes, elem_bytes)
    volume_bytes = math.prod(out_shape) * int(elem_bytes) if out_shape else 0
    profitable = (
        volume_bytes >= NEST_MIN_BYTES and cost * PROFIT_MARGIN <= idx_cost
    )
    elapsed = time.perf_counter() - started
    _count("searches")
    _count("search_s", elapsed)
    return {
        "codegen_version": CODEGEN_VERSION,
        "in_shape": [int(d) for d in in_shape],
        "axes": [int(a) for a in axes],
        "elem_bytes": int(elem_bytes),
        "tiles": list(tiles),
        "order": list(order),
        "cost": round(cost, 3),
        "indexed_cost": round(idx_cost, 3),
        "profitable": bool(profitable),
        "search_ms": round(elapsed * 1e3, 4),
    }


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------


def nest_source(
    in_shape: Sequence[int],
    axes: Sequence[int],
    tiles: Sequence[int],
    order: Sequence[int],
    batch: bool = False,
    scalar: bool = False,
) -> str:
    """The specialized kernel source for one searched configuration.

    The emitted function ``_nest(moved, out_nd, lo, hi)`` copies the
    transposed input view ``moved`` into ``out_nd`` between rows
    ``lo:hi`` of output axis 0 (the partition axis) — every extent,
    block size, and loop bound is a baked-in constant.  ``batch`` emits
    the fused-batch variant (one leading ``:`` on every subscript, the
    same nest moving all rows per tile).  ``scalar`` emits fully
    scalarized element loops instead of slice assignments — the form
    ``numba.njit`` compiles (and auto-vectorizes) directly.
    """
    nd = len(in_shape)
    out_shape = [int(in_shape[a]) for a in axes]
    tiles = [min(int(t), e) for t, e in zip(tiles, out_shape)]
    looped = [a for a in order if a == 0 or tiles[a] < out_shape[a]]
    if 0 not in looped:
        looped = [0] + looped

    lines = ["def _nest(moved, out_nd, lo, hi):"]
    pad = "    "
    depth = 1
    bounds: Dict[int, Tuple[str, str]] = {}
    for a in looped:
        start, stop = ("lo", "hi") if a == 0 else ("0", str(out_shape[a]))
        var, upper = f"i{a}", f"u{a}"
        lines.append(
            f"{pad * depth}for {var} in range({start}, {stop}, {tiles[a]}):"
        )
        depth += 1
        lines.append(
            f"{pad * depth}{upper} = min({var} + {tiles[a]}, {stop})"
        )
        bounds[a] = (var, upper)
    if 0 not in bounds:
        bounds[0] = ("lo", "hi")

    if not scalar:
        subs = []
        for a in range(nd):
            if a in bounds:
                subs.append("{}:{}".format(*bounds[a]))
            else:
                subs.append(":")
        sel = ", ".join(subs)
        if batch:
            sel = ":, " + sel
        lines.append(f"{pad * depth}out_nd[{sel}] = moved[{sel}]")
        return "\n".join(lines) + "\n"

    # Scalarized form: element loops inside the tile loops, innermost
    # loop over the output's fastest axis so the JIT vectorizes it
    # (the batch loop, when present, runs outermost for the same
    # reason).
    if batch:
        lines.append(
            f"{pad * depth}for xb in range(out_nd.shape[0]):"
        )
        depth += 1
    for a in range(nd):
        lo_e, hi_e = bounds.get(a, ("0", str(out_shape[a])))
        lines.append(
            f"{pad * depth}for x{a} in range({lo_e}, {hi_e}):"
        )
        depth += 1
    if batch:
        idx = "xb, " + ", ".join(f"x{a}" for a in range(nd))
    else:
        idx = ", ".join(f"x{a}" for a in range(nd))
    lines.append(f"{pad * depth}out_nd[{idx}] = moved[{idx}]")
    return "\n".join(lines) + "\n"


def _compile_source(source: str):
    namespace: dict = {"min": min, "range": range}
    exec(compile(source, "<repro-codegen>", "exec"), namespace)
    return namespace["_nest"]


def source_hash(*sources: str) -> str:
    h = hashlib.sha1()
    for s in sources:
        h.update(s.encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# The program kind
# ----------------------------------------------------------------------


class NestProgram(ExecutorProgram):
    """A generated cache-blocked loop nest, specialized to one problem.

    Holds the compiled single and batch kernel functions plus the
    descriptor the search produced.  Bit-exact against every other
    program kind by construction: the nest assigns the transposed view
    tile by tile, covering the output exactly once.  Partition tasks
    are row ranges of output axis 0 (the generated kernels take
    ``lo``/``hi`` bounds), so the scheduler fans nest tasks across the
    thread pool like any other program — and slice assignment releases
    the GIL, so they genuinely run concurrently.
    """

    kind = "nest"

    def __init__(self, descriptor: dict):
        in_shape = tuple(int(d) for d in descriptor["in_shape"])
        super().__init__(int(np.prod(in_shape, dtype=np.int64)))
        self.descriptor = dict(descriptor)
        self.in_shape = in_shape
        self.axes = tuple(int(a) for a in descriptor["axes"])
        self.out_shape = tuple(self.in_shape[a] for a in self.axes)
        self.tiles = tuple(int(t) for t in descriptor["tiles"])
        self.order = tuple(int(a) for a in descriptor["order"])
        self.source = nest_source(
            self.in_shape, self.axes, self.tiles, self.order
        )
        self.batch_source = nest_source(
            self.in_shape, self.axes, self.tiles, self.order, batch=True
        )
        self.descriptor["source_sha"] = source_hash(
            self.source, self.batch_source
        )
        self.descriptor["backend"] = compile_backend()
        self._fn = _compile_source(self.source)
        self._batch_fn = _compile_source(self.batch_source)
        self._jit = self._jit_batch = None
        if _NUMBA is not None:  # pragma: no cover - needs the jit extra
            try:
                scalar = nest_source(
                    self.in_shape, self.axes, self.tiles, self.order,
                    scalar=True,
                )
                scalar_batch = nest_source(
                    self.in_shape, self.axes, self.tiles, self.order,
                    batch=True, scalar=True,
                )
                self._jit = _NUMBA.njit(cache=False)(
                    _compile_source(scalar)
                )
                self._jit_batch = _NUMBA.njit(cache=False)(
                    _compile_source(scalar_batch)
                )
                _count("jit_compiled")
            except Exception:
                self._jit = self._jit_batch = None
                self.descriptor["backend"] = "numpy"
                _count("jit_failures")
        _count("programs_generated")

    # -- pickling: compiled code objects and numba dispatchers do not
    # pickle; the descriptor regenerates everything deterministically ----
    def __getstate__(self) -> dict:
        return {"descriptor": self.descriptor}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["descriptor"])

    def _moved(self, src: np.ndarray) -> np.ndarray:
        return np.transpose(src.reshape(self.in_shape), self.axes)

    def _moved_batch(self, srcs: np.ndarray) -> np.ndarray:
        axes = (0,) + tuple(a + 1 for a in self.axes)
        return np.transpose(
            srcs.reshape((srcs.shape[0],) + self.in_shape), axes
        )

    def _call(self, jit, fn, moved, out_nd, lo, hi) -> None:
        if jit is not None:  # pragma: no cover - needs the jit extra
            try:
                jit(moved, out_nd, lo, hi)
                return
            except Exception:
                # Typing/lowering failures surface before any element
                # moves; drop to the slice backend permanently.
                self._jit = self._jit_batch = None
                self.descriptor["backend"] = "numpy"
                _count("jit_failures")
        fn(moved, out_nd, lo, hi)

    def run(self, src: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        dst = out if out is not None else np.empty(self.volume, dtype=src.dtype)
        out_nd = dst.reshape(self.out_shape)
        self._call(
            self._jit, self._fn, self._moved(src), out_nd, 0,
            self.out_shape[0],
        )
        return dst

    def run_batch(self, srcs, out: Optional[np.ndarray] = None) -> np.ndarray:
        srcs = self.batch_view(srcs)
        dst = out if out is not None else np.empty_like(srcs)
        out_nd = dst.reshape((srcs.shape[0],) + self.out_shape)
        self._call(
            self._jit_batch, self._batch_fn, self._moved_batch(srcs),
            out_nd, 0, self.out_shape[0],
        )
        return dst

    @property
    def nbytes(self) -> int:
        # No frozen index arrays; the sources are the only state.
        return len(self.source) + len(self.batch_source)

    # -- partitioning: row ranges of output axis 0 (the generated
    # kernels' lo/hi bounds) ---------------------------------------------
    def partition(self, parts: int) -> List[Tuple[int, ...]]:
        rows = self.out_shape[0]
        parts = max(1, min(parts, rows))
        bounds = np.linspace(0, rows, parts + 1, dtype=np.int64)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    def run_part(
        self, src: np.ndarray, out: np.ndarray, task: Tuple[int, ...]
    ) -> None:
        lo, hi = task
        out_nd = out.reshape(self.out_shape)
        self._call(self._jit, self._fn, self._moved(src), out_nd, lo, hi)


# ----------------------------------------------------------------------
# Artifact cache + compile entry point
# ----------------------------------------------------------------------


def artifact_key(
    in_shape: Sequence[int], axes: Sequence[int], elem_bytes: int
) -> str:
    """The :class:`~repro.runtime.store.PlanStore` artifact key of one
    fused geometry — derivable from the kernel alone, identically in
    the parent and in process-pool workers."""
    return "nest{}|{}|{}|{}".format(
        CODEGEN_VERSION,
        "x".join(str(int(d)) for d in in_shape),
        ",".join(str(int(a)) for a in axes),
        int(elem_bytes),
    )


def _valid_artifact(
    desc, in_shape: Sequence[int], axes: Sequence[int], elem_bytes: int
) -> bool:
    if not isinstance(desc, dict):
        return False
    if desc.get("codegen_version") != CODEGEN_VERSION:
        return False
    return (
        list(desc.get("in_shape", [])) == [int(d) for d in in_shape]
        and list(desc.get("axes", [])) == [int(a) for a in axes]
        and desc.get("elem_bytes") == int(elem_bytes)
        and "tiles" in desc
        and "order" in desc
        and "profitable" in desc
    )


def nest_descriptor(
    in_shape: Sequence[int],
    axes: Sequence[int],
    elem_bytes: int,
    artifacts=None,
) -> dict:
    """The searched (or artifact-cached) descriptor for one geometry.

    ``artifacts`` is any object with ``artifact(key)`` /
    ``put_artifact(key, desc)`` — in practice the runtime's
    :class:`~repro.runtime.store.PlanStore`.  A valid persisted
    descriptor skips the search entirely (counted as an
    ``artifact_hit``, crediting its recorded ``search_ms`` to
    ``search_s_saved``); a miss searches and persists the outcome.
    """
    key = artifact_key(in_shape, axes, elem_bytes)
    if artifacts is not None:
        desc = artifacts.artifact(key)
        if _valid_artifact(desc, in_shape, axes, elem_bytes):
            _count("artifact_hits")
            _count("search_s_saved", float(desc.get("search_ms", 0.0)) / 1e3)
            return desc
        _count("artifact_misses")
    desc = search_nest(in_shape, axes, elem_bytes)
    if artifacts is not None:
        artifacts.put_artifact(key, desc)
    return desc


def maybe_nest_program(kernel, artifacts=None) -> Optional[NestProgram]:
    """A generated nest program for the kernel, or ``None``.

    ``None`` means the search judged generation unprofitable (or the
    geometry is degenerate); the caller keeps the indexed/chunked
    route, bit-exactly.  This is the hook
    :func:`~repro.kernels.executor.compile_executor` calls when
    ``codegen=True``.
    """
    in_shape = kernel.layout.as_numpy_shape()
    axes = kernel.perm.numpy_axes()
    if not in_shape or kernel.volume <= 0:
        _count("fallbacks")
        return None
    if kernel.volume * kernel.elem_bytes < NEST_MIN_BYTES:
        # Below the profitability floor the search's verdict is fixed;
        # skip it entirely so small-problem compiles stay O(1).
        _count("fallbacks")
        return None
    desc = nest_descriptor(in_shape, axes, kernel.elem_bytes, artifacts)
    if not desc.get("profitable"):
        _count("fallbacks")
        return None
    return NestProgram(desc)
