"""Ablation: what does model-driven selection buy?

Compares three selection policies over the same candidate sets on a
sample of 6D permutations:

- **model**  — the shipped regression models (TTLG's design),
- **oracle** — the simulator's exact cost (an unattainable upper bound),
- **first**  — taxonomy only, first admissible configuration (what a
  library without Alg. 3 would do).

The paper's implicit claim is that model-driven choice recovers nearly
all of the oracle's advantage over a fixed choice; this quantifies it.
"""

import itertools
import random

import numpy as np

from conftest import write_result

from repro.core.plan import candidates_for, make_plan
from repro.core.fusion import fuse_indices
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import select_schema
from repro.gpusim.spec import KEPLER_K40C
from repro.model.pretrained import oracle_predictor, pretrained_predictor

DIMS = (15,) * 6


def first_candidate_time(dims, perm):
    fused = fuse_indices(TensorLayout(dims), Permutation(perm))
    decision = select_schema(fused.layout, fused.perm)
    cands = candidates_for(
        fused.layout, fused.perm, decision, KEPLER_K40C, 8
    )
    return cands[0].simulated_time()


def test_ablation_selection(benchmark):
    rng = random.Random(7)
    perms = rng.sample(list(itertools.permutations(range(6))), 24)
    oracle = oracle_predictor()
    model = pretrained_predictor()

    rows = []
    for p in perms:
        t_oracle = make_plan(DIMS, p, predictor=oracle).simulated_time()
        t_model = make_plan(DIMS, p, predictor=model).simulated_time()
        t_first = first_candidate_time(DIMS, p)
        rows.append((p, t_oracle, t_model, t_first))

    lines = [
        "Ablation — selection policy (6D all-15, 24 random permutations)",
        f"{'perm':<14s} {'oracle ms':>10s} {'model ms':>10s} "
        f"{'first ms':>10s} {'model/oracle':>13s} {'first/oracle':>13s}",
    ]
    m_over_o, f_over_o = [], []
    for p, to, tm, tf in rows:
        m_over_o.append(tm / to)
        f_over_o.append(tf / to)
        lines.append(
            f"{' '.join(map(str, p)):<14s} {to * 1e3:>10.3f} "
            f"{tm * 1e3:>10.3f} {tf * 1e3:>10.3f} "
            f"{tm / to:>13.3f} {tf / to:>13.3f}"
        )
    m_over_o = np.array(m_over_o)
    f_over_o = np.array(f_over_o)
    lines.append(
        f"\nmodel slowdown vs oracle: mean {m_over_o.mean():.3f} "
        f"max {m_over_o.max():.3f}"
    )
    lines.append(
        f"first-candidate slowdown vs oracle: mean {f_over_o.mean():.3f} "
        f"max {f_over_o.max():.3f}"
    )
    text = "\n".join(lines)
    print(text)
    write_result("ablation_selection", text)

    # The model must recover most of the gap between 'first' and oracle.
    assert m_over_o.mean() < 1.15
    assert f_over_o.mean() > m_over_o.mean()

    benchmark(lambda: make_plan(DIMS, perms[0], predictor=model))
