"""Benchmark workload suites matching the paper's evaluation (Sec. VI).

- :func:`six_d_suite` — all 720 permutations of a 6D tensor with every
  extent 15, 16, or 17 (Figs. 6-11), ordered by scaled rank so the
  charts' red staircase can be drawn.
- :func:`varying_dims_suite` — fixed permutation ``0 2 1 3`` over
  4D tensors from 15^4 to 128^4 (Fig. 13).
- :func:`ttc_benchmark_suite` — a reconstruction of the 57-tensor TTC
  benchmark [Springer 2016]: ranks 2-6, ~200 MB each, permutations
  chosen so *no index fusion is possible*.  The original size list is
  not redistributable here; the generator below reproduces its
  documented properties (see DESIGN.md section 2).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.fusion import scaled_rank


@dataclass(frozen=True)
class BenchCase:
    """One benchmark problem with chart metadata."""

    dims: Tuple[int, ...]
    perm: Tuple[int, ...]
    scaled_rank: int
    label: str = ""

    @property
    def volume(self) -> int:
        return math.prod(self.dims)


def six_d_suite(extent: int) -> List[BenchCase]:
    """All 6! permutations of a 6D tensor with uniform ``extent``.

    Ordered by scaled rank (after index fusion), then lexicographically —
    the x-axis ordering of Figs. 6-11.
    """
    dims = (extent,) * 6
    cases = []
    for p in itertools.permutations(range(6)):
        cases.append(
            BenchCase(
                dims=dims,
                perm=p,
                scaled_rank=scaled_rank(dims, p),
                label=" ".join(map(str, p)),
            )
        )
    cases.sort(key=lambda c: (c.scaled_rank, c.perm))
    return cases


def varying_dims_suite() -> List[BenchCase]:
    """Fig. 13: permutation ``0 2 1 3``, 4D extents 15..128."""
    perm = (0, 2, 1, 3)
    out = []
    for e in (15, 16, 31, 32, 63, 64, 127, 128):
        dims = (e,) * 4
        out.append(
            BenchCase(
                dims=dims,
                perm=perm,
                scaled_rank=scaled_rank(dims, perm),
                label=f"{e} {e} {e} {e}",
            )
        )
    return out


# ----------------------------------------------------------------------
# TTC benchmark reconstruction
# ----------------------------------------------------------------------

def _unfusable_perms(rank: int, count: int) -> List[Tuple[int, ...]]:
    """The first ``count`` permutations of ``rank`` with no fusible index
    pair (no input dims ``j, j+1`` adjacent in the same order in the
    output), in deterministic order.  Rank 2 has exactly one: (1, 0)."""
    out: List[Tuple[int, ...]] = []
    for p in itertools.permutations(range(rank)):
        out_pos = [0] * rank
        for i, j in enumerate(p):
            out_pos[j] = i
        if any(out_pos[j + 1] == out_pos[j] + 1 for j in range(rank - 1)):
            continue
        out.append(p)
        if len(out) >= count:
            break
    return out


#: Per-rank permutations with no fusible index pair, as the TTC suite
#: requires (rank 3 only has three such permutations).  Counts chosen so
#: the suite totals 57 cases like Springer's:
#: 1*3 + 3*3 + 9*2 + 7*2 + 7*2 = 58, trimmed to 57.
_TTC_PERMS = {
    rank: _unfusable_perms(rank, count)
    for rank, count in ((2, 1), (3, 3), (4, 9), (5, 7), (6, 7))
}

#: Number of size variants per rank.
_TTC_SIZES_PER_RANK = {2: 3, 3: 3, 4: 2, 5: 2, 6: 2}

#: Target volume ~200 MB of doubles.
_TTC_TARGET_ELEMS = 25 * 1024 * 1024


def _ttc_dims(rank: int, variant: int) -> Tuple[int, ...]:
    """Size tuples around the target volume.

    Variant 0: balanced extents; variant 1: small leading dimension
    (stress case for single-dim tilers); variant 2: large leading
    dimension.
    """
    if variant == 0:
        base = round(_TTC_TARGET_ELEMS ** (1 / rank))
        dims = [base] * rank
    elif variant == 1:
        lead = 8 if rank >= 4 else 16
        rest = round((_TTC_TARGET_ELEMS / lead) ** (1 / (rank - 1)))
        dims = [lead] + [rest] * (rank - 1)
    else:
        lead = 4096 if rank <= 3 else 512
        rest = round((_TTC_TARGET_ELEMS / lead) ** (1 / (rank - 1)))
        dims = [lead] + [rest] * (rank - 1)
    # Nudge extents off powers of two the way the original mixes sizes.
    dims = [max(2, d + (i % 2)) for i, d in enumerate(dims)]
    return tuple(dims)


def ttc_benchmark_suite() -> List[BenchCase]:
    """The 57-case TTC benchmark reconstruction (Fig. 14)."""
    cases: List[BenchCase] = []
    for rank in sorted(_TTC_PERMS):
        n_sizes = _TTC_SIZES_PER_RANK[rank]
        for variant in range(n_sizes):
            for p in _TTC_PERMS[rank]:
                dims = _ttc_dims(rank, variant)
                sr = scaled_rank(dims, p)
                assert sr == rank, (
                    f"TTC suite permutation {p} fused ({sr} != {rank}); "
                    "suite requires no fusion"
                )
                cases.append(
                    BenchCase(
                        dims=dims,
                        perm=p,
                        scaled_rank=sr,
                        label=f"r{rank}v{variant} " + " ".join(map(str, p)),
                    )
                )
    return cases[:57]
