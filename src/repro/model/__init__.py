"""Performance modeling (Sec. V of the paper).

Linear-regression models per kernel schema predict execution time from
analytic features (volume, #blocks, slice volumes, warp-efficiency
cycles, strides, special instructions).  The models drive Alg. 3's
slice-size search, the taxonomy's model-resolved branches, and the
public ``predict_time`` API that higher-level libraries (e.g. TTGT
contraction planners) query.
"""

from repro.model.features import FEATURE_NAMES, feature_vector
from repro.model.regression import FittedModel, LinearRegression, RegressionSummary
from repro.model.pretrained import load_pretrained, pretrained_predictor

__all__ = [
    "FEATURE_NAMES",
    "feature_vector",
    "LinearRegression",
    "FittedModel",
    "RegressionSummary",
    "load_pretrained",
    "pretrained_predictor",
]
