"""Training-set configuration generator (Sec. V "DataSet").

The paper's dataset covers tensor ranks 3-6 with all permutations, five
orderings among the extents, and volumes from 16 MB to 2 GB:

1. all extents equal,
2. monotonically increasing,
3. monotonically decreasing,
4. increasing to the centre then decreasing,
5. decreasing to the centre then increasing.

Four-fifths of the configurations train, the rest test.  Because our
"measurements" are analytic simulator evaluations (O(rank) per point,
independent of volume), the full volume range costs nothing to cover.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation

#: The five extent orderings of the paper.
ORDERINGS = ("same", "increasing", "decreasing", "peak", "valley")


def ordered_extents(rank: int, base: int, ordering: str) -> Tuple[int, ...]:
    """Extents of the given ordering whose geometric middle is ``base``.

    The spread between consecutive extents is ~25 % so the volume stays
    near ``base ** rank`` for every ordering.
    """
    if ordering not in ORDERINGS:
        raise ValueError(f"unknown ordering {ordering!r}")
    if ordering == "same":
        return (base,) * rank
    # Multiplicative steps around the base.
    def seq(n: int, sign: int) -> List[int]:
        offs = [i - (n - 1) / 2 for i in range(n)]
        return [max(2, round(base * (1.25 ** (sign * o)))) for o in offs]

    if ordering == "increasing":
        return tuple(seq(rank, +1))
    if ordering == "decreasing":
        return tuple(seq(rank, -1))
    half = (rank + 1) // 2
    up = seq(half, +1)
    down = seq(rank - half + 1, -1)
    if ordering == "peak":
        return tuple(up + down[1:])
    # valley
    down2 = seq(half, -1)
    up2 = seq(rank - half + 1, +1)
    return tuple(down2 + up2[1:])


def base_extent_for_volume(rank: int, volume: int) -> int:
    """Extent whose ``rank``-th power approximates ``volume`` elements."""
    return max(2, round(volume ** (1.0 / rank)))


@dataclass(frozen=True)
class TransposeCase:
    """One (dims, perm) problem in the dataset."""

    dims: Tuple[int, ...]
    perm: Tuple[int, ...]

    @property
    def layout(self) -> TensorLayout:
        return TensorLayout(self.dims)

    @property
    def permutation(self) -> Permutation:
        return Permutation(self.perm)

    @property
    def volume(self) -> int:
        return math.prod(self.dims)


def generate_cases(
    ranks: Sequence[int] = (3, 4, 5, 6),
    volumes: Sequence[int] = (2 * 1024**2, 16 * 1024**2, 128 * 1024**2),
    max_perms_per_rank: int = 24,
    seed: int = 20180521,
) -> List[TransposeCase]:
    """Build the dataset grid: rank x ordering x volume x permutation.

    ``volumes`` are element counts (the paper uses byte volumes 16 MB -
    2 GB of doubles; defaults here sit inside that range).  Permutations
    are sampled without replacement per rank when the full factorial
    (e.g. 720 at rank 6) exceeds ``max_perms_per_rank``; the identity is
    excluded (it fuses to a copy).
    """
    rng = random.Random(seed)
    cases: List[TransposeCase] = []
    for rank in ranks:
        all_perms = [
            p
            for p in itertools.permutations(range(rank))
            if p != tuple(range(rank))
        ]
        if len(all_perms) > max_perms_per_rank:
            perms = rng.sample(all_perms, max_perms_per_rank)
        else:
            perms = all_perms
        # The uniform sample under-represents matching-FVI cases, which
        # starves the FVI-Match models; force a couple in.
        fvi_perms = [p for p in all_perms if p[0] == 0]
        if fvi_perms and not any(p[0] == 0 for p in perms):
            perms = perms + rng.sample(fvi_perms, min(2, len(fvi_perms)))
        for volume in volumes:
            base = base_extent_for_volume(rank, volume)
            for ordering in ORDERINGS:
                dims = ordered_extents(rank, base, ordering)
                for p in perms:
                    cases.append(TransposeCase(dims=dims, perm=p))
            # Small-FVI shapes (first extent below the warp size) for the
            # FVI-Match-Small model.
            for n0 in (4, 8, 15, 16):
                rest = base_extent_for_volume(rank - 1, max(volume // n0, 2))
                dims = (n0,) + (rest,) * (rank - 1)
                for p in fvi_perms[: min(3, len(fvi_perms))]:
                    cases.append(TransposeCase(dims=dims, perm=p))
    return cases


def train_test_split(
    items: Sequence, train_fraction: float = 0.8, seed: int = 7
) -> Tuple[list, list]:
    """The paper's split: a random four-fifths trains, the rest tests."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    idx = list(range(len(items)))
    random.Random(seed).shuffle(idx)
    cut = int(round(len(items) * train_fraction))
    train = [items[i] for i in idx[:cut]]
    test = [items[i] for i in idx[cut:]]
    return train, test
