"""Unit tests for the schema taxonomy (Alg. 1)."""

import pytest

from repro.core.fusion import fuse_indices
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema, combined_fvi_group, select_schema


def decide(dims, perm):
    fused = fuse_indices(TensorLayout(dims), Permutation(perm))
    return select_schema(fused.layout, fused.perm)


class TestCombinedGroup:
    def test_single_dim_enough(self):
        group, vol = combined_fvi_group((64, 3, 3), (0, 1, 2), 32)
        assert group == (0,)
        assert vol == 64

    def test_combines_until_threshold(self):
        group, vol = combined_fvi_group((4, 4, 4), (0, 1, 2), 32)
        assert group == (0, 1, 2)
        assert vol == 64

    def test_whole_tensor_smaller_than_threshold(self):
        group, vol = combined_fvi_group((2, 2), (0, 1), 32)
        assert group == (0, 1)
        assert vol == 4

    def test_respects_order(self):
        group, vol = combined_fvi_group((2, 64, 2), (2, 1, 0), 32)
        assert group == (2, 1)


class TestSchemaSelection:
    def test_identity_is_large_copy(self):
        d = decide((16, 16, 16), (0, 1, 2))
        assert d.schema is Schema.FVI_MATCH_LARGE

    def test_fvi_match_large(self):
        d = decide((64, 8, 8), (0, 2, 1))
        assert d.schema is Schema.FVI_MATCH_LARGE
        assert d.alternatives == ()

    def test_fvi_match_small(self):
        """Paper: [a,b,c,d] => [a,d,c,b] with small a."""
        d = decide((8, 16, 16, 16), (0, 3, 2, 1))
        assert d.schema is Schema.FVI_MATCH_SMALL
        assert Schema.ORTHOGONAL_ARBITRARY in d.alternatives

    def test_fvi_match_tiny_products(self):
        """FVI matches but neither side's two fastest reach the warp."""
        d = decide((2, 3, 5, 7), (0, 2, 1, 3))
        assert d.schema is Schema.ORTHOGONAL_ARBITRARY
        assert Schema.FVI_MATCH_SMALL in d.alternatives

    def test_orthogonal_distinct_paper_example(self):
        """[a,b,c,d] => [d,c,b,a], 16,2,32,32 (Sec. III example)."""
        d = decide((16, 2, 32, 32), (3, 2, 1, 0))
        assert d.schema is Schema.ORTHOGONAL_DISTINCT
        assert d.input_group == (0, 1)  # a,b combine to 32

    def test_orthogonal_arbitrary_paper_example(self):
        """[a,b,c,d] => [c,b,d,a], all 8,2,8,8: groups overlap."""
        d = decide((8, 2, 8, 8), (2, 1, 3, 0))
        assert d.schema is Schema.ORTHOGONAL_ARBITRARY
        assert Schema.ORTHOGONAL_DISTINCT in d.alternatives

    def test_groups_disjoint_reported(self):
        d = decide((32, 4, 32), (2, 1, 0))
        assert set(d.input_group).isdisjoint(d.output_group)

    def test_overlapping_groups_reported(self):
        d = decide((8, 8, 8), (1, 0, 2))
        assert set(d.input_group) & set(d.output_group)

    def test_all_candidates_starts_with_primary(self):
        d = decide((8, 2, 8, 8), (2, 1, 3, 0))
        assert d.all_candidates[0] is d.schema

    def test_group_volumes(self):
        d = decide((16, 2, 32, 32), (3, 2, 1, 0))
        assert d.input_group_volume == 32
        assert d.output_group_volume == 32

    def test_matrix_transpose(self):
        d = decide((128, 128), (1, 0))
        assert d.schema is Schema.ORTHOGONAL_DISTINCT
