"""End-to-end tests of the out-of-GIL execution tier.

Covers the scheduler's backend routing, bit-exact thread/process parity
across all four schemas and the supported dtypes, the raw
:class:`~repro.runtime.procpool.ProcessPool` protocol (store and pipe
rehydration, need-plan recovery, error propagation), and the orderly
close semantics (worker counters folded into the metrics registry).

Worker processes are spawned once per module (the fixture) — individual
tests share the warm pool, mirroring how the serving layer uses it.
"""

import threading

import numpy as np
import pytest

from repro.core.plan import make_plan
from repro.kernels.common import reference_transpose
from repro.kernels.executor import DEFAULT_MAX_INDEX_BYTES, executor_for
from repro.runtime.arena import BufferArena
from repro.runtime.autotune import ThroughputCalibrator
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.procpool import ProcessPool
from repro.runtime.scheduler import (
    PROC_MIN_BYTES,
    PROC_STREAM,
    StreamScheduler,
)
from repro.runtime.store import PlanStore, plan_key, serialize_plan

#: schema -> (dims, perm, backend a forced-"process" request lands on).
#: The FVI kernels publish no index maps, so they always compile to
#: strided view programs — which the router correctly refuses to ship
#: to the pool (threads already run them GIL-free).
SCHEMA_CASES = {
    "orthogonal-arbitrary": ((64, 64, 32, 16), (3, 2, 1, 0), "process"),
    "orthogonal-distinct": ((81, 81, 81), (2, 0, 1), "process"),
    "fvi-match-large": ((128, 64, 64, 4), (0, 3, 2, 1), "thread"),
    "fvi-match-small": ((3, 24, 24, 24), (0, 2, 3, 1), "thread"),
}

DTYPES = [np.float32, np.float64, np.int32, np.int64]


@pytest.fixture(scope="module")
def sched():
    scheduler = StreamScheduler(
        num_streams=2, backend="process", proc_workers=2
    )
    yield scheduler
    scheduler.close()


def _operand(volume, dtype):
    rng = np.random.default_rng(99)
    if np.issubdtype(dtype, np.integer):
        return rng.integers(-1000, 1000, size=volume).astype(dtype)
    return rng.standard_normal(volume).astype(dtype)


def _run(sched, plan, src, **kw):
    report = sched.submit_partitioned(plan, src, lowering=False, **kw).result()
    out = np.array(report.output, copy=True)
    report.release()
    return out, report


class TestBackendParity:
    @pytest.mark.parametrize("schema", list(SCHEMA_CASES))
    def test_schemas_bit_exact(self, sched, schema):
        dims, perm, expected_backend = SCHEMA_CASES[schema]
        plan = make_plan(dims, perm)
        assert plan.schema.value == schema
        src = _operand(plan.layout.volume, np.float64)
        ref = reference_transpose(src, plan.layout, plan.perm)

        threaded, t_report = _run(sched, plan, src, backend="thread")
        assert t_report.backend == "thread"
        assert np.array_equal(threaded, ref)

        processed, p_report = _run(sched, plan, src, backend="process")
        assert p_report.backend == expected_backend
        assert np.array_equal(processed, ref)
        if expected_backend == "process":
            assert p_report.stream == PROC_STREAM

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_dtypes_bit_exact(self, sched, dtype):
        dims, perm, _ = SCHEMA_CASES["orthogonal-arbitrary"]
        plan = make_plan(dims, perm)
        src = _operand(plan.layout.volume, dtype)
        assert src.nbytes >= PROC_MIN_BYTES
        ref = reference_transpose(src, plan.layout, plan.perm)
        out, report = _run(sched, plan, src, backend="process")
        assert report.backend == "process"
        assert out.dtype == dtype
        assert np.array_equal(out, ref)

    def test_batch_mode_bit_exact(self, sched):
        """submit_batch ships batch row-ranges to the workers."""
        plan = make_plan((16, 16, 16, 16), (0, 3, 2, 1))
        rows = 8
        srcs = [
            _operand(plan.layout.volume, np.float64) + i for i in range(rows)
        ]
        assert rows * srcs[0].nbytes >= PROC_MIN_BYTES
        report = sched.submit_batch(
            plan, srcs, backend="process", lowering=False
        ).result()
        assert report.backend == "process"
        assert report.batch == rows
        for i, src in enumerate(srcs):
            ref = reference_transpose(src, plan.layout, plan.perm)
            assert np.array_equal(report.output[i], ref)
        report.release()


class TestRouting:
    def test_small_payload_stays_on_threads(self, sched):
        plan = make_plan((16, 16, 16), (2, 1, 0))  # 32 KiB
        src = _operand(plan.layout.volume, np.float64)
        _, report = _run(sched, plan, src, backend="process")
        assert report.backend == "thread"

    def test_thread_override_never_routes(self, sched):
        dims, perm, _ = SCHEMA_CASES["orthogonal-arbitrary"]
        plan = make_plan(dims, perm)
        src = _operand(plan.layout.volume, np.float64)
        _, report = _run(sched, plan, src, backend="thread")
        assert report.backend == "thread"

    def test_unknown_backend_rejected(self, sched):
        plan = make_plan((16, 16, 16), (2, 1, 0))
        src = _operand(plan.layout.volume, np.float64)
        with pytest.raises(ValueError, match="backend"):
            sched.submit_partitioned(plan, src, backend="gpu")

    def test_thread_scheduler_never_spawns_pool(self):
        with StreamScheduler(num_streams=1, backend="thread") as s:
            dims, perm, _ = SCHEMA_CASES["orthogonal-arbitrary"]
            plan = make_plan(dims, perm)
            src = _operand(plan.layout.volume, np.float64)
            _run(s, plan, src)
            assert s.procpool is None

    def test_auto_explores_both_backends(self):
        tuner = ThroughputCalibrator(
            pool_size=2, backends=("thread", "process")
        )
        with StreamScheduler(
            num_streams=2, tuner=tuner, backend="auto", proc_workers=1
        ) as s:
            dims, perm, _ = SCHEMA_CASES["orthogonal-distinct"]
            plan = make_plan(dims, perm)
            src = _operand(plan.layout.volume, np.float64)
            ref = reference_transpose(src, plan.layout, plan.perm)
            seen = set()
            for _ in range(2 * tuner.min_samples * len(tuner.candidates)):
                out, report = _run(s, plan, src)
                assert np.array_equal(out, ref)
                seen.add(report.backend)
            assert seen == {"thread", "process"}


# ----------------------------------------------------------------------
# Raw pool protocol
# ----------------------------------------------------------------------


def _wait_cb():
    done = threading.Event()
    box = {}

    def cb(err, wall):
        box["err"] = err
        box["wall"] = wall
        done.set()

    return cb, done, box


def _descriptors(arena, src):
    src_block, src_view = arena.empty(src.shape, src.dtype)
    np.copyto(src_view, src)
    out_block, out_view = arena.empty(src.shape, src.dtype)
    desc = lambda b: (b.name, 0, tuple(src.shape), src.dtype.str)  # noqa: E731
    return src_block, out_block, out_view, desc(src_block), desc(out_block)


class TestProcessPoolProtocol:
    @pytest.fixture(scope="class")
    def pool_env(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("pool") / "plans.json"
        arena = BufferArena(max_free_bytes=1 << 28)
        pool = ProcessPool(1, store_path=path)
        yield pool, arena, path
        pool.close()
        arena.close()

    def _plan(self):
        plan = make_plan((32, 32, 32, 32), (3, 0, 1, 2))
        src = _operand(plan.layout.volume, np.float64)
        ref = reference_transpose(src, plan.layout, plan.perm)
        return plan, src, ref

    def _submit(self, pool, arena, plan, src, *, entry, compile_opts):
        program = executor_for(
            plan.kernel,
            lowering=compile_opts[0],
            max_index_bytes=compile_opts[1],
        )
        blocks = _descriptors(arena, src)
        src_block, out_block, out_view, src_desc, out_desc = blocks
        cb, done, box = _wait_cb()
        pool.submit_tasks(
            key=plan_key(plan),
            entry=entry,
            spec=plan.kernel.spec,
            compile_opts=compile_opts,
            mode="part",
            src=src_desc,
            out=out_desc,
            tasks=program.partition(3),
            done_cb=cb,
        )
        assert done.wait(60)
        result = np.array(out_view, copy=True)
        src_block.release()
        out_block.release()
        return box["err"], result

    def test_store_rehydration(self, pool_env):
        """entry=None + a persisted plan: the worker rebuilds from its
        own store handle (flushed *after* the pool spawned)."""
        pool, arena, path = pool_env
        plan, src, ref = self._plan()
        store = PlanStore(path)
        store.put(plan)
        store.flush()
        err, out = self._submit(
            pool,
            arena,
            plan,
            src,
            entry=None,
            compile_opts=(False, DEFAULT_MAX_INDEX_BYTES),
        )
        assert err is None
        assert np.array_equal(out, ref)
        stats = pool.stats()
        assert stats["store_rehydrations"] == 1
        assert stats["programs_built"] == 1

    def test_chunked_program_in_worker(self, pool_env):
        """A small index budget forces the worker to compile (and run)
        a ChunkedProgram; the entry rides the pipe this time."""
        pool, arena, path = pool_env
        plan, src, ref = self._plan()
        opts = (False, 1 << 16)
        assert executor_for(
            plan.kernel, lowering=False, max_index_bytes=1 << 16
        ).kind == "chunked"
        err, out = self._submit(
            pool, arena, plan, src, entry=serialize_plan(plan), compile_opts=opts
        )
        assert err is None
        assert np.array_equal(out, ref)
        # Same key, different compile options: a distinct worker build.
        stats = pool.stats()
        assert stats["programs_built"] == 2

    def test_warm_repeat_hits_worker_cache(self, pool_env):
        pool, arena, path = pool_env
        plan, src, ref = self._plan()
        before = pool.stats()["program_hits"]
        err, out = self._submit(
            pool,
            arena,
            plan,
            src,
            entry=None,
            compile_opts=(False, DEFAULT_MAX_INDEX_BYTES),
        )
        assert err is None
        assert np.array_equal(out, ref)
        assert pool.stats()["program_hits"] == before + 1

    def test_error_propagates(self, pool_env):
        """A bogus segment name fails inside the worker; the exception
        crosses back to the submitting side."""
        pool, arena, path = pool_env
        plan, src, ref = self._plan()
        program = executor_for(plan.kernel, lowering=False)
        src_block, out_block, out_view, src_desc, out_desc = _descriptors(
            arena, src
        )
        cb, done, box = _wait_cb()
        pool.submit_tasks(
            key=plan_key(plan),
            entry=serialize_plan(plan),
            spec=plan.kernel.spec,
            compile_opts=(False, DEFAULT_MAX_INDEX_BYTES),
            mode="part",
            src=("no_such_segment", 0, tuple(src.shape), src.dtype.str),
            out=out_desc,
            tasks=program.partition(2),
            done_cb=cb,
        )
        assert done.wait(60)
        assert isinstance(box["err"], Exception)
        assert pool.stats()["errors"] >= 1
        src_block.release()
        out_block.release()

    def test_unrehydratable_plan_fails_cleanly(self, tmp_path):
        """No store, no entry: the worker replies need_plan and the
        parent fails the job with a diagnostic instead of hanging."""
        plan, src, ref = self._plan()
        program = executor_for(plan.kernel, lowering=False)
        with BufferArena() as arena, ProcessPool(1) as pool:
            src_block, out_block, _, src_desc, out_desc = _descriptors(
                arena, src
            )
            cb, done, box = _wait_cb()
            pool.submit_tasks(
                key=plan_key(plan),
                entry=None,
                spec=plan.kernel.spec,
                compile_opts=(False, DEFAULT_MAX_INDEX_BYTES),
                mode="part",
                src=src_desc,
                out=out_desc,
                tasks=program.partition(2),
                done_cb=cb,
            )
            assert done.wait(60)
            assert isinstance(box["err"], RuntimeError)
            assert "rehydrate" in str(box["err"])
            src_block.release()
            out_block.release()

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ProcessPool(-1)
        with ProcessPool(1) as pool:
            with pytest.raises(ValueError, match="mode"):
                pool.submit_tasks(
                    key="k",
                    entry=None,
                    spec=None,
                    compile_opts=(True, 0),
                    mode="nope",
                    src=("s", 0, (1,), "<f8"),
                    out=("o", 0, (1,), "<f8"),
                    tasks=[(0,)],
                    done_cb=lambda e, w: None,
                )
            with pytest.raises(ValueError, match="at least one task"):
                pool.submit_tasks(
                    key="k",
                    entry=None,
                    spec=None,
                    compile_opts=(True, 0),
                    mode="part",
                    src=("s", 0, (1,), "<f8"),
                    out=("o", 0, (1,), "<f8"),
                    tasks=[],
                    done_cb=lambda e, w: None,
                )


# ----------------------------------------------------------------------
# Close semantics
# ----------------------------------------------------------------------


class TestCloseSemantics:
    def test_close_folds_counters_and_refuses_work(self):
        metrics = MetricsRegistry()
        dims, perm, _ = SCHEMA_CASES["orthogonal-distinct"]
        plan = make_plan(dims, perm)
        src = _operand(plan.layout.volume, np.float64)
        with StreamScheduler(
            num_streams=1,
            metrics=metrics,
            backend="process",
            proc_workers=1,
        ) as s:
            out, report = _run(s, plan, src, backend="process")
            assert report.backend == "process"
            snap = s.snapshot()
            assert snap["backend"] == "process"
            assert snap["procpool"]["jobs_dispatched"] == 1
            assert snap["arena"]["allocations"] >= 2  # src + out blocks
        # The workers' counters survive the pool: folded at close.
        assert metrics.counter("procpool.jobs") == 1
        assert metrics.counter("procpool.tasks") >= 1
        assert metrics.counter("procpool.programs_built") == 1
        with pytest.raises(RuntimeError, match="shut down"):
            s.submit_partitioned(plan, src)
        s.close()  # idempotent

    def test_pool_close_refuses_submissions(self):
        pool = ProcessPool(1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit_tasks(
                key="k",
                entry=None,
                spec=None,
                compile_opts=(True, 0),
                mode="part",
                src=("s", 0, (1,), "<f8"),
                out=("o", 0, (1,), "<f8"),
                tasks=[(0,)],
                done_cb=lambda e, w: None,
            )
