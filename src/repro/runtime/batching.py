"""Request coalescing: single-flight planning and micro-batched execution.

Two coalescing shapes live here:

- :class:`SingleFlight` — when many clients ask for the same
  ``(dims, perm, elem_bytes, device)`` *plan* at once (the
  thundering-herd shape of a warm-up burst), only one of them should
  pay the planning search.  A leader is elected per key; followers
  block on the leader's result.  Combined with the
  :class:`~repro.core.cache.PlanCache` (which serves *later* arrivals
  from memory) this gives exactly-once plan construction per key.
- :class:`MicroBatcher` — when many clients submit *executions* of the
  same plan key within a bounded window (contraction chains transpose
  many small same-permutation tensors back-to-back), the requests are
  held briefly and flushed as **one batched program run** — the
  continuous-batching shape.  Each caller still gets its own future;
  the flush resolves them all from one fused
  :meth:`~repro.kernels.executor.ExecutorProgram.run_batch`.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from threading import Lock
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class SingleFlight:
    """Per-key duplicate-call suppression for concurrent callers."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._flights: Dict[Hashable, Future] = {}
        #: Calls that were absorbed into another caller's in-flight work.
        self.coalesced = 0

    def do(self, key: Hashable, fn: Callable[[], T]) -> Tuple[T, bool]:
        """Run ``fn`` once per key among concurrent callers.

        Returns ``(value, leader)`` where ``leader`` is True for the one
        caller that actually executed ``fn``.  If the leader raises, all
        concurrent followers see the same exception; the flight is then
        retired so a later call may retry.
        """
        with self._lock:
            fut = self._flights.get(key)
            if fut is None:
                fut = Future()
                self._flights[key] = fut
                leader = True
            else:
                leader = False
                self.coalesced += 1
        if not leader:
            return fut.result(), False
        try:
            value = fn()
        except BaseException as exc:
            fut.set_exception(exc)
            raise
        else:
            fut.set_result(value)
            return value, True
        finally:
            with self._lock:
                self._flights.pop(key, None)

    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)


class _Bucket:
    """One key's open micro-batch: payloads queued, futures promised."""

    __slots__ = ("context", "payloads", "futures", "timer")

    def __init__(self, context: Any):
        self.context = context
        self.payloads: List[Any] = []
        self.futures: List[Future] = []
        self.timer: Optional[threading.Timer] = None


class MicroBatcher:
    """Bounded-window coalescing of same-key submissions.

    The first submission for a key opens a bucket and arms a
    ``window_s`` timer; submissions arriving before the flush join the
    bucket.  The bucket flushes when the window expires or it reaches
    ``max_batch`` rows (immediately, on the submitter's thread), by
    calling ``flush_fn(key, context, payloads, futures)`` exactly once
    — the flush owns resolving (or failing) every future.

    ``context`` is opaque per-key data captured from the bucket-opening
    submission (the service stores the request parameters there).
    """

    def __init__(
        self,
        flush_fn: Callable[[Hashable, Any, List[Any], List[Future]], None],
        window_s: float = 0.002,
        max_batch: int = 64,
    ):
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._flush_fn = flush_fn
        self.window_s = window_s
        self.max_batch = max_batch
        self._lock = Lock()
        self._buckets: Dict[Hashable, _Bucket] = {}
        self._closed = False
        #: Totals across flushes (per-key detail in :meth:`stats`).
        self.requests = 0
        self.flushes = 0
        self.coalesced = 0
        self._per_key: Dict[Hashable, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    def submit(self, key: Hashable, payload: Any, context: Any = None) -> Future:
        """Queue one request; returns the future its flush will resolve."""
        fut: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self.requests += 1
            bucket = self._buckets.get(key)
            opened = bucket is None
            if opened:
                bucket = _Bucket(context)
                self._buckets[key] = bucket
            bucket.payloads.append(payload)
            bucket.futures.append(fut)
            full = len(bucket.payloads) >= self.max_batch
            if full:
                self._buckets.pop(key, None)
        if full:
            if bucket.timer is not None:
                bucket.timer.cancel()
            self._run_flush(key, bucket)
        elif opened and self.window_s > 0:
            timer = threading.Timer(
                self.window_s, self._flush_expired, args=(key, bucket)
            )
            timer.daemon = True
            bucket.timer = timer
            timer.start()
        elif opened:
            # window 0: flush on the submitting thread, no coalescing.
            with self._lock:
                claimed = self._buckets.pop(key, None) is bucket
            if claimed:
                self._run_flush(key, bucket)
        return fut

    def _flush_expired(self, key: Hashable, bucket: _Bucket) -> None:
        with self._lock:
            if self._buckets.get(key) is not bucket:
                return  # already flushed by the max_batch path
            self._buckets.pop(key)
        self._run_flush(key, bucket)

    def _run_flush(self, key: Hashable, bucket: _Bucket) -> None:
        n = len(bucket.payloads)
        with self._lock:
            self.flushes += 1
            self.coalesced += n - 1
            pk = self._per_key.setdefault(
                key, {"requests": 0, "flushes": 0, "coalesced": 0, "max_batch": 0}
            )
            pk["requests"] += n
            pk["flushes"] += 1
            pk["coalesced"] += n - 1
            pk["max_batch"] = max(pk["max_batch"], n)
        try:
            self._flush_fn(key, bucket.context, bucket.payloads, bucket.futures)
        except BaseException as exc:
            for f in bucket.futures:
                if not f.done():
                    f.set_exception(exc)

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Requests currently waiting in open buckets."""
        with self._lock:
            return sum(len(b.payloads) for b in self._buckets.values())

    def stats(self) -> dict:
        with self._lock:
            return {
                "window_s": self.window_s,
                "max_batch": self.max_batch,
                "requests": self.requests,
                "flushes": self.flushes,
                "coalesced": self.coalesced,
                "pending": sum(len(b.payloads) for b in self._buckets.values()),
                "per_key": {
                    str(k): dict(v) for k, v in self._per_key.items()
                },
            }

    def close(self, flush: bool = True) -> None:
        """Stop accepting requests; flush (or fail) any open buckets."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            buckets = list(self._buckets.items())
            self._buckets.clear()
        for key, bucket in buckets:
            if bucket.timer is not None:
                bucket.timer.cancel()
            if flush:
                self._run_flush(key, bucket)
            else:
                err = RuntimeError("batcher closed with pending requests")
                for f in bucket.futures:
                    if not f.done():
                        f.set_exception(err)
