"""Out-of-GIL execution tier: a shared-memory process pool.

NumPy's strided copies (the view/region programs) drop the GIL, so the
thread-pool scheduler already scales them across cores.  Fancy
gather/scatter — everything :class:`~repro.kernels.executor
.IndexedProgram` and :class:`~repro.kernels.executor.ChunkedProgram`
do — holds the GIL for the whole move, so on the thread pool a large
indexed transposition serializes no matter how many streams exist.
This module is the tier below: worker *processes* that execute disjoint
partition tasks of one program concurrently, with **zero serialization
of tensor data**.

The data plane is ``multiprocessing.shared_memory`` via the
:class:`~repro.runtime.arena.BufferArena`: the parent leases one block
for the source and one for the destination, and only control metadata
crosses the pipe — the plan content key, segment names, offsets, shape,
dtype, compile options, and the task ranges.  Workers map the segments
by name and gather/scatter straight into the destination pages.

Workers rebuild frozen :class:`~repro.kernels.executor.ExecutorProgram`
state on first use from the plan content key: first from their own
handle on the persistent :class:`~repro.runtime.store.PlanStore`
(reloading it when the key is missing — the parent may have flushed
since), else from the serialized plan entry the parent attaches to a
key's first dispatch.  Rebuilt programs live in a per-worker
:class:`~repro.core.lru.BoundedLRU`; the warm-up counters
(``programs_built`` / ``program_hits`` / ``store_rehydrations`` /
``pipe_rehydrations``) are exported through :meth:`ProcessPool.stats`.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import time
import traceback
from multiprocessing import connection, get_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lru import BoundedLRU
from repro.runtime.arena import _quiet_close, attach_block_view

#: Per-worker program-cache bounds (mirrors the in-process executor
#: cache, scaled down: each worker only sees its shard of the key space).
WORKER_MAX_PROGRAMS = 128
WORKER_MAX_PROGRAM_BYTES = 256 * 1024 * 1024

#: How long :meth:`ProcessPool.close` waits for a worker to exit before
#: terminating it.
_JOIN_TIMEOUT_S = 5.0


def default_start_method() -> str:
    """``spawn`` unless overridden: forking a process that already runs
    scheduler threads is a deadlock lottery (and warns on 3.12+)."""
    return os.environ.get("REPRO_PROCPOOL_START", "spawn")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _Worker:
    """State and message loop of one pool worker (runs in the child)."""

    def __init__(self, conn, config: dict):
        self.conn = conn
        self.store = None
        self.store_path = config.get("store_path")
        if config.get("native_dir"):
            # Pin the native object cache to the parent's store-adjacent
            # directory before any program builds: content-key
            # rehydration *and* pipe-shipped pickles then both find the
            # parent's compiled .so objects — zero compiles in workers.
            from repro.kernels.native import set_default_cache_dir

            set_default_cache_dir(config["native_dir"])
        self.programs = BoundedLRU(
            maxsize=config.get("max_programs", WORKER_MAX_PROGRAMS),
            max_bytes=config.get(
                "max_program_bytes", WORKER_MAX_PROGRAM_BYTES
            ),
            sizeof=lambda program: program.nbytes,
        )
        self.segments = BoundedLRU(maxsize=config.get("max_segments", 64))
        self.counters = {
            "jobs": 0,
            "tasks": 0,
            "programs_built": 0,
            "program_hits": 0,
            "store_rehydrations": 0,
            "pipe_rehydrations": 0,
            "errors": 0,
        }

    # ---- program rehydration ----------------------------------------
    def _store_entry(self, key: str) -> Optional[dict]:
        if self.store_path is None:
            return None
        from repro.runtime.store import PlanStore

        if self.store is None:
            if not os.path.exists(self.store_path):
                return None
            self.store = PlanStore(self.store_path, autoflush=False)
        entry = self.store.entry(key)
        if entry is None:
            # The parent may have flushed new plans since we loaded.
            self.store.reload()
            entry = self.store.entry(key)
        return entry

    def _program(self, key: str, entry: Optional[dict], spec, compile_opts):
        """The compiled program for one plan content key, or ``None``
        when the worker has no way to rebuild it (-> ``need_plan``)."""
        cache_key = (key, compile_opts)
        program = self.programs.get(cache_key)
        if program is not None:
            self.counters["program_hits"] += 1
            return program
        source = None
        if entry is None:
            entry = self._store_entry(key)
            if entry is not None:
                source = "store_rehydrations"
        else:
            source = "pipe_rehydrations"
        if entry is None:
            return None
        from repro.kernels.executor import compile_executor
        from repro.runtime.store import rehydrate_plan

        # Older clients ship (lowering, max_index_bytes); the codegen
        # tier added a third flag.  Workers pass the shared store as the
        # artifact source so a codegen rebuild reuses the parent's
        # persisted nest descriptor instead of re-searching.
        if len(compile_opts) == 2:
            lowering, max_index_bytes = compile_opts
            codegen = False
        else:
            lowering, max_index_bytes, codegen = compile_opts
        plan = rehydrate_plan(entry, spec)
        program = compile_executor(
            plan.kernel,
            lowering=lowering,
            max_index_bytes=max_index_bytes,
            codegen=codegen,
            artifacts=self.store,
        )
        self.programs.put(cache_key, program)
        self.counters[source] += 1
        self.counters["programs_built"] += 1
        return program

    # ---- shared-memory views ----------------------------------------
    def _view(self, seg_name: str, offset: int, shape, dtype) -> np.ndarray:
        seg = self.segments.get(seg_name)
        if seg is None:
            seg, _ = attach_block_view(seg_name, (0,), np.uint8)
            self.segments.put(seg_name, seg)
        dtype = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64))
        return np.frombuffer(
            seg.buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)

    # ---- message loop ------------------------------------------------
    def _exec(self, job_id: int, msg: dict) -> None:
        program = self._program(
            msg["key"], msg.get("entry"), msg["spec"], msg["compile"]
        )
        if program is None:
            self.conn.send(("need_plan", job_id))
            return
        src = self._view(*msg["src"])
        out = self._view(*msg["out"])
        tasks = msg["tasks"]
        if msg["mode"] == "batch":
            for lo, hi in tasks:
                program.run_batch(src[lo:hi], out=out[lo:hi])
        else:
            for task in tasks:
                program.run_part(src, out, tuple(task))
        self.counters["jobs"] += 1
        self.counters["tasks"] += len(tasks)
        self.conn.send(("done", job_id, len(tasks)))

    def stats(self) -> dict:
        return {
            "pid": os.getpid(),
            **self.counters,
            "programs": self.programs.stats(),
        }

    def _teardown(self) -> None:
        """Unmap cached segment attachments before the process exits
        (interpreter-shutdown GC order would otherwise trip
        ``SharedMemory.__del__`` over any still-live view)."""
        for seg in self.segments.values():
            _quiet_close(seg)
        self.segments.clear()

    def loop(self) -> None:
        try:
            self._loop()
        finally:
            self._teardown()

    def _loop(self) -> None:
        while True:
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                return
            op = msg[0]
            if op == "close":
                return
            if op == "stats":
                self.conn.send(("stats", msg[1], self.stats()))
                continue
            if op != "exec":  # pragma: no cover - protocol guard
                continue
            job_id = msg[1]
            try:
                self._exec(job_id, msg[2])
            except BaseException as exc:
                self.counters["errors"] += 1
                detail = traceback.format_exc()
                try:
                    pickle.dumps(exc)
                except Exception:
                    exc = RuntimeError(f"{type(exc).__name__}: {exc}")
                try:
                    self.conn.send(("error", job_id, exc, detail))
                except (BrokenPipeError, OSError):
                    return


def _worker_main(conn, config: dict) -> None:  # pragma: no cover - child
    try:
        _Worker(conn, config).loop()
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _WorkerHandle:
    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.send_lock = threading.Lock()
        #: Plan content keys whose serialized entry this worker has seen.
        self.keys_sent: set = set()

    def send(self, msg) -> None:
        with self.send_lock:
            self.conn.send(msg)


class _Job:
    """Parent-side record of one execution fanned over the workers."""

    def __init__(self, done_cb: Callable, shards: int):
        self.done_cb = done_cb
        self.remaining = shards
        self.started = time.perf_counter()
        self.failed = False
        #: worker index -> the exec message sent (for need_plan resend).
        self.messages: Dict[int, tuple] = {}


class ProcessPool:
    """A pool of worker processes executing program tasks over shared
    memory.

    Parameters
    ----------
    num_workers:
        Worker process count (default: ``os.cpu_count()``).
    store_path:
        The persistent plan store workers rehydrate programs from
        (optional; without it every first use ships the serialized plan
        entry over the pipe instead).
    start_method:
        ``multiprocessing`` context: ``spawn`` (default, safe with
        threads) or ``fork`` (faster start, Linux only).
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        *,
        store_path=None,
        start_method: Optional[str] = None,
        max_programs: int = WORKER_MAX_PROGRAMS,
        max_program_bytes: int = WORKER_MAX_PROGRAM_BYTES,
    ):
        self.num_workers = int(num_workers or os.cpu_count() or 1)
        if self.num_workers <= 0:
            raise ValueError(
                f"num_workers must be positive, got {num_workers}"
            )
        self.start_method = start_method or default_start_method()
        from repro.runtime.store import native_cache_dir

        config = {
            "store_path": str(store_path) if store_path else None,
            "native_dir": (
                str(native_cache_dir(store_path)) if store_path else None
            ),
            "max_programs": max_programs,
            "max_program_bytes": max_program_bytes,
        }
        ctx = get_context(self.start_method)
        self._workers: List[_WorkerHandle] = []
        for i in range(self.num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, config),
                name=f"repro-procpool-{i}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(proc, parent_conn))
        self._lock = threading.Lock()
        self._jobs: Dict[int, _Job] = {}
        self._job_ids = itertools.count()
        self._stats_replies: Dict[int, dict] = {}
        self._stats_events: Dict[int, threading.Event] = {}
        self._closed = False
        self.jobs_dispatched = 0
        self.jobs_failed = 0
        self._collector = threading.Thread(
            target=self._collect, name="procpool-collector", daemon=True
        )
        self._collector.start()

    # ---- dispatch ----------------------------------------------------
    def submit_tasks(
        self,
        *,
        key: str,
        entry: Optional[dict],
        spec,
        compile_opts: Tuple[bool, int],
        mode: str,
        src: Tuple[str, int, tuple, str],
        out: Tuple[str, int, tuple, str],
        tasks: Sequence[tuple],
        done_cb: Callable[[Optional[BaseException], float], None],
    ) -> None:
        """Fan one program execution's tasks across the workers.

        ``src``/``out`` are ``(segment name, byte offset, shape, dtype
        str)`` descriptors of arena blocks; ``tasks`` are
        :meth:`~repro.kernels.executor.ExecutorProgram.partition` tasks
        (``mode="part"``) or batch row ranges (``mode="batch"``).
        ``done_cb(error, wall_s)`` fires exactly once when the last
        shard lands (``error`` is ``None`` on success).
        """
        if self._closed:
            raise RuntimeError("process pool is closed")
        if mode not in ("part", "batch"):
            raise ValueError(f"unknown mode {mode!r}")
        tasks = [tuple(t) for t in tasks]
        if not tasks:
            raise ValueError("submit_tasks requires at least one task")
        nshards = min(len(tasks), self.num_workers)
        bounds = np.linspace(0, len(tasks), nshards + 1, dtype=np.int64)
        shards = [
            tasks[int(lo) : int(hi)]
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        job_id = next(self._job_ids)
        job = _Job(done_cb, len(shards))
        base = {
            "key": key,
            "spec": spec,
            "compile": tuple(compile_opts),
            "mode": mode,
            "src": src,
            "out": out,
        }
        with self._lock:
            self._jobs[job_id] = job
            self.jobs_dispatched += 1
            for widx, shard in enumerate(shards):
                handle = self._workers[widx]
                msg = dict(base, tasks=shard)
                if key not in handle.keys_sent:
                    msg["entry"] = entry
                    handle.keys_sent.add(key)
                job.messages[widx] = ("exec", job_id, msg)
        for widx in list(job.messages):
            try:
                self._workers[widx].send(job.messages[widx])
            except (BrokenPipeError, OSError) as exc:
                self._fail_job(job_id, RuntimeError(f"worker died: {exc}"))
                return

    def _fail_job(self, job_id: int, exc: BaseException) -> None:
        with self._lock:
            job = self._jobs.pop(job_id, None)
            if job is None or job.failed:
                return
            job.failed = True
            self.jobs_failed += 1
        job.done_cb(exc, time.perf_counter() - job.started)

    # ---- result collection ------------------------------------------
    def _handle(self, widx: int, msg) -> None:
        op = msg[0]
        if op == "stats":
            _, rid, payload = msg
            with self._lock:
                self._stats_replies.setdefault(rid, {})[widx] = payload
                event = self._stats_events.get(rid)
            if event is not None:
                event.set()
            return
        job_id = msg[1]
        if op == "need_plan":
            # The worker's program cache evicted the key and it cannot
            # rehydrate locally: resend this shard with the entry.
            with self._lock:
                job = self._jobs.get(job_id)
                sent = job.messages.get(widx) if job else None
                if sent is not None:
                    exec_msg = dict(sent[2])
                    exec_msg["entry"] = exec_msg.get("entry") or self._entry_of(
                        job_id
                    )
            if sent is None:
                return
            if exec_msg.get("entry") is None:
                self._fail_job(
                    job_id,
                    RuntimeError(
                        "worker cannot rehydrate the program and no plan "
                        "entry is available"
                    ),
                )
                return
            self._workers[widx].send(("exec", job_id, exec_msg))
            return
        if op == "error":
            self._fail_job(job_id, msg[2])
            return
        if op == "done":
            done = None
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None:
                    return
                job.remaining -= 1
                if job.remaining == 0:
                    done = self._jobs.pop(job_id)
            if done is not None and not done.failed:
                done.done_cb(None, time.perf_counter() - done.started)

    def _entry_of(self, job_id: int) -> Optional[dict]:
        # Any shard of the job that carried the entry (lock held).
        job = self._jobs.get(job_id)
        if job is None:
            return None
        for sent in job.messages.values():
            entry = sent[2].get("entry")
            if entry is not None:
                return entry
        return None

    def _collect(self) -> None:
        conns = {w.conn: i for i, w in enumerate(self._workers)}
        while conns and not self._closed:
            ready = connection.wait(list(conns), timeout=0.2)
            for conn in ready:
                widx = conns[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    del conns[conn]
                    if not self._closed:
                        self._fail_worker_jobs(widx)
                    continue
                try:
                    self._handle(widx, msg)
                except Exception:  # pragma: no cover - keep collecting
                    traceback.print_exc()

    def _fail_worker_jobs(self, widx: int) -> None:
        with self._lock:
            affected = [
                job_id
                for job_id, job in self._jobs.items()
                if widx in job.messages
            ]
        for job_id in affected:
            self._fail_job(
                job_id,
                RuntimeError(f"process-pool worker {widx} exited unexpectedly"),
            )

    # ---- introspection ----------------------------------------------
    def stats(self, timeout: float = 2.0) -> dict:
        """Pool shape plus each live worker's warm-up counters."""
        rid = next(self._job_ids)
        event = threading.Event()
        with self._lock:
            self._stats_events[rid] = event
            self._stats_replies[rid] = {}
            alive = [
                (i, w) for i, w in enumerate(self._workers) if w.proc.is_alive()
            ]
        if not self._closed:
            for _, w in alive:
                try:
                    w.send(("stats", rid))
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if len(self._stats_replies[rid]) >= len(alive):
                        break
                event.wait(0.05)
                event.clear()
        with self._lock:
            replies = self._stats_replies.pop(rid, {})
            self._stats_events.pop(rid, None)
            pending = len(self._jobs)
        workers = [replies.get(i) for i in range(self.num_workers)]
        agg = {
            name: sum(w[name] for w in workers if w)
            for name in (
                "jobs",
                "tasks",
                "programs_built",
                "program_hits",
                "store_rehydrations",
                "pipe_rehydrations",
                "errors",
            )
        }
        return {
            "num_workers": self.num_workers,
            "start_method": self.start_method,
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_failed": self.jobs_failed,
            "jobs_pending": pending,
            **agg,
            "workers": workers,
        }

    @property
    def closed(self) -> bool:
        return self._closed

    # ---- lifecycle ---------------------------------------------------
    def close(self) -> None:
        """Stop the workers and fail anything still in flight."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            pending = list(self._jobs)
        for job_id in pending:
            self._fail_job(job_id, RuntimeError("process pool closed"))
        for w in self._workers:
            try:
                w.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for w in self._workers:
            w.proc.join(timeout=_JOIN_TIMEOUT_S)
            if w.proc.is_alive():  # pragma: no cover - stuck worker
                w.proc.terminate()
                w.proc.join(timeout=_JOIN_TIMEOUT_S)
            try:
                w.conn.close()
            except OSError:
                pass
        self._collector.join(timeout=_JOIN_TIMEOUT_S)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
