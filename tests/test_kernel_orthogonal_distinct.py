"""Unit tests for the Orthogonal-Distinct kernel (Alg. 2)."""

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import SchemaError
from repro.gpusim.engine import simulate_warp_accesses
from repro.gpusim.spec import KEPLER_K40C
from repro.kernels.orthogonal_distinct import PAD, TILE, OrthogonalDistinctKernel

from tests.helpers import assert_kernel_correct


def make(dims, perm, in_prefix, blockA, out_prefix, blockB, **kw):
    return OrthogonalDistinctKernel(
        TensorLayout(dims), Permutation(perm), in_prefix, blockA,
        out_prefix, blockB, **kw
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "dims,perm,ip,ba,op,bb",
        [
            ((64, 7, 9), (2, 1, 0), 1, 1, 1, 1),
            ((16, 5, 7, 16), (3, 2, 1, 0), 1, 3, 1, 4),
            ((16, 2, 32, 32), (3, 2, 1, 0), 2, 1, 1, 1),
            ((9, 7, 64), (2, 1, 0), 1, 5, 1, 1),
            ((40, 40), (1, 0), 1, 1, 1, 1),
            ((33, 5, 31), (2, 1, 0), 1, 2, 1, 1),
            ((6, 5, 7, 8), (2, 3, 0, 1), 2, 1, 2, 1),
        ],
    )
    def test_moves_data_correctly(self, dims, perm, ip, ba, op, bb, rng):
        assert_kernel_correct(make(dims, perm, ip, ba, op, bb), rng)

    def test_schema(self):
        assert make((64, 7, 9), (2, 1, 0), 1, 1, 1, 1).schema is (
            Schema.ORTHOGONAL_DISTINCT
        )

    def test_float32(self, rng):
        k = make((40, 6, 36), (2, 1, 0), 1, 1, 1, 1, elem_bytes=4)
        assert_kernel_correct(k, rng, dtype=np.float32)


class TestPreconditions:
    def test_rejects_overlapping_groups(self):
        """[a,b,c,d] => [d,c,b,a] with c on both sides (Sec. IV)."""
        with pytest.raises(SchemaError):
            make((8, 2, 8, 8), (3, 2, 1, 0), 3, 1, 2, 1)

    def test_normalizes_full_extent_block(self):
        k = make((16, 4, 9), (2, 1, 0), 1, 4, 1, 1)
        assert k.in_prefix == 2
        assert k.blockA == 1

    def test_block_out_of_range(self):
        with pytest.raises(SchemaError):
            make((16, 4, 9), (2, 1, 0), 1, 5, 1, 1)


class TestGeometry:
    def test_paper_fig2_slice(self):
        """Fig. 2: 9 x 7 x 64 slice, thread block per slice."""
        k = make((64, 7, 9), (2, 1, 0), 1, 1, 1, 7)
        # A = 64 (i0), B = 9 * 7 = 63 (i2 full + block 7 of i1).
        assert k.A == 64
        assert k.B == 63
        assert k.launch_geometry.num_blocks == 1

    def test_fixed_smem_footprint(self):
        k = make((64, 7, 9), (2, 1, 0), 1, 1, 1, 1)
        assert k.launch_geometry.shared_mem_per_block == TILE * (TILE + PAD) * 8

    def test_num_blocks(self):
        k = make((16, 5, 7, 16), (3, 2, 1, 0), 1, 1, 1, 1)
        # outer: dims 1 (5) and 2 (7); groups dims 0 and 3.
        assert k.launch_geometry.num_blocks == 35

    def test_blocked_dims_ceil(self):
        k = make((16, 5, 7, 16), (3, 2, 1, 0), 1, 3, 1, 4)
        # ceil(5/3) * ceil(7/4) = 2 * 2
        assert k.launch_geometry.num_blocks == 4


class TestOffsets:
    def test_in_offsets_are_valid_and_unique(self):
        k = make((16, 5, 7, 16), (3, 2, 1, 0), 1, 1, 1, 1)
        off = k.in_offset_array()
        assert len(off) == k.B
        assert len(np.unique(off)) == k.B

    def test_out_offsets_are_valid_and_unique(self):
        k = make((16, 5, 7, 16), (3, 2, 1, 0), 1, 1, 1, 1)
        off = k.out_offset_array()
        assert len(off) == k.A
        assert len(np.unique(off)) == k.A

    def test_tex_bytes(self):
        k = make((64, 7, 9), (2, 1, 0), 1, 1, 1, 1)
        assert k.tex_array_bytes() == (k.A + k.B) * 4


class TestCounters:
    def test_table1_c3_aligned(self):
        """For float data with A, B multiples of 32 the counts equal
        C3 = ceil(A/32) * vol/A and C3' = ceil(B/32) * vol/B exactly."""
        k = make((32, 4, 32), (2, 1, 0), 1, 1, 1, 1, elem_bytes=4)
        c = k.counters()
        vol = 32 * 4 * 32
        assert c.dram_ld_tx == (32 * 4 // 128) * vol // 32
        assert c.dram_st_tx == (32 * 4 // 128) * vol // 32

    def test_no_bank_conflicts_with_padding(self):
        c = make((64, 7, 9), (2, 1, 0), 1, 1, 1, 1).counters()
        assert c.smem_conflict_cycles == 0

    def test_texture_traffic_matches_accesses(self):
        c = make((64, 7, 9), (2, 1, 0), 1, 1, 1, 1).counters()
        assert c.tex_accesses == c.warp_ld_accesses + c.warp_st_accesses

    def test_detailed_engine_agreement_aligned(self):
        k = make((32, 4, 32), (2, 1, 0), 1, 1, 1, 1)
        ana = k.counters()
        det = simulate_warp_accesses(k.trace(), KEPLER_K40C, k.tex_array_bytes())
        assert ana.dram_ld_tx == det.dram_ld_tx
        assert ana.dram_st_tx == det.dram_st_tx
        assert ana.warp_ld_accesses == det.warp_ld_accesses
        assert ana.warp_st_accesses == det.warp_st_accesses
        assert ana.smem_conflict_cycles == det.smem_conflict_cycles == 0
        assert ana.active_lanes == det.active_lanes

    def test_detailed_engine_agreement_ragged(self):
        """Partial tiles: the analytic model assumes co-resident blocks
        share boundary lines through the L2; replaying with an L2-sized
        line cache must agree exactly, and the pessimistic small-cache
        replay must bracket it from above."""
        k = make((40, 7, 36), (2, 1, 0), 1, 1, 1, 1)
        ana = k.counters()
        l2 = simulate_warp_accesses(
            k.trace(), KEPLER_K40C, k.tex_array_bytes(),
            line_cache_capacity=4096,
        )
        assert ana.dram_ld_tx == l2.dram_ld_tx
        assert ana.dram_st_tx == l2.dram_st_tx
        small = simulate_warp_accesses(
            k.trace(), KEPLER_K40C, k.tex_array_bytes()
        )
        assert ana.warp_ld_accesses == small.warp_ld_accesses
        assert ana.dram_ld_tx <= small.dram_ld_tx
        assert ana.dram_st_tx <= small.dram_st_tx


class TestCyclesFeature:
    def test_full_tiles_only(self):
        """A = B = 64: four full tiles per slice, 64 cycles each."""
        k = make((64, 3, 64), (2, 1, 0), 1, 1, 1, 1)
        per_slice = (64 // 32) * (64 // 32) * 64
        assert k.cycles() == 3 * per_slice

    def test_partial_tiles_cost_less(self):
        k_full = make((64, 3, 64), (2, 1, 0), 1, 1, 1, 1)
        k_rag = make((48, 3, 48), (2, 1, 0), 1, 1, 1, 1)
        # Ragged slices do less total work per slice.
        assert k_rag.cycles() < k_full.cycles()

    def test_features_dict(self):
        f = make((64, 3, 64), (2, 1, 0), 1, 1, 1, 1).features()
        assert f["input_slice"] == 64.0
        assert f["output_slice"] == 64.0
        assert f["cycles"] > 0

    def test_slice_variants_cover_all_blocks(self):
        k = make((16, 5, 7, 16), (3, 2, 1, 0), 1, 3, 1, 4)
        total = sum(c for c, _, _ in k.slice_variant_shapes())
        assert total == k.launch_geometry.num_blocks
