"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "matches NumPy" in out
    assert "bandwidth" in out


def test_ttgt_contraction():
    out = run_example("ttgt_contraction.py")
    assert "max |TTGT - einsum|" in out
    assert "GEMM" in out


def test_kernel_explorer():
    out = run_example("kernel_explorer.py", "10")
    assert "orthogonal" in out
    assert "fused rank" in out


def test_library_comparison():
    out = run_example("library_comparison.py")
    for name in ("TTLG", "cuTT Heuristic", "cuTT Measure", "TTC", "Naive"):
        assert name in out


def test_model_training_quick():
    out = run_example("model_training.py", "--quick")
    assert "precision error" in out
    assert "orthogonal-distinct" in out
