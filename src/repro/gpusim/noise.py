"""Deterministic measurement jitter.

Real kernel timings vary run to run (the paper reports < 1 % variance
across five runs); more importantly, a *linear* regression fit against a
perfectly linear simulator would report a dishonest 0 % error.  To keep
the Table II reproduction meaningful, the simulator can perturb every
"measured" time by a small, reproducible factor keyed on the measurement
identity — the same configuration always yields the same time, so tests
and benchmarks stay deterministic.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable

#: Default relative jitter magnitude (standard-deviation-like scale).
DEFAULT_SCALE = 0.02


def _unit_interval(key: str) -> float:
    """Map a string key to a deterministic float in [0, 1)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def measurement_jitter(key: Hashable, scale: float = DEFAULT_SCALE) -> float:
    """Multiplicative jitter factor for a measurement identified by ``key``.

    Returns ``exp(scale * z)`` where ``z`` is a deterministic pseudo-normal
    draw (Box–Muller over two hash-derived uniforms).  ``scale = 0``
    disables jitter exactly (returns 1.0).
    """
    if scale < 0:
        raise ValueError(f"scale must be >= 0, got {scale}")
    if scale == 0:
        return 1.0
    u1 = _unit_interval(f"{key!r}#1")
    u2 = _unit_interval(f"{key!r}#2")
    # Guard the log; u1 is in [0, 1) so nudge away from zero.
    u1 = max(u1, 1e-12)
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    # Clamp to +/- 3 sigma so a single unlucky key cannot distort a fit.
    z = max(-3.0, min(3.0, z))
    return math.exp(scale * z)
