"""Unit tests for the reusable buffer arena (repro.runtime.arena)."""

import gc

import numpy as np
import pytest

from repro.runtime.arena import (
    MIN_BLOCK_BYTES,
    BufferArena,
    attach_block_view,
    size_class,
    _quiet_close,
)


class TestSizeClass:
    def test_minimum_block(self):
        assert size_class(1) == MIN_BLOCK_BYTES
        assert size_class(MIN_BLOCK_BYTES) == MIN_BLOCK_BYTES

    def test_rounds_up_to_power_of_two(self):
        assert size_class(MIN_BLOCK_BYTES + 1) == 2 * MIN_BLOCK_BYTES
        assert size_class(100_000) == 1 << 17

    def test_exact_power_is_itself(self):
        assert size_class(1 << 20) == 1 << 20

    def test_zero_clamps_to_minimum(self):
        assert size_class(0) == MIN_BLOCK_BYTES


class TestAcquireRelease:
    def test_fresh_lease_counts_as_allocation(self):
        with BufferArena(use_shared_memory=False) as arena:
            block = arena.acquire(1000)
            assert block.refs == 1
            assert block.capacity == MIN_BLOCK_BYTES
            assert arena.stats()["allocations"] == 1
            assert arena.stats()["reuses"] == 0
            block.release()

    def test_release_then_acquire_reuses(self):
        with BufferArena(use_shared_memory=False) as arena:
            first = arena.acquire(1000)
            first.release()
            second = arena.acquire(1000)
            assert second is first  # same block, popped off the free list
            stats = arena.stats()
            assert stats["allocations"] == 1
            assert stats["reuses"] == 1
            second.release()

    def test_different_size_classes_do_not_mix(self):
        with BufferArena(use_shared_memory=False) as arena:
            small = arena.acquire(100)
            small.release()
            big = arena.acquire(10 * MIN_BLOCK_BYTES)
            assert big is not small
            assert arena.stats()["allocations"] == 2
            big.release()

    def test_empty_returns_writable_view(self):
        with BufferArena(use_shared_memory=False) as arena:
            block, view = arena.empty((8, 4), np.float64)
            assert view.shape == (8, 4)
            assert view.dtype == np.float64
            view[:] = 7.5
            assert np.all(block.ndarray((8, 4), np.float64) == 7.5)
            block.release()

    def test_view_beyond_capacity_rejected(self):
        with BufferArena(use_shared_memory=False) as arena:
            block = arena.acquire(64)
            with pytest.raises(ValueError, match="exceeds"):
                block.ndarray((MIN_BLOCK_BYTES,), np.float64)
            block.release()


class TestRefcounting:
    def test_retain_keeps_block_leased(self):
        with BufferArena(use_shared_memory=False) as arena:
            block = arena.acquire(100)
            block.retain()
            assert block.refs == 2
            block.release()
            # Still leased by the co-owner: nothing returned yet.
            assert arena.stats()["releases"] == 0
            assert arena.stats()["free_blocks"] == 0
            block.release()
            assert arena.stats()["releases"] == 1
            assert arena.stats()["free_blocks"] == 1

    def test_release_past_zero_raises(self):
        with BufferArena(use_shared_memory=False) as arena:
            block = arena.acquire(100)
            block.release()
            with pytest.raises(RuntimeError, match="not leased"):
                block.release()

    def test_retain_unleased_raises(self):
        with BufferArena(use_shared_memory=False) as arena:
            block = arena.acquire(100)
            block.release()
            with pytest.raises(RuntimeError, match="not leased"):
                block.retain()


class TestByteBound:
    def test_release_beyond_budget_destroys(self):
        arena = BufferArena(
            max_free_bytes=MIN_BLOCK_BYTES, use_shared_memory=False
        )
        a = arena.acquire(100)
        b = arena.acquire(100)
        a.release()  # fills the whole free budget
        b.release()  # over budget: destroyed, not pooled
        stats = arena.stats()
        assert stats["free_blocks"] == 1
        assert stats["free_bytes"] == MIN_BLOCK_BYTES
        assert stats["trimmed"] == 1
        arena.close()

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            BufferArena(max_free_bytes=0)


class TestSharedTier:
    def test_small_leases_stay_on_heap(self):
        with BufferArena(shared_min_bytes=1 << 16) as arena:
            block = arena.acquire(4096)
            assert not block.shared
            assert block.name is None
            block.release()

    def test_large_leases_are_shared(self):
        with BufferArena(shared_min_bytes=1 << 16) as arena:
            block = arena.acquire(1 << 16)
            if not arena.use_shared_memory:
                pytest.skip("no shared memory on this host")
            assert block.shared
            assert block.name
            block.release()

    def test_shared_memory_off_means_all_heap(self):
        with BufferArena(use_shared_memory=False) as arena:
            block = arena.acquire(1 << 20)
            assert not block.shared
            block.release()

    def test_attach_block_view_maps_same_pages(self):
        with BufferArena() as arena:
            block, view = arena.empty((1 << 13,), np.float64)
            if not block.shared:
                pytest.skip("no shared memory on this host")
            view[:] = np.arange(1 << 13, dtype=np.float64)
            seg, foreign = attach_block_view(
                block.name, (1 << 13,), np.float64
            )
            try:
                assert np.array_equal(foreign, view)
                foreign[0] = -1.0  # writes travel the other way too
                assert view[0] == -1.0
            finally:
                del foreign
                _quiet_close(seg)
            block.release()


class TestClose:
    def test_close_is_idempotent_and_blocks_acquire(self):
        arena = BufferArena(use_shared_memory=False)
        arena.close()
        arena.close()
        assert arena.closed
        with pytest.raises(RuntimeError, match="closed"):
            arena.acquire(100)

    def test_strict_close_raises_on_leak(self):
        arena = BufferArena(use_shared_memory=False)
        block = arena.acquire(100)
        with pytest.raises(RuntimeError, match="leased"):
            arena.close(strict=True)
        assert arena.stats()["leaked"] == 1
        # The caller-held view stays valid after the leak-check close.
        assert block.ndarray((4,), np.uint8).shape == (4,)

    def test_clean_close_reports_no_leaks(self):
        arena = BufferArena(use_shared_memory=False)
        arena.acquire(100).release()
        stats = arena.close(strict=True)
        assert stats["leaked"] == 0
        assert stats["free_blocks"] == 0

    def test_leaked_shared_block_survives_wrapper_gc(self):
        """A leaked shared block's view stays valid after close(), and
        collecting the block must not re-close the live exports (the
        wrapper's ``__del__`` would warn ``BufferError`` otherwise)."""
        arena = BufferArena()
        block, view = arena.empty((1 << 14,), np.float64)
        if not block.shared:
            pytest.skip("no shared memory on this host")
        view[:3] = (1.0, 2.0, 3.0)
        arena.close()
        assert block._shm is None  # wrapper defused, not just kept
        assert view[1] == 2.0  # caller-held view still valid
        assert block.ndarray((4,), np.float64)[2] == 3.0
        del block, view
        gc.collect()  # silent: no "Exception ignored" from __del__

    def test_release_after_close_destroys(self):
        arena = BufferArena(use_shared_memory=False)
        block = arena.acquire(100)
        arena.close()
        block.release()  # late release: destroyed, never pooled
        assert arena.stats()["free_blocks"] == 0


class TestAutoReclaim:
    def test_dropped_lease_is_reclaimed_at_gc(self):
        arena = BufferArena()
        block = arena.acquire(1 << 16)
        if not block.shared:
            pytest.skip("no shared memory on this host")
        del block  # lease dropped without release()
        gc.collect()
        assert arena.stats()["auto_reclaimed"] == 1
        arena.close()
