"""Compact length-prefixed wire codec for the serving protocol.

msgpack-style framing over raw sockets, dependency-free: every message
is one **frame** — a 4-byte big-endian unsigned body length followed by
the body — and the body is a tag-prefixed binary encoding of one
JSON-like value (None, bools, 64-bit ints, doubles, UTF-8 strings,
bytes, lists, string-keyed dicts) extended with a native ``numpy``
array tag so tensor payloads cross the wire as raw dtype bytes instead
of per-element boxing.

The decoder is strict: every length is bounds-checked against the
remaining buffer, unknown tags and trailing garbage raise
:class:`~repro.errors.ProtocolError`, and nesting depth is capped.  A
declared frame longer than ``max_frame_bytes`` raises
:class:`FrameTooLargeError` *before* the body is read, so a hostile or
buggy peer cannot make the server buffer an arbitrary amount.

Two data paths share the one wire format (``docs/serving.md`` has the
copy-count table):

- the **copying** path — :func:`encode` / :func:`pack_frame` build one
  contiguous ``bytes`` frame (``tobytes`` + join + prefix concat), and
  :func:`decode` hands back owned writable array copies.  Kept as the
  baseline the load bench compares against.
- the **zero-copy** path — :func:`encode_parts` /
  :func:`pack_frame_parts` return a list of buffer-protocol parts in
  which every tensor is a flat ``uint8`` *view* of the source array
  (no ``tobytes``, no join), ready for ``writer.writelines(...)``;
  on decode, a ``buffer_factory`` callback lands tensor payloads
  directly in caller-provided storage (e.g. a
  :class:`~repro.runtime.arena.BufferArena` lease) with one
  readinto-style slice assignment instead of ``frombuffer().copy()``.

Both paths feed a :class:`CodecStats`, so the zero-copy invariant
(``tensor_bytes_copied == 0``) is observable and regression-testable.

Frame layout (see ``docs/serving.md`` for the verb schemas)::

    +----------------+----------------------------------+
    | u32 big-endian |  body: one encoded value         |
    | body length    |  (tagged, recursively encoded)   |
    +----------------+----------------------------------+

Tags (one byte each, lengths big-endian)::

    0xc0 None    0xc2 False   0xc3 True
    0xd3 int     (i64)        0xcb float (f64)
    0xdb str     (u32 len + UTF-8)
    0xc6 bytes   (u32 len + raw)
    0xdd list    (u32 count + items)
    0xdf dict    (u32 count + str-key/value pairs)
    0xc7 ndarray (u8 dtype-str len + dtype + u8 ndim +
                  ndim * u32 extents + raw C-order data)
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.errors import ProtocolError

#: Default cap on one frame's body, bytes.  Large enough for a ~200 MB
#: TTC-suite operand is deliberately NOT the default — servers that
#: want to accept tensor payloads that big opt in explicitly.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Nesting depth cap of the decoder (requests are depth <= 3).
MAX_DEPTH = 32

_LEN = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_T_NONE = 0xC0
_T_FALSE = 0xC2
_T_TRUE = 0xC3
_T_INT = 0xD3
_T_FLOAT = 0xCB
_T_STR = 0xDB
_T_BYTES = 0xC6
_T_LIST = 0xDD
_T_DICT = 0xDF
_T_NDARRAY = 0xC7

#: ``buffer_factory(shape, dtype) -> ndarray``: caller-provided storage
#: a decoded tensor lands in (C-contiguous, writable, exact shape/dtype).
BufferFactory = Callable[[Tuple[int, ...], np.dtype], np.ndarray]


class FrameTooLargeError(ProtocolError):
    """A frame declared a body longer than the negotiated maximum."""


class CodecStats:
    """Tensor-byte accounting for one endpoint (a connection, a client).

    Every ndarray crossing the codec adds its ``nbytes`` to exactly one
    bucket per traversal: ``tensor_bytes_zero_copy`` when it moved as a
    view (encode) or landed straight in caller-provided storage
    (decode), ``tensor_bytes_copied`` when an intermediate copy was
    taken (``tobytes``, ``frombuffer().copy()``, or a forced
    ``ascontiguousarray`` of a non-contiguous source).  The serving
    layer folds these into ``MetricsRegistry`` counters; the load bench
    asserts ``tensor_bytes_copied == 0`` on the zero-copy happy path.
    """

    __slots__ = ("tensor_bytes_copied", "tensor_bytes_zero_copy")

    def __init__(self) -> None:
        self.tensor_bytes_copied = 0
        self.tensor_bytes_zero_copy = 0

    def count(self, nbytes: int, copied: bool) -> None:
        if copied:
            self.tensor_bytes_copied += int(nbytes)
        else:
            self.tensor_bytes_zero_copy += int(nbytes)

    def as_dict(self) -> dict:
        return {
            "tensor_bytes_copied": self.tensor_bytes_copied,
            "tensor_bytes_zero_copy": self.tensor_bytes_zero_copy,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CodecStats(copied={self.tensor_bytes_copied}, "
            f"zero_copy={self.tensor_bytes_zero_copy})"
        )


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _byte_part(obj) -> Any:
    """A bytes-like part for a ``bytes``/``bytearray``/``memoryview``
    input **without** forcing a copy when the object already exposes a
    contiguous buffer (``b"".join``, ``writer.write`` and
    ``writer.writelines`` all consume buffer-protocol objects
    directly).  Non-contiguous memoryviews are the one case that must
    materialize."""
    if isinstance(obj, (bytes, bytearray)):
        return obj
    if obj.contiguous:
        return obj if obj.format == "B" and obj.ndim == 1 else obj.cast("B")
    return bytes(obj)


def _part_nbytes(part) -> int:
    return part.nbytes if isinstance(part, memoryview) else len(part)


def _tensor_view(arr: np.ndarray) -> memoryview:
    """A flat ``uint8`` memoryview over a C-contiguous array's bytes.

    ``reshape(-1)`` then ``view(uint8)`` are both views (never copies)
    on a C-contiguous source, and work where ``memoryview(arr)`` alone
    would not flatten: 0-d arrays, zero-size arrays, read-only arrays,
    and non-native-endian dtypes all export a plain ``'B'`` buffer.
    """
    return memoryview(arr.reshape(-1).view(np.uint8))


def _encode_into(
    obj: Any,
    out: List[Any],
    depth: int,
    zero_copy: bool,
    stats: Optional[CodecStats],
) -> None:
    if depth > MAX_DEPTH:
        raise ProtocolError(f"encode nesting deeper than {MAX_DEPTH}")
    if obj is None:
        out.append(bytes((_T_NONE,)))
    elif obj is True:
        out.append(bytes((_T_TRUE,)))
    elif obj is False:
        out.append(bytes((_T_FALSE,)))
    elif isinstance(obj, (int, np.integer)):
        out.append(bytes((_T_INT,)) + _I64.pack(int(obj)))
    elif isinstance(obj, (float, np.floating)):
        out.append(bytes((_T_FLOAT,)) + _F64.pack(float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(bytes((_T_STR,)) + _LEN.pack(len(raw)))
        out.append(raw)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = _byte_part(obj)
        out.append(bytes((_T_BYTES,)) + _LEN.pack(_part_nbytes(raw)))
        out.append(raw)
    elif isinstance(obj, np.ndarray):
        arr = obj if obj.flags.c_contiguous else np.ascontiguousarray(obj)
        dt = arr.dtype.str.encode("ascii")
        if len(dt) > 255 or arr.ndim > 255:
            raise ProtocolError("unencodable ndarray (dtype/ndim too wide)")
        head = bytes((_T_NDARRAY, len(dt))) + dt + bytes((arr.ndim,))
        head += b"".join(_LEN.pack(int(d)) for d in arr.shape)
        out.append(head)
        if zero_copy:
            # The part references the source array's memory; the caller
            # owns keeping it alive (and stable) until the write drains.
            data: Any = _tensor_view(arr)
        else:
            data = arr.tobytes()
        out.append(data)
        if stats is not None:
            stats.count(
                arr.nbytes, copied=arr is not obj or not zero_copy
            )
    elif isinstance(obj, (list, tuple)):
        out.append(bytes((_T_LIST,)) + _LEN.pack(len(obj)))
        for item in obj:
            _encode_into(item, out, depth + 1, zero_copy, stats)
    elif isinstance(obj, dict):
        out.append(bytes((_T_DICT,)) + _LEN.pack(len(obj)))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out.append(_LEN.pack(len(raw)))
            out.append(raw)
            _encode_into(value, out, depth + 1, zero_copy, stats)
    else:
        raise ProtocolError(f"unencodable type {type(obj).__name__}")


def encode(obj: Any, stats: Optional[CodecStats] = None) -> bytes:
    """Encode one value to its body bytes (no length prefix).

    The copying path: tensor data is materialized (``tobytes``) and the
    chunks joined into one contiguous body.
    """
    out: List[Any] = []
    _encode_into(obj, out, 0, zero_copy=False, stats=stats)
    return b"".join(out)


def encode_parts(obj: Any, stats: Optional[CodecStats] = None) -> List[Any]:
    """Encode one value as a list of buffer-protocol body parts.

    Tensor data appears as flat ``uint8`` memoryviews **over the source
    arrays** — no ``tobytes``, no join.  The concatenation of the parts
    is byte-identical to :func:`encode`'s output.  The parts borrow the
    source buffers: keep every encoded array alive and unmutated until
    the parts are fully written (``writer.writelines(parts)`` followed
    by ``drain()``).
    """
    out: List[Any] = []
    _encode_into(obj, out, 0, zero_copy=True, stats=stats)
    return out


def pack_frame(
    obj: Any,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    stats: Optional[CodecStats] = None,
) -> bytes:
    """One full wire frame: length prefix + encoded body (one buffer)."""
    body = encode(obj, stats=stats)
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte cap"
        )
    return _LEN.pack(len(body)) + body


def pack_frame_parts(
    obj: Any,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    stats: Optional[CodecStats] = None,
) -> List[Any]:
    """One full wire frame as scatter-gather parts for ``writelines``.

    Returns ``[length_prefix, *body_parts]``; the body length is summed
    over the parts, never joined.  Same lifetime contract as
    :func:`encode_parts`.
    """
    parts = encode_parts(obj, stats=stats)
    body_len = sum(_part_nbytes(p) for p in parts)
    if body_len > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame body of {body_len} bytes exceeds the "
            f"{max_frame_bytes}-byte cap"
        )
    return [_LEN.pack(body_len), *parts]


#: Parts at or below this size are coalesced into one small join before
#: writing; larger parts are written individually so the transport can
#: send straight from the source memoryview.  (Python 3.11's
#: ``Transport.writelines`` joins *all* parts into one buffer first,
#: which would re-copy every tensor byte we just avoided copying.)
WRITE_COALESCE_MAX = 32 * 1024


def write_parts(
    writer: "asyncio.StreamWriter",
    parts: List[Any],
    coalesce_max: int = WRITE_COALESCE_MAX,
) -> None:
    """Scatter-gather frame write: headers join, tensors do not.

    Consecutive small parts (tags, lengths, scalars) are joined into
    one buffer per run — a few hundred bytes, not a copy that matters —
    while each large part (a tensor's memoryview) is handed to the
    transport on its own, letting the socket send directly from the
    source array's memory when the write buffer is empty.  By the time
    this returns every part has been consumed (sent or buffered), so
    the caller may release the source buffers after ``drain()``.
    """
    small: List[Any] = []
    for part in parts:
        if _part_nbytes(part) <= coalesce_max:
            small.append(part)
            continue
        if small:
            writer.write(b"".join(small))
            small.clear()
        writer.write(part)
    if small:
        writer.write(b"".join(small))


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _need(buf: bytes, pos: int, n: int) -> None:
    if pos + n > len(buf):
        raise ProtocolError(
            f"truncated body: need {n} bytes at offset {pos}, "
            f"have {len(buf) - pos}"
        )


def _decode_ndarray(
    buf: bytes,
    pos: int,
    buffer_factory: Optional[BufferFactory],
    stats: Optional[CodecStats],
) -> Tuple[np.ndarray, int]:
    _need(buf, pos, 1)
    dt_len = buf[pos]
    pos += 1
    _need(buf, pos, dt_len)
    try:
        dtype = np.dtype(buf[pos : pos + dt_len].decode("ascii"))
    except (UnicodeDecodeError, TypeError) as exc:
        raise ProtocolError(f"invalid ndarray dtype: {exc}") from None
    pos += dt_len
    _need(buf, pos, 1)
    ndim = buf[pos]
    pos += 1
    shape = []
    for _ in range(ndim):
        _need(buf, pos, 4)
        shape.append(_LEN.unpack_from(buf, pos)[0])
        pos += 4
    count = int(np.prod(shape, dtype=np.int64))
    nbytes = count * dtype.itemsize
    _need(buf, pos, nbytes)
    if buffer_factory is not None:
        # Zero-copy landing: one readinto-style slice assignment moves
        # the payload straight into caller-provided storage (an arena
        # lease on the server) — no intermediate array is allocated.
        dest = buffer_factory(tuple(shape), dtype)
        if (
            not isinstance(dest, np.ndarray)
            or dest.dtype != dtype
            or dest.shape != tuple(shape)
            or not dest.flags.c_contiguous
            or not dest.flags.writeable
        ):
            raise TypeError(
                "buffer_factory must return a writable C-contiguous "
                f"ndarray of shape {tuple(shape)} and dtype {dtype}"
            )
        if nbytes:
            dest.reshape(-1).view(np.uint8)[:] = np.frombuffer(
                buf, dtype=np.uint8, count=nbytes, offset=pos
            )
        if stats is not None:
            stats.count(nbytes, copied=False)
        return dest, pos + nbytes
    arr = np.frombuffer(
        buf, dtype=dtype, count=count, offset=pos
    ).reshape(shape)
    if stats is not None:
        stats.count(nbytes, copied=True)
    # The frame buffer is short-lived; give callers a writable copy.
    return arr.copy(), pos + nbytes


def _decode_at(
    buf: bytes,
    pos: int,
    depth: int,
    buffer_factory: Optional[BufferFactory],
    stats: Optional[CodecStats],
) -> Tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise ProtocolError(f"decode nesting deeper than {MAX_DEPTH}")
    _need(buf, pos, 1)
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        _need(buf, pos, 8)
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_FLOAT:
        _need(buf, pos, 8)
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_STR:
        _need(buf, pos, 4)
        n = _LEN.unpack_from(buf, pos)[0]
        pos += 4
        _need(buf, pos, n)
        try:
            return buf[pos : pos + n].decode("utf-8"), pos + n
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in string: {exc}") from None
    if tag == _T_BYTES:
        _need(buf, pos, 4)
        n = _LEN.unpack_from(buf, pos)[0]
        pos += 4
        _need(buf, pos, n)
        # bytes() so callers see the same type whether the body arrived
        # as bytes (streams) or a bytearray (the readinto wire path).
        return bytes(buf[pos : pos + n]), pos + n
    if tag == _T_NDARRAY:
        return _decode_ndarray(buf, pos, buffer_factory, stats)
    if tag == _T_LIST:
        _need(buf, pos, 4)
        n = _LEN.unpack_from(buf, pos)[0]
        pos += 4
        # Every item needs >= 1 byte: reject absurd declared counts
        # before looping (a 4-byte count can claim 4 G items).
        _need(buf, pos, n)
        items = []
        for _ in range(n):
            item, pos = _decode_at(buf, pos, depth + 1, buffer_factory, stats)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        _need(buf, pos, 4)
        n = _LEN.unpack_from(buf, pos)[0]
        pos += 4
        _need(buf, pos, n)  # >= 1 byte per entry, same guard as lists
        obj = {}
        for _ in range(n):
            _need(buf, pos, 4)
            key_len = _LEN.unpack_from(buf, pos)[0]
            pos += 4
            _need(buf, pos, key_len)
            try:
                key = buf[pos : pos + key_len].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"invalid UTF-8 in key: {exc}") from None
            pos += key_len
            obj[key], pos = _decode_at(
                buf, pos, depth + 1, buffer_factory, stats
            )
        return obj, pos
    raise ProtocolError(f"unknown wire tag 0x{tag:02x}")


def decode(
    body: bytes,
    buffer_factory: Optional[BufferFactory] = None,
    stats: Optional[CodecStats] = None,
) -> Any:
    """Decode one body; raises :class:`ProtocolError` on any violation.

    Without ``buffer_factory`` every tensor decodes to an owned
    writable copy.  With it, each tensor payload lands directly in the
    storage the factory returns for its ``(shape, dtype)`` — the
    zero-copy ingress path.

    ``body`` may be ``bytes`` or a ``bytearray``; a ``bytearray`` (the
    buffer :class:`~repro.serving.wire.FrameConnection` recv'd into) is
    decoded in place, never copied.
    """
    buf = body if isinstance(body, (bytes, bytearray)) else bytes(body)
    value, pos = _decode_at(buf, 0, 0, buffer_factory, stats)
    if pos != len(body):
        raise ProtocolError(
            f"{len(body) - pos} trailing bytes after the encoded value"
        )
    return value


def decode_frame(
    frame: bytes,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    buffer_factory: Optional[BufferFactory] = None,
    stats: Optional[CodecStats] = None,
) -> Any:
    """Decode one full frame (prefix + body) from a byte string."""
    if len(frame) < 4:
        raise ProtocolError(f"truncated frame header ({len(frame)} bytes)")
    n = _LEN.unpack_from(frame, 0)[0]
    if n > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame declares a {n}-byte body (cap {max_frame_bytes})"
        )
    if len(frame) != 4 + n:
        raise ProtocolError(
            f"frame declares {n} body bytes but carries {len(frame) - 4}"
        )
    return decode(frame[4:], buffer_factory=buffer_factory, stats=stats)


# ----------------------------------------------------------------------
# asyncio stream helpers
# ----------------------------------------------------------------------


async def read_frame(
    reader: "asyncio.StreamReader",
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    buffer_factory: Optional[BufferFactory] = None,
    stats: Optional[CodecStats] = None,
):
    """Read and decode one frame from a stream.

    Returns the decoded value.  Raises :class:`EOFError` on a clean
    connection close (EOF exactly between frames), :class:`ProtocolError`
    on a mid-frame truncation, and :class:`FrameTooLargeError` as soon
    as an oversized length prefix arrives — without reading the body.
    ``buffer_factory``/``stats`` behave as in :func:`decode`.
    """
    try:
        head = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed between frames") from None
        raise ProtocolError(
            f"connection closed inside a frame header "
            f"({len(exc.partial)}/4 bytes)"
        ) from None
    n = _LEN.unpack(head)[0]
    if n > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame declares a {n}-byte body (cap {max_frame_bytes})"
        )
    try:
        body = await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed inside a frame body "
            f"({len(exc.partial)}/{n} bytes)"
        ) from None
    return decode(body, buffer_factory=buffer_factory, stats=stats)
