"""Runtime throughput: N concurrent clients through the TransposeService.

The production-shaped version of Fig. 12's repeated-use argument: a
service process handles a stream of transpose requests; plans are built
once, cached, and persisted.  A *restarted* process warm-starts from the
persistent store, so the second session builds (almost) no plans and
serves strictly faster.

Reported: requests/sec for the cold and the warm session, plan builds vs
restores, and the cache hit rate — written to
``results/runtime_throughput.txt``.
"""

import queue
import threading
import time

from conftest import write_result

from repro.bench.suites import six_d_suite
from repro.runtime import TransposeService

N_PROBLEMS = 16
N_CLIENTS = 8
CALLS_PER_PROBLEM = 4
EXTENT = 8


def pick_problems():
    cases = six_d_suite(EXTENT)
    step = max(1, len(cases) // N_PROBLEMS)
    return [(c.dims, c.perm) for c in cases[::step]][:N_PROBLEMS]


def drive_clients(service, problems):
    """All clients drain one shared queue of requests; returns wall time."""
    jobs = queue.Queue()
    for i in range(len(problems) * CALLS_PER_PROBLEM):
        jobs.put(problems[i % len(problems)])
    errors = []

    def client():
        while True:
            try:
                dims, perm = jobs.get_nowait()
            except queue.Empty:
                return
            try:
                service.execute(dims, perm)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

    threads = [threading.Thread(target=client) for _ in range(N_CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    assert not errors, errors[0]
    return wall


def run_session(store_path, problems):
    service = TransposeService(
        store_path=store_path, num_streams=4, store_autoflush=False
    )
    wall = drive_clients(service, problems)
    stats = service.stats()
    service.close()
    return wall, stats


def test_runtime_throughput_cold_vs_warm(benchmark, tmp_path):
    problems = pick_problems()
    n_requests = len(problems) * CALLS_PER_PROBLEM
    store_path = tmp_path / "plans.json"

    cold_wall, cold = run_session(store_path, problems)
    warm_wall, warm = run_session(store_path, problems)

    cold_counters = cold["metrics"]["counters"]
    warm_counters = warm["metrics"]["counters"]
    builds_cold = cold_counters["plans_built"]
    builds_warm = warm_counters.get("plans_built", 0)
    restored_warm = warm_counters.get("plans_restored", 0)

    lines = [
        "Runtime throughput — concurrent clients through TransposeService",
        f"{len(problems)} distinct 6D problems (extent {EXTENT}), "
        f"{n_requests} requests, {N_CLIENTS} clients, 4 streams",
        "",
        f"{'session':<8s} {'req/s':>10s} {'built':>7s} {'restored':>9s} "
        f"{'hit rate':>9s} {'sim ms':>9s}",
    ]
    for name, wall, stats, built, restored in (
        ("cold", cold_wall, cold, builds_cold, 0),
        ("warm", warm_wall, warm, builds_warm, restored_warm),
    ):
        sim_ms = sum(stats["scheduler"]["sim_clock_s"]) * 1e3
        lines.append(
            f"{name:<8s} {n_requests / wall:>10.1f} {built:>7d} "
            f"{restored:>9d} {stats['cache']['hit_rate'] * 100:>8.1f}% "
            f"{sim_ms:>9.3f}"
        )
    lines.append("")
    lines.append(
        f"warm session eliminated "
        f"{(1 - builds_warm / builds_cold) * 100:.1f}% of plan builds "
        "across the process restart"
    )
    text = "\n".join(lines)
    print(text)
    write_result("runtime_throughput", text)

    # Every distinct problem planned exactly once despite 8 clients.
    assert builds_cold == len(problems)
    # Acceptance: the warm store eliminates >= 95 % of plan builds.
    assert builds_warm <= 0.05 * builds_cold
    assert restored_warm == len(problems)

    warm_service = TransposeService(store_path=store_path, num_streams=2)
    dims, perm = problems[0]
    benchmark(lambda: warm_service.execute(dims, perm))
    warm_service.close()
