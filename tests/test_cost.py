"""Unit tests for the cost model (repro.gpusim.cost)."""

import pytest

from repro.gpusim.cost import CostModel
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.spec import KEPLER_K40C


def streaming_counters(n_bytes: int, lane_eff: float = 1.0) -> KernelCounters:
    """A perfectly coalesced copy moving n_bytes each way."""
    tx = n_bytes // 128
    warps = n_bytes // (32 * 8)
    slots = int(warps * 32 / lane_eff) if lane_eff else warps * 32
    return KernelCounters(
        dram_ld_tx=tx,
        dram_st_tx=tx,
        dram_ld_useful_bytes=n_bytes,
        dram_st_useful_bytes=n_bytes,
        warp_ld_accesses=warps,
        warp_st_accesses=warps,
        lane_slots=2 * slots,
        active_lanes=2 * warps * 32,
    )


BIG = 256 * 1024 * 1024  # 256 MB per direction


class TestBandwidthBound:
    def test_big_copy_near_peak(self):
        cm = CostModel()
        geom = LaunchGeometry(BIG // (256 * 8), 256)
        t = cm.kernel_time(streaming_counters(BIG), geom)
        bw = cm.bandwidth_gbps(BIG // 8, 8, t)
        # A calibrated streaming kernel should land near the achievable
        # ~230 GB/s, never above it.
        assert 180 < bw <= KEPLER_K40C.effective_bandwidth / 1e9 + 1

    def test_time_scales_linearly_with_volume(self):
        cm = CostModel()
        g1 = LaunchGeometry(BIG // (256 * 8), 256)
        g2 = LaunchGeometry(2 * BIG // (256 * 8), 256)
        t1 = cm.kernel_time(streaming_counters(BIG), g1)
        t2 = cm.kernel_time(streaming_counters(2 * BIG), g2)
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)

    def test_idle_lanes_derate_bandwidth(self):
        cm = CostModel()
        geom = LaunchGeometry(BIG // (256 * 8), 256)
        t_full = cm.kernel_time(streaming_counters(BIG, 1.0), geom)
        t_half = cm.kernel_time(streaming_counters(BIG, 0.5), geom)
        assert t_half > t_full * 1.2

    def test_small_grid_latency_bound(self):
        """Fig. 13's left edge: tiny tensors cannot saturate DRAM."""
        cm = CostModel()
        small = 64 * 1024
        geom = LaunchGeometry(4, 256)
        t = cm.kernel_time(streaming_counters(small), geom)
        bw = cm.bandwidth_gbps(small // 8, 8, t)
        assert bw < 40


class TestSecondaryResources:
    def test_bank_conflicts_can_dominate(self):
        cm = CostModel()
        c = streaming_counters(BIG)
        c.smem_ld_accesses = c.warp_ld_accesses
        c.smem_st_accesses = c.warp_st_accesses
        base = cm.kernel_time(c, LaunchGeometry(BIG // (256 * 8), 256))
        c.smem_conflict_cycles = 31 * c.smem_ld_accesses  # 32-way conflicts
        worse = cm.kernel_time(c, LaunchGeometry(BIG // (256 * 8), 256))
        assert worse > base

    def test_special_ops_cost(self):
        cm = CostModel()
        c = streaming_counters(BIG)
        base = cm.kernel_time(c, LaunchGeometry(BIG // (256 * 8), 256))
        c.special_ops = 10**10
        worse = cm.kernel_time(c, LaunchGeometry(BIG // (256 * 8), 256))
        assert worse > base * 2

    def test_minimum_kernel_time(self):
        cm = CostModel()
        t = cm.kernel_time(KernelCounters(), LaunchGeometry(1, 32))
        assert t >= KEPLER_K40C.min_kernel_time_s

    def test_breakdown_names_bound_resource(self):
        cm = CostModel()
        bd = cm.breakdown(
            streaming_counters(BIG), LaunchGeometry(BIG // (256 * 8), 256)
        )
        assert bd.bound_resource == "dram"
        assert bd.total_s > 0


class TestJitter:
    def test_no_key_no_jitter(self):
        cm = CostModel(jitter_scale=0.05)
        geom = LaunchGeometry(100, 256)
        c = streaming_counters(1 << 20)
        assert cm.kernel_time(c, geom) == cm.kernel_time(c, geom)

    def test_jitter_deterministic_per_key(self):
        cm = CostModel(jitter_scale=0.05)
        geom = LaunchGeometry(100, 256)
        c = streaming_counters(1 << 20)
        a = cm.kernel_time(c, geom, jitter_key="x")
        b = cm.kernel_time(c, geom, jitter_key="x")
        d = cm.kernel_time(c, geom, jitter_key="y")
        assert a == b
        assert a != d


class TestPlanTime:
    def test_scales_with_candidates(self):
        cm = CostModel()
        assert cm.plan_time(100) > cm.plan_time(1)

    def test_includes_alloc(self):
        cm = CostModel()
        assert cm.plan_time(0) >= KEPLER_K40C.alloc_overhead_s

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            CostModel().plan_time(-1)


class TestBandwidthMetric:
    def test_formula(self):
        """Paper: bandwidth = 2 * volume * 8 / (time * 1e9)."""
        cm = CostModel()
        assert cm.bandwidth_gbps(10**9, 8, 1.0) == pytest.approx(16.0)

    def test_zero_time_raises(self):
        with pytest.raises(ValueError):
            CostModel().bandwidth_gbps(100, 8, 0.0)
