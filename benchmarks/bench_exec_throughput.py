"""Warm wall-clock execute() throughput through the compiled executors.

Times the repeated-use data-movement path (the paper's Fig. 12
scenario): per case, the pre-compiled-executor **per-call** path (which
rebuilt the full gather/scatter index tensors on every call), the
**cold** compiled call (first execution, program compilation included),
the **warm** compiled call (cached program), the warm call with a
caller-provided ``out=`` buffer, and NumPy's ``reference_transpose``.
All paths are asserted bit-identical before anything is timed.

Cases cover both orthogonal schemas on 6D problems — through the
planner where it selects them, and directly constructed where it
prefers another schema — in both the view-lowered (exact tiling) and
region-lowered (partial tiles) regimes, plus an FVI-Match problem and
the fully-reversed permutation (the strided-copy worst case, reported
but not acceptance-gated: its per-call baseline is itself close to the
memory floor, so the warm win there is honest but modest).

Run directly::

    PYTHONPATH=src python benchmarks/bench_exec_throughput.py

writes a JSON summary to ``results/exec_throughput.json``.  CI runs
``--smoke``: fewer repeats, no file output, and a hard failure when the
warm compiled path is not comfortably faster than the per-call path on
the orthogonal cases — so a future change cannot silently reintroduce
per-call index construction.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path

import numpy as np

from conftest import bench_parser, gate, interleaved_ms, pick_repeats
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.plan import make_plan
from repro.kernels.common import reference_transpose
from repro.kernels.executor import clear_exec_caches, executor_for
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "results" / "exec_throughput.json"
)


def _planned(dims, perm):
    return make_plan(dims, perm).kernel


def _od_6d(perm, blockA, blockB):
    return OrthogonalDistinctKernel(
        TensorLayout((8, 6, 10, 9, 5, 12)),
        Permutation(perm),
        in_prefix=1,
        blockA=blockA,
        out_prefix=1,
        blockB=blockB,
    )


#: name -> (kernel factory, whether the issue's >=3x acceptance applies).
CASES = {
    "oa-6d": (lambda: _planned([16, 8, 4, 8, 4, 16], [5, 4, 3, 2, 1, 0]), True),
    "oa-6d-partial": (
        lambda: _planned([4, 16, 8, 8, 16, 4], [2, 3, 4, 5, 0, 1]),
        True,
    ),
    "od-6d-partial": (lambda: _od_6d((2, 3, 4, 5, 0, 1), 4, 3), True),
    "od-6d-exact": (lambda: _od_6d((3, 4, 5, 0, 1, 2), 6, 5), True),
    "od-6d-reverse": (lambda: _od_6d((5, 4, 3, 2, 1, 0), 4, 3), False),
    "fvi-large-4d": (lambda: _planned([64, 16, 16, 16], [0, 3, 2, 1]), False),
}

#: Smoke threshold on the orthogonal cases (the committed full run shows
#: >=3x; 2x keeps slow shared CI runners green while still failing any
#: return to per-call index construction).
SMOKE_MIN_SPEEDUP = 2.0


_interleaved_ms = interleaved_ms


def bench_case(kernel, repeats):
    src = np.random.default_rng(7).standard_normal(kernel.volume)
    ref = reference_transpose(src, kernel.layout, kernel.perm)
    out = np.empty_like(src)

    per_call = getattr(kernel, "execute_per_call", None)
    if per_call is None:
        # FVI/naive kernels' pre-executor execute() WAS the reference path.
        def per_call(s):
            return reference_transpose(kernel.check_input(s), kernel.layout, kernel.perm)

    # Parity first: every timed path must be bit-identical.
    clear_exec_caches()
    assert np.array_equal(kernel.execute(src), ref), "cold parity"
    assert np.array_equal(kernel.execute(src), ref), "warm parity"
    kernel.execute(src, out=out)
    assert np.array_equal(out, ref), "out= parity"
    assert np.array_equal(per_call(src), ref), "per-call parity"

    clear_exec_caches()
    t0 = time.perf_counter()
    kernel.execute(src)
    cold_ms = (time.perf_counter() - t0) * 1e3

    timed = _interleaved_ms(
        {
            "warm": lambda: kernel.execute(src),
            "warm_out": lambda: kernel.execute(src, out=out),
            "per_call": lambda: per_call(src),
            "reference": lambda: reference_transpose(
                src, kernel.layout, kernel.perm
            ),
        },
        repeats,
    )
    warm_ms, warm_med = timed["warm"]
    warm_out_ms, _ = timed["warm_out"]
    per_call_ms, _ = timed["per_call"]
    ref_ms, _ = timed["reference"]

    bytes_moved = 2 * kernel.volume * src.itemsize  # one read + one write
    return {
        "schema": kernel.schema.value,
        "volume": kernel.volume,
        "program": executor_for(kernel).kind,
        "per_call_ms": round(per_call_ms, 3),
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(warm_ms, 3),
        "warm_median_ms": round(warm_med, 3),
        "warm_out_ms": round(warm_out_ms, 3),
        "reference_ms": round(ref_ms, 3),
        "warm_gbps": round(bytes_moved / (warm_ms * 1e-3) / 1e9, 2),
        "speedup_vs_per_call": round(per_call_ms / warm_ms, 2),
        "speedup_cold_vs_per_call": round(per_call_ms / cold_ms, 2),
    }


def run(repeats):
    results = {}
    for name, (factory, gated) in CASES.items():
        row = bench_case(factory(), repeats)
        row["acceptance_gated"] = gated
        results[name] = row
    return results


def main(argv=None):
    ap = bench_parser(__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = ap.parse_args(argv)

    repeats = pick_repeats(args, full=11)
    results = run(repeats)

    print(
        f"{'case':<16s} {'schema':<22s} {'prog':<8s} {'per-call':>9s} "
        f"{'cold':>8s} {'warm':>8s} {'warm out':>9s} {'GB/s':>7s} {'speedup':>8s}"
    )
    for name, r in results.items():
        print(
            f"{name:<16s} {r['schema']:<22s} {r['program']:<8s} "
            f"{r['per_call_ms']:>7.2f}ms {r['cold_ms']:>6.2f}ms "
            f"{r['warm_ms']:>6.2f}ms {r['warm_out_ms']:>7.2f}ms "
            f"{r['warm_gbps']:>7.2f} {r['speedup_vs_per_call']:>7.2f}x"
        )

    if args.smoke:
        failures = [
            f"{name}: warm speedup {r['speedup_vs_per_call']}x < "
            f"{SMOKE_MIN_SPEEDUP}x over per-call"
            for name, r in results.items()
            if r["acceptance_gated"]
            and r["speedup_vs_per_call"] < SMOKE_MIN_SPEEDUP
        ]
        return gate("EXEC THROUGHPUT REGRESSION", failures, smoke=True)

    gated = [r["speedup_vs_per_call"] for r in results.values() if r["acceptance_gated"]]
    summary = {
        "repeats": repeats,
        "min_gated_speedup": math.floor(min(gated) * 100) / 100,
        "cases": results,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
