"""Shared helpers for kernel tests (importable, unlike conftest)."""

from __future__ import annotations

import numpy as np

from repro.core.permutation import Permutation
from repro.kernels.common import reference_transpose


def assert_kernel_correct(kernel, rng, dtype=np.float64):
    """Execute a kernel and compare element-exactly with the reference."""
    layout, perm = kernel.layout, kernel.perm
    src = rng.integers(0, 1 << 20, layout.volume).astype(dtype)
    ref = reference_transpose(src, layout, perm)
    out = kernel.execute(src)
    np.testing.assert_array_equal(out, ref)
    return out


def random_perm(rng, rank):
    p = np.arange(rank)
    rng.shuffle(p)
    return Permutation(tuple(int(x) for x in p))
