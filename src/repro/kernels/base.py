"""Abstract base class for transposition kernels.

Every kernel binds a (fused) transposition problem to one data-movement
schema with concrete parameters, and provides three views of itself:

- :meth:`execute` — functional data movement with NumPy, element-exact
  against the reference transposition (used by the public API and tests).
  Execution runs through a compiled :class:`~repro.kernels.executor
  .ExecutorProgram` built once per problem and cached process-wide, so
  warm calls do zero per-call index construction (see
  ``docs/executor.md``);
- :meth:`counters` — fast analytic activity counts (Table I of the paper
  with partial-tile corrections), consumed by the cost model;
- :meth:`trace` — optional per-warp access trace for the detailed engine
  (validation of the analytic counts on small tensors).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, Optional

import numpy as np

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import SchemaError
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.cost import CostModel
from repro.gpusim.engine import WarpAccess
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec


class TransposeKernel(abc.ABC):
    """One schema bound to one problem with concrete parameters."""

    #: Schema implemented by the subclass.
    schema: Schema

    def __init__(
        self,
        layout: TensorLayout,
        perm: Permutation,
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
    ):
        if perm.rank != layout.rank:
            raise SchemaError(
                f"permutation rank {perm.rank} != layout rank {layout.rank}"
            )
        if elem_bytes not in (4, 8):
            raise SchemaError(f"elem_bytes must be 4 or 8, got {elem_bytes}")
        self.layout = layout
        self.perm = perm
        self.elem_bytes = elem_bytes
        self.spec = spec
        self.out_layout = layout.permuted(perm)

    # ------------------------------------------------------------------
    @property
    def volume(self) -> int:
        return self.layout.volume

    @property
    @abc.abstractmethod
    def launch_geometry(self) -> LaunchGeometry:
        """Grid/block shape of the kernel launch."""

    @abc.abstractmethod
    def counters(self) -> KernelCounters:
        """Analytic activity counters for the full launch."""

    def execute(
        self, src: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Move data: 1-D linearized input -> 1-D linearized output.

        ``src`` must have ``self.volume`` elements; the result is an
        array in the output layout's linearization.  With ``out`` (a
        C-contiguous array of the same size and dtype) the result is
        written in place and returned, skipping the per-call allocation.

        Execution runs through the kernel's compiled
        :class:`~repro.kernels.executor.ExecutorProgram` (built once,
        cached process-wide), so warm calls perform no per-call index
        construction.
        """
        from repro.kernels.executor import executor_for

        src = self.check_input(src)
        program = executor_for(self)
        if out is None:
            return program.run(src)
        return program.run(src, out=self.check_output(out, src.dtype))

    def executor(self):
        """The kernel's cached compiled executor program."""
        from repro.kernels.executor import executor_for

        return executor_for(self)

    def execute_key(self) -> tuple:
        """Content key identifying this kernel's data movement.

        Two kernel instances with equal keys move data identically, so
        they share one cached :class:`~repro.kernels.executor
        .ExecutorProgram`.  Subclasses with slice parameters extend the
        base tuple.
        """
        return (
            type(self).__name__,
            self.layout.dims,
            self.perm.mapping,
            self.elem_bytes,
        )

    def supports_view_lowering(self) -> bool:
        """Whether the movement lowers to a pure reshape/transpose view
        chain (no index arrays).

        True by default — element-for-element, every transposition *is*
        the view chain; kernels whose per-block movement should instead
        be mirrored through explicit index maps (the orthogonal schemas
        with partial-tile variants) override this.
        """
        return True

    def lowering_regions(self):
        """Rectangular output-space boxes covering the tensor, or ``None``.

        When the movement does not lower to a single view chain, kernels
        with a slice coverage expose the interior/tail box per uneven
        blocked extent (see :meth:`~repro.kernels.common.SliceCoverage
        .lowering_regions`); the executor then compiles one strided copy
        per box instead of materializing index maps.
        """
        coverage = getattr(self, "coverage", None)
        return None if coverage is None else coverage.lowering_regions()

    def trace(self, max_blocks: Optional[int] = None) -> Iterator[WarpAccess]:
        """Per-warp access trace (detailed engine input).

        Subclasses that support detailed validation override this;
        the default raises ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not provide a detailed trace"
        )

    def tex_array_bytes(self) -> int:
        """Total bytes of texture-mapped offset arrays (0 if none)."""
        return 0

    def features(self) -> Dict[str, float]:
        """Raw feature values for the performance model (Sec. V)."""
        geom = self.launch_geometry
        return {
            "volume": float(self.volume),
            "num_blocks": float(geom.num_blocks),
            "num_threads": float(geom.total_threads),
        }

    # ------------------------------------------------------------------
    def simulated_time(
        self, cost_model: Optional[CostModel] = None, jitter_key=None
    ) -> float:
        """Simulated execution time of one launch, in seconds."""
        cm = cost_model if cost_model is not None else CostModel(self.spec)
        return cm.kernel_time(self.counters(), self.launch_geometry, jitter_key)

    def check_input(self, src: np.ndarray) -> np.ndarray:
        """Validate and flatten the input array for :meth:`execute`."""
        arr = np.ascontiguousarray(src).reshape(-1)
        if arr.size != self.volume:
            raise SchemaError(
                f"input has {arr.size} elements, layout volume is {self.volume}"
            )
        return arr

    def check_output(self, out: np.ndarray, dtype) -> np.ndarray:
        """Validate and flatten a caller-provided output array.

        The array must be C-contiguous (a reshape of a non-contiguous
        array would silently copy, losing the in-place write), match the
        layout volume, and match the input dtype.
        """
        if not isinstance(out, np.ndarray) or not out.flags["C_CONTIGUOUS"]:
            raise SchemaError("out must be a C-contiguous ndarray")
        if out.size != self.volume:
            raise SchemaError(
                f"out has {out.size} elements, layout volume is {self.volume}"
            )
        if out.dtype != dtype:
            raise SchemaError(
                f"out dtype {out.dtype} does not match input dtype {dtype}"
            )
        return out.reshape(-1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(dims={self.layout.dims}, "
            f"perm={self.perm.mapping})"
        )
