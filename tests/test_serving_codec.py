"""Wire codec: roundtrips plus the protocol edge cases of ISSUE 6.

Every malformed input must surface as a *typed* error (ProtocolError /
FrameTooLargeError), never as a struct error, IndexError, or a hang.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.serving.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    MAX_DEPTH,
    FrameTooLargeError,
    decode,
    decode_frame,
    encode,
    pack_frame,
    read_frame,
)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**62),
            0.0,
            -2.5,
            1e300,
            "",
            "hello",
            "ünïcode ☃",
            b"",
            b"\x00\xff" * 7,
            [],
            {},
            [1, "two", None, [3.0, False]],
            {"a": 1, "b": [2, {"c": b"x"}], "empty": {}},
        ],
    )
    def test_scalar_and_container(self, value):
        assert decode(encode(value)) == value

    def test_tuple_decodes_as_list(self):
        assert decode(encode((1, 2, 3))) == [1, 2, 3]

    def test_numpy_scalars_decode_as_python(self):
        assert decode(encode(np.int64(7))) == 7
        assert decode(encode(np.float64(2.5))) == 2.5

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(24, dtype=np.float64).reshape(2, 3, 4),
            np.arange(10, dtype=np.float32),
            np.arange(6, dtype=np.int16).reshape(3, 2),
            np.zeros((0, 4), dtype=np.float64),
            np.float64(3.5) * np.ones((1, 1, 1, 1, 1, 1)),
        ],
    )
    def test_ndarray(self, arr):
        back = decode(encode(arr))
        assert isinstance(back, np.ndarray)
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        np.testing.assert_array_equal(back, arr)

    def test_ndarray_copy_is_writable(self):
        back = decode(encode(np.arange(4.0)))
        back[0] = 99.0  # must not raise: decoded arrays are owned copies
        assert back[0] == 99.0

    def test_noncontiguous_ndarray(self):
        arr = np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2]
        np.testing.assert_array_equal(decode(encode(arr)), arr)

    def test_ndarray_nested_in_request(self):
        msg = {
            "op": "execute",
            "id": 17,
            "dims": [4, 4],
            "payload": np.arange(16, dtype=np.float64),
        }
        back = decode_frame(pack_frame(msg))
        assert back["op"] == "execute" and back["id"] == 17
        np.testing.assert_array_equal(back["payload"], msg["payload"])

    def test_frame_roundtrip(self):
        frame = pack_frame({"a": [1, 2]})
        assert decode_frame(frame) == {"a": [1, 2]}

    def test_deep_nesting_within_cap(self):
        value = "leaf"
        for _ in range(MAX_DEPTH):
            value = [value]
        assert decode(encode(value)) == value


class TestEdgeCases:
    def test_truncated_body(self):
        body = encode({"k": "value"})
        for cut in (0, 1, 5, len(body) - 1):
            with pytest.raises(ProtocolError):
                decode(body[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            decode(encode(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(ProtocolError, match="unknown wire tag"):
            decode(b"\x99")

    def test_invalid_utf8(self):
        bad = bytes((0xDB,)) + (2).to_bytes(4, "big") + b"\xff\xfe"
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode(bad)

    def test_absurd_list_count_rejected_fast(self):
        # A 9-byte body declaring 4 G items must fail on the bounds
        # check, not loop for minutes.
        bad = bytes((0xDD,)) + (2**32 - 1).to_bytes(4, "big") + b"\xc0" * 4
        with pytest.raises(ProtocolError, match="truncated"):
            decode(bad)

    def test_string_length_beyond_body(self):
        bad = bytes((0xDB,)) + (1000).to_bytes(4, "big") + b"hi"
        with pytest.raises(ProtocolError, match="truncated"):
            decode(bad)

    def test_ndarray_data_beyond_body(self):
        arr = np.arange(8, dtype=np.float64)
        body = encode(arr)
        with pytest.raises(ProtocolError, match="truncated"):
            decode(body[:-8])

    def test_depth_cap_encode_and_decode(self):
        value = "leaf"
        for _ in range(MAX_DEPTH + 1):
            value = [value]
        with pytest.raises(ProtocolError, match="nesting"):
            encode(value)
        body = b"".join(
            bytes((0xDD,)) + (1).to_bytes(4, "big")
            for _ in range(MAX_DEPTH + 1)
        ) + bytes((0xC0,))
        with pytest.raises(ProtocolError, match="nesting"):
            decode(body)

    def test_non_string_dict_key(self):
        with pytest.raises(ProtocolError, match="keys must be str"):
            encode({1: "x"})

    def test_unencodable_type(self):
        with pytest.raises(ProtocolError, match="unencodable"):
            encode(object())

    def test_pack_frame_oversize(self):
        with pytest.raises(FrameTooLargeError):
            pack_frame(b"x" * 100, max_frame_bytes=50)

    def test_decode_frame_oversize(self):
        frame = pack_frame(b"x" * 100)
        with pytest.raises(FrameTooLargeError):
            decode_frame(frame, max_frame_bytes=50)
        # FrameTooLargeError IS a ProtocolError: one except clause
        # handles both on the server.
        assert issubclass(FrameTooLargeError, ProtocolError)

    def test_decode_frame_header_truncated(self):
        with pytest.raises(ProtocolError, match="header"):
            decode_frame(b"\x00\x00")

    def test_decode_frame_length_mismatch(self):
        with pytest.raises(ProtocolError, match="declares"):
            decode_frame((10).to_bytes(4, "big") + b"abc")


class TestReadFrame:
    """The asyncio stream path: EOF vs truncation vs oversize."""

    @staticmethod
    def _reader(data: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_reads_frames_in_sequence(self):
        async def run():
            reader = self._reader(pack_frame(1) + pack_frame({"two": 2}))
            assert await read_frame(reader) == 1
            assert await read_frame(reader) == {"two": 2}
            with pytest.raises(EOFError):
                await read_frame(reader)

        asyncio.run(run())

    def test_clean_eof_between_frames(self):
        async def run():
            with pytest.raises(EOFError):
                await read_frame(self._reader(b""))

        asyncio.run(run())

    def test_truncated_header_is_protocol_error(self):
        async def run():
            with pytest.raises(ProtocolError, match="header"):
                await read_frame(self._reader(b"\x00\x00\x01"))

        asyncio.run(run())

    def test_truncated_body_is_protocol_error(self):
        async def run():
            frame = pack_frame({"op": "execute", "id": 1})
            with pytest.raises(ProtocolError, match="body"):
                await read_frame(self._reader(frame[:-3]))

        asyncio.run(run())

    def test_oversized_frame_rejected_before_body(self):
        async def run():
            # Only the 4-byte prefix arrives; the (huge) body never
            # does.  read_frame must reject on the prefix alone.
            head = (DEFAULT_MAX_FRAME_BYTES + 1).to_bytes(4, "big")
            with pytest.raises(FrameTooLargeError):
                await read_frame(self._reader(head, eof=False))

        asyncio.run(run())
