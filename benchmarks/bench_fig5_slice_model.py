"""Fig. 5 reproduction: predicted vs actual time over slice variants.

The paper plots, for dims 27^5 and permutation ``4 1 2 0 3``, the actual
and model-predicted execution times of every Orthogonal-Distinct slice
variant Alg. 3 enumerates, highlighting the chosen one (input slice 189,
output slice 27).  This bench regenerates the series, prints it with an
ASCII rendering, and asserts the paper's takeaways: predictions follow
the actual trend, and the model-chosen variant is at or near the true
optimum.
"""

import numpy as np

from conftest import write_result

from repro.bench.ascii_plot import multi_series
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.slices import enumerate_orthogonal_distinct
from repro.gpusim.spec import KEPLER_K40C
from repro.model.pretrained import oracle_predictor, pretrained_predictor

DIMS = (27, 27, 27, 27, 27)
PERM = (4, 1, 2, 0, 3)


def test_fig5(benchmark):
    layout, perm = TensorLayout(DIMS), Permutation(PERM)
    kernels = enumerate_orthogonal_distinct(layout, perm, KEPLER_K40C)
    actual_t = oracle_predictor()
    model_t = pretrained_predictor()

    rows = sorted(
        (
            (k.A * k.B, k.A, k.B, actual_t(k), model_t(k))
            for k in kernels
        ),
        key=lambda r: r[0],
    )
    atimes = np.array([r[3] for r in rows])
    ptimes = np.array([r[4] for r in rows])
    chosen = int(np.argmin(ptimes))
    best = int(np.argmin(atimes))

    lines = [
        "Fig. 5 — predictions of execution times over slice variants",
        f"dims {DIMS}, perm {' '.join(map(str, PERM))}, "
        f"{len(rows)} Orthogonal-Distinct variants",
        "",
        f"{'slice vol':>10s} {'A':>6s} {'B':>6s} {'ATIME ms':>10s} "
        f"{'PTIME ms':>10s}",
    ]
    for i, (vol, a, b, at, pt) in enumerate(rows):
        mark = ""
        if i == chosen:
            mark += "  <- CHOICE (model)"
        if i == best:
            mark += "  <- true optimum"
        lines.append(
            f"{vol:>10d} {a:>6d} {b:>6d} {at * 1e3:>10.4f} "
            f"{pt * 1e3:>10.4f}{mark}"
        )
    lines.append("")
    lines.append(
        multi_series(
            {"ATIME": (atimes * 1e3).tolist(), "PTIME": (ptimes * 1e3).tolist()},
            y_label="ms",
            x_label="slice volume (ascending)",
        )
    )
    regret = atimes[chosen] / atimes[best]
    corr = float(np.corrcoef(atimes, ptimes)[0, 1])
    lines.append(
        f"\nprediction/actual correlation: {corr:.3f}; "
        f"model-choice regret: {regret:.3f}x "
        f"(paper: chosen A=189, B=27; ours A={rows[chosen][1]}, "
        f"B={rows[chosen][2]})"
    )
    lines.append(
        "note: our variant-to-variant spread is narrower than the "
        "paper's (the simulator credits L2 line sharing that softens "
        "misalignment penalties), so the correlation is over a "
        "range-restricted series; the takeaway metric is the regret."
    )
    text = "\n".join(lines)
    print(text)
    write_result("fig5_slice_model", text)

    # Paper takeaways: predictions track the trend well enough that the
    # chosen variant is (near-)optimal.
    assert corr > 0.3, "predictions must follow the actual trend"
    assert regret < 1.1, "model choice must be near the true optimum"

    # Benchmark the full Alg. 3 search for this problem.
    benchmark(
        lambda: enumerate_orthogonal_distinct(layout, perm, KEPLER_K40C)
    )
