"""Concurrency and scheduling tests for the transpose-serving runtime."""

import threading

import numpy as np
import pytest

import repro.core.cache as cache_mod
from repro.core.api import transpose as api_transpose
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100
from repro.model.pretrained import oracle_predictor
from repro.runtime import (
    SingleFlight,
    StreamScheduler,
    TransposeService,
    get_default_service,
    set_default_service,
)

ORACLE = oracle_predictor()

PROBLEMS = [
    ((8, 8, 8), (2, 1, 0)),
    ((16, 4, 8), (1, 2, 0)),
    ((8, 8, 8, 8), (0, 3, 1, 2)),
]


class TestExactlyOncePlanning:
    def test_hammer_overlapping_keys(self, monkeypatch):
        """8 threads x overlapping keys -> one make_plan call per key."""
        builds = []
        build_lock = threading.Lock()
        real_make_plan = cache_mod.make_plan

        def counting_make_plan(dims, perm, *args, **kwargs):
            with build_lock:
                builds.append((tuple(dims), tuple(perm)))
            return real_make_plan(dims, perm, *args, **kwargs)

        monkeypatch.setattr(cache_mod, "make_plan", counting_make_plan)

        n_threads, rounds = 8, 5
        service = TransposeService(predictor=ORACLE, num_streams=2)
        barrier = threading.Barrier(n_threads)
        failures = []

        def client():
            try:
                barrier.wait()
                for _ in range(rounds):
                    for dims, perm in PROBLEMS:
                        service.plan(dims, perm)
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [threading.Thread(target=client) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.close()

        assert not failures
        # Exactly-once construction per distinct key.
        assert sorted(set(builds)) == sorted(PROBLEMS)
        assert len(builds) == len(PROBLEMS)
        counters = service.metrics.snapshot()["counters"]
        assert counters["plans_built"] == len(PROBLEMS)
        assert counters["cache_misses"] == len(PROBLEMS)
        expected = n_threads * rounds * len(PROBLEMS)
        assert counters["plan_requests"] == expected
        assert counters["cache_hits"] + counters["cache_misses"] + counters.get(
            "requests_coalesced", 0
        ) == expected

    def test_single_flight_leader_failure_propagates_then_retries(self):
        flight = SingleFlight()
        calls = []

        def boom():
            calls.append("boom")
            raise RuntimeError("planning failed")

        with pytest.raises(RuntimeError):
            flight.do("k", boom)
        # The flight retired: a later call retries instead of caching the error.
        value, leader = flight.do("k", lambda: 42)
        assert (value, leader) == (42, True)
        assert flight.in_flight() == 0


class TestScheduler:
    def test_outputs_match_numpy_across_streams(self):
        service = TransposeService(predictor=ORACLE, num_streams=3)
        rng = np.random.default_rng(0)
        arrays = [
            rng.random((4, 6, 8)),
            rng.random((8, 3, 5)),
            rng.random((2, 7, 9)),
        ]
        futures, expected = [], []
        for a in arrays:
            for axes in [(2, 0, 1), (1, 2, 0), (2, 1, 0)]:
                dims = a.shape[::-1]
                from repro.core.api import axes_to_perm

                futures.append(
                    service.submit(
                        dims, axes_to_perm(axes), 8, payload=a.reshape(-1)
                    )
                )
                expected.append(np.transpose(a, axes).reshape(-1))
        for fut, want in zip(futures, expected):
            report = fut.result(timeout=60)
            assert np.array_equal(report.output, want)
            assert report.sim_time_s > 0
            assert 0 <= report.stream < 3
        snap = service.scheduler.snapshot()
        assert sum(snap["jobs_done"]) == len(futures)
        assert sum(snap["sim_clock_s"]) > 0
        service.close()

    def test_timing_only_jobs_advance_sim_clocks(self):
        service = TransposeService(predictor=ORACLE, num_streams=2)
        for _ in range(4):
            report = service.execute((8, 8, 8), (2, 1, 0))
            assert report.output is None
            assert report.sim_time_s > 0
        counters = service.metrics.snapshot()["counters"]
        assert counters["executions_completed"] == 4
        hists = service.metrics.snapshot()["histograms"]
        schema = service.plan((8, 8, 8), (2, 1, 0)).schema.value
        assert hists[f"sim_s.{schema}"]["count"] == 4
        assert hists[f"wall_s.{schema}"]["count"] == 4
        service.close()

    def test_multi_device_streams(self):
        scheduler = StreamScheduler(
            num_streams=2, devices=[KEPLER_K40C, PASCAL_P100]
        )
        assert scheduler.snapshot()["devices"] == [
            KEPLER_K40C.name,
            PASCAL_P100.name,
        ]
        scheduler.shutdown()

    def test_submit_after_shutdown_raises(self):
        service = TransposeService(predictor=ORACLE, num_streams=1)
        service.close()
        with pytest.raises(RuntimeError):
            service.plan((8, 8), (1, 0))

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            StreamScheduler(num_streams=0)


class TestServiceApi:
    def test_transpose_matches_numpy(self):
        with TransposeService(predictor=ORACLE, num_streams=2) as service:
            a = np.arange(4 * 5 * 6, dtype=np.float64).reshape(4, 5, 6)
            out = service.transpose(a, (2, 0, 1))
            assert np.array_equal(out, np.transpose(a, (2, 0, 1)))

    def test_stats_shape(self):
        with TransposeService(predictor=ORACLE, num_streams=2) as service:
            service.execute((8, 8, 8), (2, 1, 0))
            stats = service.stats()
        assert stats["cache"]["misses"] == 1
        assert stats["scheduler"]["num_streams"] == 2
        assert stats["store"] is None
        assert stats["metrics"]["counters"]["plans_built"] == 1

    def test_store_and_store_path_conflict(self, tmp_path):
        from repro.runtime import PlanStore

        store = PlanStore(tmp_path / "a.json")
        with pytest.raises(ValueError):
            TransposeService(store=store, store_path=tmp_path / "b.json")

    def test_default_service_routes_api(self):
        service = TransposeService(predictor=ORACLE, num_streams=2)
        previous = set_default_service(service)
        try:
            a = np.arange(3 * 4 * 5, dtype=np.float64).reshape(3, 4, 5)
            out = api_transpose(a, (2, 0, 1))
            assert np.array_equal(out, np.transpose(a, (2, 0, 1)))
            counters = service.metrics.snapshot()["counters"]
            assert counters["plan_requests"] == 1
            # Explicit predictors bypass the shared service.
            api_transpose(a, (1, 0, 2), predictor=ORACLE)
            assert service.metrics.counter("plan_requests") == 1
        finally:
            set_default_service(previous)
            service.close()
        assert get_default_service() is previous
