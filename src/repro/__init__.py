"""TTLG reproduction: a tensor transposition library for (simulated) GPUs.

Reimplements *TTLG - An Efficient Tensor Transposition Library for GPUs*
(Vedurada et al., IPDPS 2018) in Python, with a deterministic GPU
memory-system simulator standing in for the Tesla K40c testbed.

Quickstart::

    import numpy as np
    import repro

    a = np.arange(2 * 3 * 4, dtype=np.float64).reshape(2, 3, 4)
    b = repro.transpose(a, (2, 0, 1))          # like np.transpose
    est = repro.predict_time((32, 16, 8), (2, 1, 0))
    print(est.schema, est.kernel_time, est.bandwidth_gbps)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.core.cache import PlanCache, cached_plan
from repro.core.api import (
    Transposer,
    TransposeEstimate,
    axes_to_perm,
    perm_to_axes,
    plan_transpose,
    predict_time,
    transpose,
    transpose_many,
)
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.plan import TransposePlan, make_plan
from repro.core.taxonomy import Schema
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100, DeviceSpec
from repro.kernels.executor import clear_exec_caches, exec_cache_stats

__version__ = "1.0.0"

#: Names resolved lazily from :mod:`repro.runtime` so importing the
#: package stays light for callers who never start the serving layer.
_RUNTIME_EXPORTS = (
    "runtime",
    "TransposeService",
    "PlanStore",
    "StreamScheduler",
    "MetricsRegistry",
    "get_default_service",
    "set_default_service",
    "install_default_service",
)


def __getattr__(name):
    if name in _RUNTIME_EXPORTS:
        import repro.runtime as _runtime

        return _runtime if name == "runtime" else getattr(_runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    *_RUNTIME_EXPORTS,
    "transpose",
    "transpose_many",
    "Transposer",
    "cached_plan",
    "PlanCache",
    "TransposeEstimate",
    "plan_transpose",
    "predict_time",
    "make_plan",
    "TransposePlan",
    "TensorLayout",
    "Permutation",
    "Schema",
    "DeviceSpec",
    "KEPLER_K40C",
    "PASCAL_P100",
    "axes_to_perm",
    "perm_to_axes",
    "clear_exec_caches",
    "exec_cache_stats",
    "__version__",
]
