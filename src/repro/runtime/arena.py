"""Reusable buffer arena over ``multiprocessing.shared_memory``.

Every warm ``run``/``run_batch``/``submit_batch`` output used to pay a
fresh ``np.empty`` — a page-faulting allocation on the hottest path of
the serving layer, and (worse) a buffer the process-pool backend could
not hand to a worker without serializing the data.  The arena fixes
both: output buffers are leased from size-class free lists of
shared-memory blocks, so

- a warm lease is a free-list pop (zero allocations, counted), and
- a block's *name* is enough for another process to map the same
  physical pages, so the process-pool workers gather/scatter straight
  into the destination with no tensor bytes crossing the pipe.

Blocks are reference-counted: :meth:`ArenaBlock.retain` /
:meth:`ArenaBlock.release` let several futures share one backing block
(the micro-batcher hands each caller a row view of one batch output).
A block returns to its size-class free list when the last reference is
released; the free pool is byte-bounded (``max_free_bytes``) with
excess blocks destroyed eagerly.  :meth:`BufferArena.close` is
leak-checked: still-leased blocks are counted, their names unlinked,
and their mappings deliberately **kept alive** so caller-held views
stay valid (``strict=True`` raises instead, for tests).

Hosts where shared memory cannot be created (exotic sandboxes) fall
back to plain heap blocks transparently — everything works except the
cross-process handoff, which the process pool checks for explicitly.
"""

from __future__ import annotations

import weakref
from threading import Lock
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

#: Smallest block the arena hands out; sub-4KiB leases round up to this.
MIN_BLOCK_BYTES = 4096

#: Default byte budget of the *free* pool.  Leased blocks are caller
#: demand and are never refused; blocks released beyond this budget are
#: destroyed instead of pooled.
DEFAULT_MAX_FREE_BYTES = 1 << 30

#: Blocks below this capacity are heap-backed even in a shared-memory
#: arena: creating an shm segment is a filesystem round-trip, which
#: swamps a small lease, and the process pool only ever wants blocks
#: orders of magnitude larger (see ``PROC_MIN_BYTES`` in the
#: scheduler).
DEFAULT_SHARED_MIN_BYTES = 1 << 16


def _quiet_close(shm) -> None:
    """Close a ``SharedMemory`` mapping, tolerating live exports.

    When an ndarray still exports the buffer, ``mmap.close()`` raises
    ``BufferError``.  Retrying later cannot help — the caller keeps its
    stale view as long as it likes — so the wrapper is defused (its
    ``__del__`` would otherwise retry the close and spam interpreter
    shutdown with "Exception ignored" tracebacks).  The mapping itself
    is reclaimed when the last exporting array is garbage-collected.
    """
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None


def _lost_segment(arena_ref, shm) -> None:
    """``weakref.finalize`` callback for a block garbage-collected while
    still leased (the caller dropped the report without ``release()``).

    Unlinks the segment name so the OS can reclaim the pages; a
    succeeding unlink means nobody tore the block down before, i.e. a
    genuinely lost lease, which is counted.  Must not take the arena's
    main lock (it runs synchronously at GC, potentially *inside* a
    locked arena method).
    """
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        return  # already destroyed by the arena: normal end of life
    arena = arena_ref()
    if arena is not None:
        with arena._reclaim_lock:
            arena.auto_reclaimed += 1
    _quiet_close(shm)


def size_class(nbytes: int) -> int:
    """The power-of-two block capacity serving an ``nbytes`` lease."""
    need = max(int(nbytes), 1)
    if need <= MIN_BLOCK_BYTES:
        return MIN_BLOCK_BYTES
    return 1 << (need - 1).bit_length()


class ArenaBlock:
    """One leased (or pooled) buffer of ``capacity`` bytes.

    ``name`` is the shared-memory segment name (``None`` for heap
    blocks).  The block starts with one reference held by the acquirer;
    :meth:`retain` adds co-owners and :meth:`release` drops one — the
    last release returns the block to its arena.  ``ndarray`` views are
    only valid while at least one reference is held.
    """

    def __init__(self, arena: "BufferArena", capacity: int, shm=None):
        self._arena = arena
        self.capacity = capacity
        self._shm = shm
        self._heap = None if shm is not None else bytearray(capacity)
        self.refs = 1
        self._finalizer = None

    @property
    def name(self) -> Optional[str]:
        return self._shm.name if self._shm is not None else None

    @property
    def shared(self) -> bool:
        return self._shm is not None

    def ndarray(self, shape, dtype, offset: int = 0) -> np.ndarray:
        """A NumPy view of the block's memory (no copy)."""
        dtype = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64))
        if offset + count * dtype.itemsize > self.capacity:
            raise ValueError(
                f"view of {count} x {dtype} at offset {offset} exceeds "
                f"block capacity {self.capacity}"
            )
        buf = self._shm.buf if self._shm is not None else self._heap
        return np.frombuffer(
            buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)

    def retain(self) -> "ArenaBlock":
        self._arena._retain(self)
        return self

    def release(self) -> None:
        self._arena._release(self)

    def _destroy(self, unmap: bool = True) -> None:
        """Tear the backing storage down (arena-internal)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._shm is not None:
            try:
                self._shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            if unmap:
                # Drop our mapping only when no caller can still hold a
                # view into it; a leaked block keeps its pages mapped.
                # A stale ndarray still exporting the buffer keeps the
                # mapping alive until it is garbage-collected.
                _quiet_close(self._shm)
            else:
                # Leaked: keep the pages mapped so caller-held views
                # stay valid, but take the buffer out of the wrapper
                # and defuse it — its GC-time ``__del__`` would retry
                # ``close()`` against the live exports and emit an
                # "Exception ignored" BufferError.  The mapping dies
                # with the last exporting view.
                self._heap = self._shm._buf
                self._shm._buf = None
                self._shm._mmap = None
            self._shm = None
        elif unmap:
            self._heap = None


class BufferArena:
    """Size-class free lists of reusable (shared-memory) blocks.

    Parameters
    ----------
    max_free_bytes:
        Byte budget of the pooled free lists; released blocks beyond it
        are destroyed instead of cached.
    use_shared_memory:
        Back blocks with ``multiprocessing.shared_memory`` (required for
        the process-pool backend).  Falls back to heap blocks per-block
        when segment creation fails.
    shared_min_bytes:
        Blocks smaller than this stay heap-backed even with shared
        memory on (segment creation costs a filesystem round-trip that
        small leases never amortize).
    """

    def __init__(
        self,
        max_free_bytes: int = DEFAULT_MAX_FREE_BYTES,
        use_shared_memory: bool = True,
        shared_min_bytes: int = DEFAULT_SHARED_MIN_BYTES,
    ):
        if max_free_bytes <= 0:
            raise ValueError(
                f"max_free_bytes must be positive, got {max_free_bytes}"
            )
        self.max_free_bytes = max_free_bytes
        self.use_shared_memory = use_shared_memory and _shm is not None
        self.shared_min_bytes = shared_min_bytes
        self._lock = Lock()
        self._reclaim_lock = Lock()  # only ever guards auto_reclaimed
        self._free: Dict[int, List[ArenaBlock]] = {}
        self._free_bytes = 0
        # Leased blocks, weakly held: a caller dropping its report
        # without release() lets the block die, and the finalizer
        # (_lost_segment) unlinks the pages instead of leaking them.
        self._leases: "weakref.WeakValueDictionary[int, ArenaBlock]" = (
            weakref.WeakValueDictionary()
        )
        self._closed = False
        # Counters (the warm-path acceptance gate reads these).
        self.allocations = 0  # new blocks created
        self.reuses = 0  # leases served from a free list
        self.releases = 0
        self.trimmed = 0  # blocks destroyed by the byte bound
        self.leaked = 0  # blocks still leased at close()
        self.auto_reclaimed = 0  # lost leases reclaimed at GC

    # ------------------------------------------------------------------
    def _new_block(self, capacity: int) -> ArenaBlock:
        shm = None
        if self.use_shared_memory and capacity >= self.shared_min_bytes:
            try:
                shm = _shm.SharedMemory(create=True, size=capacity)
            except OSError:  # pragma: no cover - shm-less sandboxes
                shm = None
        block = ArenaBlock(self, capacity, shm)
        if shm is not None:
            block._finalizer = weakref.finalize(
                block, _lost_segment, weakref.ref(self), shm
            )
        return block

    def acquire(self, nbytes: int) -> ArenaBlock:
        """Lease a block of at least ``nbytes`` (refcount 1)."""
        cls = size_class(nbytes)
        with self._lock:
            if self._closed:
                raise RuntimeError("arena is closed")
            bucket = self._free.get(cls)
            if bucket:
                block = bucket.pop()
                self._free_bytes -= block.capacity
                block.refs = 1
                self.reuses += 1
                self._leases[id(block)] = block
                return block
            self.allocations += 1
        # Creating the segment can block on the OS; do it outside the
        # lock and only then account the lease.
        block = self._new_block(cls)
        with self._lock:
            self._leases[id(block)] = block
        return block

    def empty(self, shape, dtype) -> Tuple[ArenaBlock, np.ndarray]:
        """``np.empty`` replacement: a leased block plus its view."""
        dtype = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64))
        block = self.acquire(max(count * dtype.itemsize, 1))
        return block, block.ndarray(shape, dtype)

    # ---- refcounting (called through ArenaBlock) ---------------------
    def _retain(self, block: ArenaBlock) -> None:
        with self._lock:
            if block.refs <= 0:
                raise RuntimeError("retain() on a block that is not leased")
            block.refs += 1

    def _release(self, block: ArenaBlock) -> None:
        destroy = None
        with self._lock:
            if block.refs <= 0:
                raise RuntimeError("release() on a block that is not leased")
            block.refs -= 1
            if block.refs:
                return
            self._leases.pop(id(block), None)
            self.releases += 1
            if (
                self._closed
                or block.capacity + self._free_bytes > self.max_free_bytes
            ):
                if not self._closed:
                    self.trimmed += 1
                destroy = block
            else:
                self._free.setdefault(block.capacity, []).append(block)
                self._free_bytes += block.capacity
        if destroy is not None:
            destroy._destroy()

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Just the integer event/occupancy counters of :meth:`stats`.

        The serving snapshot folds these under ``serving.arena.*`` so
        lease churn and leaks show up next to the request counters.
        """
        s = self.stats()
        return {
            k: int(s[k])
            for k in (
                "allocations",
                "reuses",
                "releases",
                "trimmed",
                "leaked",
                "auto_reclaimed",
                "active_blocks",
                "active_bytes",
            )
        }

    def stats(self) -> dict:
        with self._lock:
            active = list(self._leases.values())
            with self._reclaim_lock:
                reclaimed = self.auto_reclaimed
            return {
                "shared_memory": self.use_shared_memory,
                "allocations": self.allocations,
                "reuses": self.reuses,
                "releases": self.releases,
                "trimmed": self.trimmed,
                "leaked": self.leaked,
                "auto_reclaimed": reclaimed,
                "active_blocks": len(active),
                "active_bytes": sum(b.capacity for b in active),
                "free_blocks": sum(len(v) for v in self._free.values()),
                "free_bytes": self._free_bytes,
                "max_free_bytes": self.max_free_bytes,
            }

    def close(self, strict: bool = False) -> dict:
        """Destroy the free pool and leak-check the leases.

        Pooled blocks are unlinked and unmapped.  Still-leased blocks
        are *leaks*: their names are unlinked (so the OS reclaims the
        pages once every process unmaps) but their mappings are kept, so
        caller-held views remain valid.  With ``strict=True`` a leak
        raises ``RuntimeError`` after the cleanup.  Returns the final
        stats snapshot.  Idempotent.
        """
        with self._lock:
            already, self._closed = self._closed, True
            if already:
                leaked = free = []
            else:
                free = [b for bucket in self._free.values() for b in bucket]
                self._free.clear()
                self._free_bytes = 0
                leaked = list(self._leases.values())
                self.leaked += len(leaked)
        for block in free:
            block._destroy()
        for block in leaked:
            block._destroy(unmap=False)
        if strict and leaked:
            raise RuntimeError(
                f"arena closed with {len(leaked)} leased block(s) "
                "still outstanding"
            )
        return self.stats()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "BufferArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_attach_lock = Lock()


def _attach_untracked(name: str):
    """``SharedMemory(name=...)`` without resource-tracker registration.

    Attaching registers the segment with the resource tracker, which a
    spawn child *shares* with its parent — so a worker exiting would
    unlink a segment the parent still uses, and an explicit unregister
    here races the parent's own unlink into tracker ``KeyError`` spam
    (a CPython <= 3.12 sharp edge; 3.13 grew ``track=False`` for
    exactly this).  Suppressing the registration is the clean path:
    ownership stays with the creating arena alone.
    """
    from multiprocessing import resource_tracker

    with _attach_lock:
        orig = resource_tracker.register

        def _skip(resource_name, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                orig(resource_name, rtype)

        resource_tracker.register = _skip
        try:
            return _shm.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig


def attach_block_view(name: str, shape, dtype, offset: int = 0):
    """Map a foreign arena block by segment name (worker side).

    Returns ``(shm, view)``; the caller owns closing ``shm`` (use
    :func:`_quiet_close` if views may still be live).  The attachment
    is never registered with the resource tracker — see
    :func:`_attach_untracked`.
    """
    if _shm is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    seg = _attach_untracked(name)
    dtype = np.dtype(dtype)
    count = int(np.prod(shape, dtype=np.int64))
    view = np.frombuffer(
        seg.buf, dtype=dtype, count=count, offset=offset
    ).reshape(shape)
    return seg, view
