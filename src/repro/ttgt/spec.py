"""Einsum-style contraction specifications.

A contraction is written ``"abc,cd->abd"``: index labels of A, of B, and
of the output C.  Labels follow the library's layout convention — the
*first* label is the fastest-varying dimension.

Classification of the labels (standard TTGT vocabulary):

- **M**: labels in A and C but not B (row space of the GEMM),
- **N**: labels in B and C but not A (column space),
- **K**: labels in A and B but not C (contracted),
- batch/hadamard labels (in all three) are rejected — plain TTGT cannot
  fold them into a single GEMM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ContractionError


@dataclass(frozen=True)
class ContractionSpec:
    """Parsed and validated contraction."""

    a_labels: Tuple[str, ...]
    b_labels: Tuple[str, ...]
    c_labels: Tuple[str, ...]
    extents: Dict[str, int]

    @property
    def m_labels(self) -> Tuple[str, ...]:
        return tuple(
            l for l in self.a_labels if l in self.c_labels and l not in self.b_labels
        )

    @property
    def n_labels(self) -> Tuple[str, ...]:
        return tuple(
            l for l in self.b_labels if l in self.c_labels and l not in self.a_labels
        )

    @property
    def k_labels(self) -> Tuple[str, ...]:
        return tuple(
            l for l in self.a_labels if l in self.b_labels and l not in self.c_labels
        )

    def volume(self, labels: Sequence[str]) -> int:
        return math.prod(self.extents[l] for l in labels)

    @property
    def flops(self) -> int:
        """Multiply-add count of the GEMM: 2 * M * N * K."""
        return (
            2
            * self.volume(self.m_labels)
            * self.volume(self.n_labels)
            * self.volume(self.k_labels)
        )

    def dims_of(self, labels: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.extents[l] for l in labels)


def parse_contraction(
    expr: str, extents: Dict[str, int]
) -> ContractionSpec:
    """Parse ``"abc,cd->abd"`` plus per-label extents.

    Raises
    ------
    ContractionError
        On malformed expressions, repeated labels within one tensor,
        output labels missing from the inputs, batch (three-way) labels,
        or missing/invalid extents.
    """
    if "->" not in expr or "," not in expr.split("->")[0]:
        raise ContractionError(
            f"expected 'A,B->C' contraction expression, got {expr!r}"
        )
    lhs, c_part = expr.split("->", 1)
    a_part, b_part = lhs.split(",", 1)
    a, b, c = tuple(a_part.strip()), tuple(b_part.strip()), tuple(c_part.strip())
    for name, labels in (("A", a), ("B", b), ("C", c)):
        if len(set(labels)) != len(labels):
            raise ContractionError(f"repeated label in {name}: {labels}")
        if not labels:
            raise ContractionError(f"{name} has no indices in {expr!r}")
    for l in c:
        if l not in a and l not in b:
            raise ContractionError(f"output label {l!r} not in any input")
    for l in set(a) & set(b) & set(c):
        raise ContractionError(
            f"label {l!r} appears in A, B and C; batched TTGT is unsupported"
        )
    for l in set(a) | set(b) | set(c):
        if l not in extents:
            raise ContractionError(f"no extent given for label {l!r}")
        if extents[l] <= 0:
            raise ContractionError(f"extent of {l!r} must be positive")
    for l in a:
        if l not in b and l not in c:
            raise ContractionError(
                f"label {l!r} of A is neither contracted nor in the output"
            )
    for l in b:
        if l not in a and l not in c:
            raise ContractionError(
                f"label {l!r} of B is neither contracted nor in the output"
            )
    spec = ContractionSpec(
        a_labels=a,
        b_labels=b,
        c_labels=c,
        extents={l: int(extents[l]) for l in set(a) | set(b) | set(c)},
    )
    if not spec.k_labels:
        raise ContractionError(f"no contracted index in {expr!r}")
    return spec
