"""Figs. 8 and 9 reproduction: 720 permutations of a 6D tensor, extents
all 15 — repeated use (Fig. 8) and single use (Fig. 9).

Extent 15 is the misaligned case: 15 doubles = 120 B runs straddle
transaction boundaries and leave warp lanes idle, which is where TTLG's
dimension combining pays off most against single-dim tilers.
"""

import numpy as np

from conftest import render_sweep, write_result

EXTENT = 15


def _series(sweep, scenario, name):
    return np.array([r[name] for r in sweep.bandwidths(scenario)])


def test_fig8_repeated_use(benchmark, sweep_factory, libraries):
    sweep = sweep_factory(EXTENT)
    text = render_sweep(
        sweep, "repeated", "Fig. 8 — 6D tensor (all 15), repeated use"
    )
    print(text)
    write_result("fig8_6d_all15_repeated", text)

    ttlg = _series(sweep, "repeated", "TTLG")
    cutt_m = _series(sweep, "repeated", "cuTT Measure")
    cutt_h = _series(sweep, "repeated", "cuTT Heuristic")
    ttc = _series(sweep, "repeated", "TTC")
    assert np.mean(ttlg >= cutt_m * 0.99) > 0.7
    assert np.mean(cutt_m >= cutt_h * 0.99) > 0.95
    # TTC sits at the bottom of the library pack on average (its naive
    # fallback wins the odd case where elementwise streaming is fine).
    assert ttc.mean() <= cutt_m.mean() * 1.02
    assert ttc.mean() < 0.9 * ttlg.mean()
    # The misalignment penalty: mean below the extent-16 sweep's (checked
    # cross-figure in EXPERIMENTS.md); locally, TTLG still leads.
    assert ttlg.mean() > 1.1 * cutt_h.mean()

    case = sweep.cases[min(300, len(sweep.cases) - 1)]
    benchmark(lambda: libraries[0].plan(case.dims, case.perm))


def test_fig9_single_use(benchmark, sweep_factory, libraries):
    sweep = sweep_factory(EXTENT)
    text = render_sweep(
        sweep, "single", "Fig. 9 — 6D tensor (all 15), single use"
    )
    print(text)
    write_result("fig9_6d_all15_single", text)

    ttlg = _series(sweep, "single", "TTLG")
    cutt_m = _series(sweep, "single", "cuTT Measure")
    assert np.mean(cutt_m < ttlg) > 0.95

    case = sweep.cases[min(300, len(sweep.cases) - 1)]
    benchmark(lambda: libraries[1].plan(case.dims, case.perm))
