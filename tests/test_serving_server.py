"""End-to-end serving tests: real sockets, one event loop per test.

No pytest-asyncio in the environment, so every test drives its own
``asyncio.run``.  The permit-leak oracle of ISSUE 6 runs after every
error path: ``server.admission.idle`` must hold once replies land.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    DrainingError,
    OverloadedError,
    ProtocolError,
    QuotaExceededError,
)
from repro.model.pretrained import oracle_predictor
from repro.runtime.service import TransposeService
from repro.runtime.store import content_key
from repro.serving import ServingClient, ServingServer
from repro.serving.codec import pack_frame, read_frame

ORACLE = oracle_predictor()

DIMS, PERM = (6, 5, 4), (2, 0, 1)


def run_serving(coro_fn, **server_kwargs):
    """Start a server, run ``coro_fn(server)``, always close cleanly."""

    async def main():
        kwargs = dict(replicas=2, num_streams=1, predictor=ORACLE)
        kwargs.update(server_kwargs)
        server = ServingServer(**kwargs)
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.close()

    return asyncio.run(main())


class TestHappyPath:
    def test_ping_reports_topology(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                info = await client.ping()
            assert info["version"] == 1
            assert info["replicas"] == 2
            assert info["router"] == "hash"
            assert info["draining"] is False

        run_serving(scenario)

    def test_execute_parity_with_local_service(self):
        rng = np.random.default_rng(3)
        src = rng.standard_normal(np.prod(DIMS))
        with TransposeService(predictor=ORACLE, num_streams=1) as local:
            expected = local.execute(DIMS, PERM, payload=src).output

        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                result = await client.execute(DIMS, PERM, 8, payload=src)
            np.testing.assert_array_equal(result["output"], expected)
            assert result["replica"] in (0, 1)
            assert result["backend"]

        run_serving(scenario)

    def test_pipelined_requests_all_complete(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                results = await asyncio.gather(
                    *(
                        client.execute(
                            (4 + i % 3, 5, 3), (2, 0, 1), 8, synth=True
                        )
                        for i in range(24)
                    )
                )
            assert len(results) == 24
            assert all(r["sim_s"] > 0 for r in results)
            assert server.admission.idle

        run_serving(scenario)

    def test_hash_routing_is_stable_and_matches_the_ring(self):
        problems = [((4 + i, 5, 3), (2, 0, 1)) for i in range(6)]

        async def scenario(server):
            seen = {}
            async with ServingClient(server.host, server.port) as client:
                for _ in range(3):
                    for dims, perm in problems:
                        r = await client.execute(dims, perm, 8, synth=True)
                        key = content_key(dims, perm, 8, server.spec)
                        expected = server.route_key(key)
                        assert r["replica"] == expected
                        seen.setdefault(key, set()).add(r["replica"])
            # one replica per key, always
            assert all(len(reps) == 1 for reps in seen.values())
            # with 6 keys both replicas should see traffic
            owners = {next(iter(reps)) for reps in seen.values()}
            assert owners == {0, 1}

        run_serving(scenario)

    def test_stats_verb_snapshot(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                await client.execute(DIMS, PERM, 8, synth=True)
                snap = await client.stats()
            assert snap["replicas"] == 2
            assert len(snap["per_replica"]) == 2
            assert snap["counters"]["serving.replies"] == 1
            assert snap["admission"]["admitted"] == 1

        run_serving(scenario)

    def test_private_program_caches_show_up_in_snapshot(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                for i in range(4):
                    await client.execute(
                        (4 + i, 3, 5), (2, 0, 1), 8, synth=True
                    )
                snap = await client.stats()
            stats = [rep["executor"] for rep in snap["per_replica"]]
            assert all(s is not None for s in stats)
            assert sum(s["entries"] for s in stats) >= 1
            assert sum(s["maxsize"] for s in stats) == 2 * 8

        run_serving(scenario, program_cache_size=8)


class TestErrors:
    def test_unknown_verb(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                with pytest.raises(ProtocolError) as err:
                    await client.request("frobnicate")
            assert err.value.code == "UNKNOWN_VERB"
            assert "frobnicate" in str(err.value)
            assert server.admission.idle

        run_serving(scenario)

    def test_bad_request_missing_problem(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                with pytest.raises(ProtocolError) as err:
                    await client.request("execute", dims=[], perm=[])
            assert err.value.code == "BAD_REQUEST"
            assert server.admission.idle

        run_serving(scenario)

    def test_invalid_permutation_is_typed(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                with pytest.raises(Exception) as err:
                    await client.request(
                        "execute", dims=[4, 4], perm=[0, 0], synth=True
                    )
            assert getattr(err.value, "code", None) in (
                "INVALID_PERMUTATION",
                "BAD_REQUEST",
            )
            assert server.admission.idle

        run_serving(scenario)

    def test_deadline_expired_is_typed_and_releases_permit(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                with pytest.raises(DeadlineExceededError):
                    await client.execute(
                        DIMS, PERM, 8, synth=True, deadline_ms=1e-6
                    )
            snap = server.serving_snapshot()
            assert snap["counters"]["serving.deadline_missed"] >= 1
            assert server.admission.idle

        run_serving(scenario)

    def test_frame_too_large_reply_then_hangup(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            # Declare a body far beyond the cap; never send it.
            writer.write((2**30).to_bytes(4, "big"))
            await writer.drain()
            reply = await read_frame(reader)
            assert reply["ok"] is False
            assert reply["error"] == "FRAME_TOO_LARGE"
            with pytest.raises(EOFError):
                await read_frame(reader)  # server hung up
            writer.close()
            assert server.admission.idle

        run_serving(scenario, max_frame_bytes=1 << 20)

    def test_mid_frame_disconnect_leaves_server_healthy(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            frame = pack_frame({"op": "execute", "id": 1})
            writer.write(frame[: len(frame) - 3])  # truncated body
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # The server must shrug that off and keep serving.
            async with ServingClient(server.host, server.port) as client:
                info = await client.ping()
            assert info["version"] == 1
            assert server.admission.idle

        run_serving(scenario)

    def test_overloaded_sheds_then_retry_succeeds(self):
        async def scenario(server):
            async with ServingClient(
                server.host, server.port, pool_size=2, max_retries=0
            ) as raw:
                results = await asyncio.gather(
                    *(
                        raw.execute((16, 16, 8), (2, 0, 1), 8, synth=True)
                        for _ in range(12)
                    ),
                    return_exceptions=True,
                )
            oks = [r for r in results if isinstance(r, dict)]
            sheds = [r for r in results if isinstance(r, OverloadedError)]
            unexpected = [
                r
                for r in results
                if not isinstance(r, (dict, OverloadedError))
            ]
            assert not unexpected
            assert oks, "at least one request must be admitted"
            assert sheds, "max_inflight=1 must shed concurrent requests"
            assert server.admission.idle
            snap = server.serving_snapshot()
            assert snap["admission"]["shed_overloaded"] == len(sheds)

            # A retrying client turns sheds into eventual success.
            async with ServingClient(
                server.host, server.port, pool_size=2, max_retries=50
            ) as patient:
                results = await asyncio.gather(
                    *(
                        patient.execute(
                            (16, 16, 8), (2, 0, 1), 8, synth=True
                        )
                        for _ in range(12)
                    )
                )
                assert len(results) == 12
                assert patient.sheds_seen >= 1  # backoff actually engaged
            assert server.admission.idle

        run_serving(scenario, max_inflight=1)

    def test_tenant_quota_isolated_per_tenant(self):
        async def scenario(server):
            async with ServingClient(
                server.host, server.port, max_retries=0
            ) as client:
                await client.execute(DIMS, PERM, 8, synth=True, tenant="a")
                with pytest.raises(QuotaExceededError):
                    await client.execute(
                        DIMS, PERM, 8, synth=True, tenant="a"
                    )
                # tenant b has an untouched bucket
                await client.execute(DIMS, PERM, 8, synth=True, tenant="b")
            snap = server.serving_snapshot()
            assert snap["admission"]["shed_quota"] == 1
            assert snap["counters"]["serving.tenant.a.shed"] == 1
            assert server.admission.idle

        run_serving(scenario, tenant_rate=0.001, tenant_burst=1.0)


class TestDrain:
    def test_drain_flushes_inflight_and_refuses_new_work(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                tasks = [
                    asyncio.create_task(
                        client.execute((12, 10, 8), (2, 0, 1), 8, synth=True)
                    )
                    for _ in range(6)
                ]
                while server.admission.admitted < 6:
                    await asyncio.sleep(0.001)
                drain_reply = await client.drain()
                results = await asyncio.gather(*tasks)
                # zero dropped inflight: every admitted request replied
                assert len(results) == 6
                assert all(r["sim_s"] > 0 for r in results)
                assert drain_reply["drained"] is True
                assert drain_reply["snapshot"]["draining"] is True
                with pytest.raises(DrainingError):
                    await client.execute(DIMS, PERM, 8, synth=True)
            assert server.admission.idle
            assert server.draining

        run_serving(scenario)

    def test_concurrent_drain_requests_share_one_drain(self):
        async def scenario(server):
            async with ServingClient(
                server.host, server.port, pool_size=2
            ) as client:
                replies = await asyncio.gather(
                    client.drain(), client.drain()
                )
            assert all(r["drained"] for r in replies)
            assert server.serving_snapshot()["counters"][
                "serving.drains"
            ] == 1

        run_serving(scenario)


class TestServiceDrain:
    """The satellite: TransposeService.close() gains an orderly drain."""

    def test_drain_completes_submitted_work(self):
        service = TransposeService(predictor=ORACLE, num_streams=2)
        futs = [
            service.submit((4 + i, 3, 5), (2, 0, 1)) for i in range(6)
        ]
        assert service.drain(timeout=30.0) is True
        assert all(f.done() for f in futs)
        for fut in futs:
            fut.result().release()
        service.close()

    def test_draining_service_refuses_new_submissions(self):
        service = TransposeService(predictor=ORACLE, num_streams=1)
        try:
            service.submit(DIMS, PERM).result(timeout=30).release()
            assert service.drain(timeout=30.0) is True
            with pytest.raises(DrainingError):
                service.submit(DIMS, PERM)
        finally:
            service.close()

    def test_close_after_drain_is_idempotent(self):
        service = TransposeService(predictor=ORACLE, num_streams=1)
        service.drain()
        service.close()
        service.close()  # second close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(DIMS, PERM)

    def test_inflight_gauge_tracks_submissions(self):
        with TransposeService(predictor=ORACLE, num_streams=1) as service:
            assert service.inflight == 0
            fut = service.submit(DIMS, PERM)
            fut.result(timeout=30).release()
            for _ in range(200):
                if service.inflight == 0:
                    break
                import time

                time.sleep(0.005)
            assert service.inflight == 0


class TestConfiguration:
    def test_invalid_router_rejected(self):
        with pytest.raises(ValueError, match="router"):
            ServingServer(router="bogus")

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ValueError, match="replicas"):
            ServingServer(replicas=0)

    def test_round_robin_router_cycles(self):
        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                replicas = [
                    (await client.execute(DIMS, PERM, 8, synth=True))[
                        "replica"
                    ]
                    for _ in range(4)
                ]
            # same key, alternating replicas: the anti-locality router
            assert set(replicas) == {0, 1}

        run_serving(scenario, router="round_robin")

    def test_shared_store_warm_starts_all_replicas(self, tmp_path):
        store_path = tmp_path / "plans.json"

        async def scenario(server):
            async with ServingClient(server.host, server.port) as client:
                for i in range(4):
                    await client.execute(
                        (4 + i, 3, 5), (2, 0, 1), 8, synth=True
                    )
                snap = await client.stats()
            assert snap["store"]["entries"] >= 1

        run_serving(scenario, store_path=store_path)
        assert store_path.exists()

        run_serving(scenario, store_path=store_path)

    def test_client_requires_connect(self):
        client = ServingClient("127.0.0.1", 1)

        async def poke():
            with pytest.raises(RuntimeError, match="not connected"):
                await client.request("ping")

        asyncio.run(poke())

    def test_client_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="pool_size"):
            ServingClient("127.0.0.1", 1, pool_size=0)
