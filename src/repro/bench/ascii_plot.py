"""Minimal terminal plotting for the figure benches.

The paper's figures are line/scatter charts; the benches print an ASCII
rendering so the shape (who wins, where the staircase steps, where
crossovers fall) is visible straight from ``pytest -s`` output without a
plotting stack.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

#: Glyphs assigned to series in order.
GLYPHS = "*o+x#@%&"


def multi_series(
    series: Dict[str, Sequence[float]],
    height: int = 16,
    width: int = 72,
    y_label: str = "GB/s",
    x_label: str = "case",
    y_max: Optional[float] = None,
) -> str:
    """Render several same-length series into one ASCII chart."""
    names = list(series)
    data = [np.asarray(series[n], dtype=float) for n in names]
    n_points = max(len(d) for d in data)
    if n_points == 0:
        return "(no data)"
    top = y_max if y_max is not None else float(
        np.nanmax([np.nanmax(d) for d in data])
    )
    top = max(top, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for si, d in enumerate(data):
        glyph = GLYPHS[si % len(GLYPHS)]
        for i, v in enumerate(d):
            if not np.isfinite(v):
                continue
            x = int(i * (width - 1) / max(n_points - 1, 1))
            y = int((1.0 - min(v, top) / top) * (height - 1))
            grid[y][x] = glyph
    lines = []
    for row_i, row in enumerate(grid):
        if row_i == 0:
            label = f"{top:8.1f} |"
        elif row_i == height - 1:
            label = f"{0.0:8.1f} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 8 + " +" + "-" * width + f"> {x_label}")
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {n}" for i, n in enumerate(names)
    )
    lines.append(f"{y_label}: {legend}")
    return "\n".join(lines)
