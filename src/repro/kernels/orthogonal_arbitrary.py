"""Orthogonal-Arbitrary kernel (Alg. 5, offsets per Alg. 4).

Used when the combined input-FVI group and output-FVI group overlap, so
the slice cannot be viewed as a 2D orthogonal product.  The whole
``A x B`` slice (``A`` = input-group volume, ``B`` = volume of the output
group's dims *not* in the input group) is staged in shared memory:

- copy-in: row ``y`` of the buffer receives ``A`` contiguous input
  elements starting at ``in_base + input_offset[y]`` — fully coalesced;
- copy-out: threads walk the slice in *output-linear* order ``t``,
  writing ``out_base + out_offset[t]`` (coalesced, with breaks where the
  covered output dims are exhausted) while gathering from
  ``sm_out_offset[t]`` — an arbitrary shared-memory pattern that may
  incur bank conflicts (Sec. IV: "it could suffer from some shared
  memory bank conflict").

Unlike Orthogonal-Distinct's fixed 32x33 buffer, the buffer size is the
slice volume, so admissible slice sizes are bounded by the shared-memory
capacity (why the paper's OA model trained on far fewer configurations).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import SchemaError
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.engine import WarpAccess
from repro.gpusim.sharedmem import conflict_degree
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.common import (
    Coverage,
    DimCoverage,
    SliceCoverage,
    ceil_div,
    effective_runs,
    lattice_run_transactions,
)


class OrthogonalArbitraryKernel(TransposeKernel):
    """Whole-slice shared-memory staging with indirection arrays."""

    schema = Schema.ORTHOGONAL_ARBITRARY

    THREADS = 256

    def __init__(
        self,
        layout: TensorLayout,
        perm: Permutation,
        in_prefix: int,
        blockA: int,
        out_prefix: int,
        blockB: int,
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
        pad: int | str = 0,
        coarsen: Optional[Tuple[int, int]] = None,
    ):
        """``pad`` adds words to the buffer's row pitch to stagger the
        copy-out gather across banks (Sec. IV: bank conflicts "can be
        solved by specialization in many cases").  ``pad="auto"`` picks
        the least-conflicting pad in 0..4 — the TTLG specialization; the
        cuTT baseline uses the unpadded default.

        ``coarsen = (dim, factor)`` applies Sec. IV-A thread coarsening:
        one thread block processes ``factor`` consecutive sub-slices
        along the given grid dimension, amortizing the mod/div base
        decode (subsequent bases are stride additions).  Total data
        movement is unchanged; the launch has fewer blocks and fewer
        special instructions.
        """
        super().__init__(layout, perm, elem_bytes, spec)
        rank, dims = layout.rank, layout.dims
        out_order = perm.mapping
        # Normalize full-extent blocks into the prefixes.
        while in_prefix < rank and blockA == dims[in_prefix]:
            in_prefix, blockA = in_prefix + 1, 1
        while out_prefix < rank and blockB == dims[out_order[out_prefix]]:
            out_prefix, blockB = out_prefix + 1, 1
        if in_prefix == 0 and blockA == 1:
            raise SchemaError("input group is empty")
        self.in_prefix, self.blockA = in_prefix, blockA
        self.out_prefix, self.blockB = out_prefix, blockB
        self.a_dim = in_prefix if (in_prefix < rank and blockA > 1) else None
        self.b_dim = (
            out_order[out_prefix] if (out_prefix < rank and blockB > 1) else None
        )
        self.in_group = set(range(in_prefix)) | (
            {self.a_dim} if self.a_dim is not None else set()
        )
        if self.b_dim is not None and self.b_dim in self.in_group:
            # The output-side block falls on a dim the input group already
            # covers (fully, or partially via blockA); the output run gets
            # its extension from that coverage for free, so the block adds
            # nothing to the slice.
            self.b_dim, self.blockB = None, 1
        # Output-group dims not in the input group, fastest-output first.
        self.only_out: List[int] = [
            d for d in out_order[:out_prefix] if d not in self.in_group
        ]
        self.only_out_full = list(self.only_out)
        if self.b_dim is not None:
            self.only_out.append(self.b_dim)

        self.A = layout.prefix_volume(in_prefix) * blockA
        self.B = math.prod(dims[d] for d in self.only_out_full) * blockB
        if self.B < 1:
            self.B = 1
        smem_bytes = self.A * self.B * elem_bytes
        if smem_bytes > spec.shared_mem_per_sm:
            raise SchemaError(
                f"slice of {self.A}x{self.B} elements needs {smem_bytes} B "
                f"shared memory; SM has {spec.shared_mem_per_sm} B"
            )

        covs: List[DimCoverage] = []
        for d in range(rank):
            if d in set(range(in_prefix)) or d in self.only_out_full:
                covs.append(DimCoverage(d, Coverage.FULL))
            elif d == self.a_dim:
                covs.append(DimCoverage(d, Coverage.BLOCK, blockA))
            elif d == self.b_dim:
                covs.append(DimCoverage(d, Coverage.BLOCK, blockB))
            else:
                covs.append(DimCoverage(d, Coverage.OUTER))
        self.coverage = SliceCoverage(layout, perm, covs)
        self._out_pos = {d: q for q, d in enumerate(out_order)}

        if pad == "auto":
            self.pad = self._choose_pad()
        else:
            self.pad = int(pad)
            if self.pad < 0:
                raise SchemaError(f"pad must be >= 0, got {pad}")
        if (self.A + self.pad) * self.B * elem_bytes > spec.shared_mem_per_sm:
            # Padded buffer no longer fits: drop back to unpadded.
            self.pad = 0

        self.coarsen: Optional[Tuple[int, int]] = None
        if coarsen is not None:
            c_dim, c_factor = coarsen
            cov = self.coverage.by_dim.get(c_dim)
            if cov is None or cov.coverage is not Coverage.OUTER:
                raise SchemaError(
                    f"coarsening dim {c_dim} is not a grid dimension"
                )
            if not 1 < c_factor <= dims[c_dim]:
                raise SchemaError(
                    f"coarsening factor {c_factor} out of range for dim "
                    f"{c_dim} (extent {dims[c_dim]})"
                )
            self.coarsen = (c_dim, c_factor)

    def _choose_pad(self, candidates=(0, 1, 2, 3, 4)) -> int:
        """Least-conflicting row pitch for the copy-out gather."""
        best_pad, best_degree = 0, float("inf")
        for p in candidates:
            if (self.A + p) * self.B * self.elem_bytes > self.spec.shared_mem_per_sm:
                break
            degree = self._conflict_degree_for_pad(p)
            if degree < best_degree:
                best_degree, best_pad = degree, p
            if degree <= 1.0:
                break
        return best_pad

    # ------------------------------------------------------------------
    @property
    def coarsen_factor(self) -> int:
        return self.coarsen[1] if self.coarsen else 1

    @property
    def launch_geometry(self) -> LaunchGeometry:
        # No point launching more threads than slice elements; round the
        # block down to the warp granularity of the slice volume.
        ws = self.spec.warp_size
        threads = min(self.THREADS, ceil_div(self.A * self.B, ws) * ws)
        blocks = self.coverage.num_blocks
        if self.coarsen:
            c_dim, c_factor = self.coarsen
            extent = self.layout.dims[c_dim]
            # The coarsened dim contributes ceil(extent/factor) grid
            # positions instead of extent.
            blocks = blocks // extent * ceil_div(extent, c_factor)
        return LaunchGeometry(
            num_blocks=blocks,
            threads_per_block=threads,
            shared_mem_per_block=(self.A + self.pad) * self.B * self.elem_bytes,
        )

    # -- covered output dims, in output order ----------------------------
    def _covered_sizes(self, sizes: Dict[int, int]) -> List[Tuple[int, int]]:
        """``(dim, covered_extent)`` for every slice dim, in output order.

        Non-slice dims are skipped (they are grid dims); the write phase
        enumerates the slice over exactly these digits, so output runs
        break wherever a skipped dim interrupts the output prefix.
        """
        out: List[Tuple[int, int]] = []
        dims = self.layout.dims
        slice_dims = self.in_group | set(self.only_out)
        for d in self.perm.mapping:
            if d not in slice_dims:
                continue
            if d == self.a_dim:
                out.append((d, sizes.get(d, self.blockA)))
            elif d == self.b_dim:
                out.append((d, sizes.get(d, self.blockB)))
            else:
                out.append((d, dims[d]))
        return out

    def output_run_length(self, sizes: Optional[Dict[int, int]] = None) -> int:
        """Contiguous output run length ("output stride" feature).

        Walk output dims in output order while they are slice-covered and
        full; a partially covered dim contributes its covered size and
        ends the run, and a non-slice dim ends it immediately.
        """
        sizes = sizes or {}
        dims = self.layout.dims
        covered = dict(self._covered_sizes(sizes))
        run = 1
        for d in self.perm.mapping:
            if d not in covered:
                break
            run *= covered[d]
            if covered[d] != dims[d]:
                break
        return run

    # -- Alg. 4 offset arrays --------------------------------------------
    def offset_arrays(
        self, sizes: Optional[Dict[int, int]] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(input_offset[B], out_offset[A*B], sm_out_offset[A*B])``.

        ``sizes`` optionally overrides blocked-dim covered sizes (partial
        slices).  All offsets are element units relative to the block's
        base addresses; ``sm_out_offset`` indexes the row-major
        ``B x A`` buffer.
        """
        sizes = sizes or {}
        dims, in_strides = self.layout.dims, self.layout.strides
        out_strides = self.out_layout.strides
        a_cov = sizes.get(self.a_dim, self.blockA) if self.a_dim is not None else 1
        b_cov = sizes.get(self.b_dim, self.blockB) if self.b_dim is not None else 1
        a_size = self.layout.prefix_volume(self.in_prefix) * a_cov
        b_size = math.prod(dims[d] for d in self.only_out_full) * b_cov

        # input_offset: delinearize rows over the only-out dims.
        oo_extents = [
            (d, dims[d]) for d in self.only_out_full
        ] + ([(self.b_dim, b_cov)] if self.b_dim is not None else [])
        ys = np.arange(b_size, dtype=np.int64)
        in_off = np.zeros(b_size, dtype=np.int64)
        rem = ys.copy()
        for d, e in oo_extents:
            in_off += (rem % e) * in_strides[d]
            rem //= e

        # Write phase: enumerate the slice in output-linear order.
        covered = self._covered_sizes(sizes)
        n = a_size * b_size
        assert math.prod(e for _, e in covered) == n, "slice coverage mismatch"
        ts = np.arange(n, dtype=np.int64)
        out_off = np.zeros(n, dtype=np.int64)
        sm_off = np.zeros(n, dtype=np.int64)
        # Per-dim strides inside the buffer: input-group dims are columns
        # (input order), only-out dims are rows (output order).
        col_stride: Dict[int, int] = {}
        s = 1
        for d in range(self.in_prefix):
            col_stride[d] = s
            s *= dims[d]
        if self.a_dim is not None:
            col_stride[self.a_dim] = s
        row_stride: Dict[int, int] = {}
        s = 1
        for d, e in oo_extents:
            row_stride[d] = s
            s *= e
        rem = ts.copy()
        for d, e in covered:
            digit = rem % e
            rem //= e
            out_off += digit * out_strides[self._out_pos[d]]
            if d in col_stride:
                sm_off += digit * col_stride[d]
            else:
                sm_off += digit * row_stride[d] * a_size
        return in_off, out_off, sm_off

    def tex_array_bytes(self) -> int:
        return (self.B + 2 * self.A * self.B) * 4

    # ------------------------------------------------------------------
    def _sm_off_sample(self) -> np.ndarray:
        cached = getattr(self, "_sm_off", None)
        if cached is None:
            _, _, cached = self.offset_arrays()
            self._sm_off = cached
        return cached

    def _conflict_degree_for_pad(self, pad: int, samples: int = 8) -> float:
        """Average bank-conflict degree of the copy-out buffer gather for
        a given row pitch, sampled from the real ``sm_out_offset``."""
        sm_off = self._sm_off_sample()
        ws = self.spec.warp_size
        n = len(sm_off)
        if n == 0:
            return 1.0
        step = max(1, (n // ws) // max(samples, 1))
        degrees = []
        for w in range(0, n // ws, step):
            off = sm_off[w * ws : (w + 1) * ws]
            padded = (off // self.A) * (self.A + pad) + off % self.A
            words = padded * self.elem_bytes // self.spec.bank_bytes
            degrees.append(conflict_degree(words, self.spec.shared_mem_banks))
            if len(degrees) >= samples:
                break
        return float(np.mean(degrees)) if degrees else 1.0

    def smem_read_conflict_degree(self, samples: int = 8) -> float:
        """Average bank-conflict degree of the copy-out buffer gather
        under the kernel's chosen pad."""
        return self._conflict_degree_for_pad(self.pad, samples)

    def _variant_counters(self, sizes: Dict[int, int]) -> KernelCounters:
        # Memoized: Alg. 3 evaluates features() and counters() on many
        # candidates, and both walk the same <=4 variants.
        cache = getattr(self, "_vc_cache", None)
        if cache is None:
            cache = self._vc_cache = {}
        key = tuple(sorted(sizes.items()))
        hit = cache.get(key)
        if hit is not None:
            return hit
        c = self._variant_counters_uncached(sizes)
        cache[key] = c
        return c

    def dram_tx_totals(self) -> Tuple[int, int]:
        """Whole-launch DRAM (load, store) transaction counts via the
        effective-run decomposition (see the OD kernel's counterpart)."""
        eb = self.elem_bytes
        vol = self.volume
        resident = self.spec.block_slots
        in_runs = effective_runs(
            range(self.layout.rank),
            self.coverage.by_dim,
            self.layout.dims,
            vol,
            resident,
        )
        out_runs = effective_runs(
            self.perm.mapping,
            self.coverage.by_dim,
            self.layout.dims,
            vol,
            resident,
        )

        def total(runs):
            t = 0.0
            for count, r in runs:
                lat = math.gcd(self.spec.transaction_bytes, r * eb)
                t += count * lattice_run_transactions(r, eb, lat)
            return int(round(t))

        return total(in_runs), total(out_runs)

    def _variant_counters_uncached(self, sizes: Dict[int, int]) -> KernelCounters:
        c = KernelCounters()
        eb, ws = self.elem_bytes, self.spec.warp_size
        dims = self.layout.dims
        a_cov = sizes.get(self.a_dim, self.blockA) if self.a_dim is not None else 1
        b_cov = sizes.get(self.b_dim, self.blockB) if self.b_dim is not None else 1
        a = self.layout.prefix_volume(self.in_prefix) * a_cov
        b = math.prod(dims[d] for d in self.only_out_full) * b_cov
        vol = a * b

        ld_acc = b * ceil_div(a, ws)
        c.warp_ld_accesses = ld_acc
        st_acc = ceil_div(vol, ws)
        c.warp_st_accesses = st_acc

        c.dram_ld_useful_bytes = vol * eb
        c.dram_st_useful_bytes = vol * eb
        c.lane_slots = (ld_acc + st_acc) * ws
        c.active_lanes = 2 * vol
        c.smem_st_accesses = ld_acc
        c.smem_ld_accesses = st_acc
        degree = self._smem_degree_cache
        c.smem_conflict_cycles = int(round((degree - 1.0) * st_acc))
        c.tex_accesses = ld_acc + 2 * st_acc
        partial = int(bool(sizes) and (a != self.A or b != self.B))
        c.special_ops = 2 * self.layout.rank + (
            4 * (ld_acc + st_acc) if partial else 0
        )
        c.alu_ops = 8 * vol
        return c

    @property
    def _smem_degree_cache(self) -> float:
        if not hasattr(self, "_smem_degree"):
            self._smem_degree = self.smem_read_conflict_degree()
        return self._smem_degree

    def counters(self) -> KernelCounters:
        total = KernelCounters()
        for v in self.coverage.variants():
            total += self._variant_counters(v.sizes).scaled(v.count)
        total.dram_ld_tx, total.dram_st_tx = self.dram_tx_totals()
        if self.coarsen:
            # Coarsening's whole point (Sec. IV-A): the expensive mod/div
            # base decode runs once per launch block; subsequent
            # sub-slices derive their bases by adding strides.
            subs = self.coverage.num_blocks
            blocks = self.launch_geometry.num_blocks
            saved = 2 * self.layout.rank * max(subs - blocks, 0)
            total.special_ops = max(0, total.special_ops - saved)
            total.alu_ops += 2 * max(subs - blocks, 0)
        return total

    def cycles(self) -> float:
        """Sec. V OA cycles: total input+output transactions over all
        full and partial slices (f1 + f2 + f3 + f4 structure), normalized
        by the launch's memory-level parallelism.

        Deviation from the paper (documented in EXPERIMENTS.md): the raw
        transaction count alone leaves a linear model ~35 % off on our
        simulator because the slice-proportional shared-memory footprint
        throttles occupancy hyperbolically; dividing by the achievable
        residency fraction restores a near-linear relationship (the
        paper's NumThreads/TotalSlice features evidently played this role
        on real hardware).
        """
        from repro.gpusim.occupancy import occupancy_for

        ld, st = self.dram_tx_totals()
        total = float(ld + st)
        # Bank-conflict serialization is this kernel's other inefficiency
        # channel (Sec. IV admits it "could suffer from some shared
        # memory bank conflict").  Execution overlaps DRAM and shared
        # memory, so the binding resource is the *max* of the two;
        # express conflicts in transaction-equivalent units (one 128 B
        # transaction buys effective_bandwidth-worth of time, one smem
        # cycle buys an SM cycle) and take the max so conflict-bound
        # configurations become visible to the linear model without
        # polluting bandwidth-bound ones.
        conflict_cycles = sum(
            v.count * self._variant_counters(v.sizes).smem_conflict_cycles
            for v in self.coverage.variants()
        )
        tx_seconds = self.spec.transaction_bytes / self.spec.effective_bandwidth
        cycle_seconds = 1.0 / (self.spec.num_sms * self.spec.clock_hz)
        total = max(total, conflict_cycles * cycle_seconds / tx_seconds)
        occ = occupancy_for(self.spec, self.launch_geometry)
        mlp = min(
            1.0,
            occ.resident_warps_per_sm / self.spec.saturation_warps_per_sm,
        )
        return total / max(mlp, 0.05)

    def features(self) -> Dict[str, float]:
        base = super().features()
        base.update(
            total_slice=float(self.A * self.B),
            input_stride=float(self.A),
            output_stride=float(self.output_run_length()),
            special_instr=float(
                sum(
                    v.count * self._variant_counters(v.sizes).special_ops
                    for v in self.coverage.variants()
                )
            ),
            cycles=float(self.cycles()),
        )
        return base

    # ------------------------------------------------------------------
    def execute(self, src: np.ndarray) -> np.ndarray:
        src = self.check_input(src)
        dst = np.empty(self.volume, dtype=src.dtype)
        in_base, out_base, variant = self.coverage.block_bases()
        vorder = self.coverage.variants_order()
        dims = self.layout.dims
        for vid, sizes in enumerate(vorder):
            sel = np.nonzero(variant == vid)[0]
            if sel.size == 0:
                continue
            in_off, out_off, sm_off = self.offset_arrays(sizes)
            a_cov = sizes.get(self.a_dim, self.blockA) if self.a_dim is not None else 1
            a = self.layout.prefix_volume(self.in_prefix) * a_cov
            b = len(in_off)
            ib, ob = in_base[sel], out_base[sel]
            gather = ib[:, None, None] + in_off[None, :, None] + np.arange(
                a, dtype=np.int64
            )[None, None, :]
            buf = src[gather].reshape(sel.size, a * b)  # row-major B x A
            dst[ob[:, None] + out_off[None, :]] = buf[:, sm_off]
        return dst

    # ------------------------------------------------------------------
    def trace(self, max_blocks: Optional[int] = None) -> Iterator[WarpAccess]:
        eb, ws = self.elem_bytes, self.spec.warp_size
        in_base, out_base, variant = self.coverage.block_bases(max_blocks)
        vorder = self.coverage.variants_order()
        for blk in range(len(in_base)):
            sizes = vorder[variant[blk]]
            in_off, out_off, sm_off = self.offset_arrays(sizes)
            a_cov = sizes.get(self.a_dim, self.blockA) if self.a_dim is not None else 1
            a = self.layout.prefix_volume(self.in_prefix) * a_cov
            b = len(in_off)
            ib, ob = int(in_base[blk]), int(out_base[blk])
            pitch = a + self.pad
            for y in range(b):
                yield WarpAccess("tld", np.array([y * 4]), 4, ws)
                for x0 in range(0, a, ws):
                    lanes = np.arange(x0, min(x0 + ws, a), dtype=np.int64)
                    yield WarpAccess("gld", (ib + in_off[y] + lanes) * eb, eb, ws)
                    yield WarpAccess("sst", (y * pitch + lanes) * eb, eb, ws)
            n = a * b
            for t0 in range(0, n, ws):
                ts = np.arange(t0, min(t0 + ws, n), dtype=np.int64)
                padded = (sm_off[ts] // a) * pitch + sm_off[ts] % a
                yield WarpAccess("tld", ts[:1] * 4, 4, ws)
                yield WarpAccess("tld", ts[:1] * 4 + 4, 4, ws)
                yield WarpAccess("sld", padded * eb, eb, ws)
                yield WarpAccess("gst", (ob + out_off[ts]) * eb, eb, ws)
        return
