"""End-to-end integration tests across the whole stack."""

import itertools

import numpy as np
import pytest

import repro
from repro.baselines import CuttMeasure, TTLG
from repro.core.fusion import scaled_rank
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.gpusim.engine import simulate_warp_accesses
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100
from repro.kernels.common import reference_transpose
from repro.model.pretrained import oracle_predictor
from repro.ttgt import contract, parse_contraction

ORACLE = oracle_predictor()


class TestAllPermutationsSmall:
    def test_every_4d_permutation_correct(self, rng):
        """Plan + execute all 24 permutations of an awkward 4D shape."""
        dims = (5, 8, 3, 7)
        layout = TensorLayout(dims)
        src = rng.standard_normal(layout.volume)
        for perm in itertools.permutations(range(4)):
            plan = repro.make_plan(dims, perm, predictor=ORACLE)
            ref = reference_transpose(src, layout, Permutation(perm))
            np.testing.assert_array_equal(plan.execute(src), ref)

    def test_every_3d_permutation_on_mixed_extents(self, rng):
        dims = (33, 2, 17)
        layout = TensorLayout(dims)
        src = rng.standard_normal(layout.volume)
        for perm in itertools.permutations(range(3)):
            plan = repro.make_plan(dims, perm, predictor=ORACLE)
            ref = reference_transpose(src, layout, Permutation(perm))
            np.testing.assert_array_equal(plan.execute(src), ref)


class TestPlannedCountersMatchReplay:
    @pytest.mark.parametrize(
        "dims,perm",
        [
            ((16, 4, 16), (2, 1, 0)),
            ((8, 4, 8, 4), (2, 1, 3, 0)),
            ((64, 6, 3), (0, 2, 1)),
        ],
    )
    def test_chosen_kernel_counts_validate(self, dims, perm):
        """Whatever kernel the planner chooses, its analytic counters
        must be close to the per-warp replay."""
        plan = repro.make_plan(dims, perm, predictor=ORACLE)
        k = plan.kernel
        ana = k.counters()
        det = simulate_warp_accesses(
            k.trace(), KEPLER_K40C, k.tex_array_bytes()
        )
        assert abs(ana.dram_ld_tx - det.dram_ld_tx) <= 0.15 * max(det.dram_ld_tx, 1)
        assert abs(ana.dram_st_tx - det.dram_st_tx) <= 0.15 * max(det.dram_st_tx, 1)


class TestDeviceSensitivity:
    def test_p100_faster_than_k40(self):
        """Same plan logic on a higher-bandwidth device must run faster."""
        dims, perm = (16,) * 6, (5, 4, 3, 2, 1, 0)
        t_k40 = TTLG(spec=KEPLER_K40C, predictor=oracle_predictor(KEPLER_K40C)) \
            .plan(dims, perm).kernel_time()
        t_p100 = TTLG(spec=PASCAL_P100, predictor=oracle_predictor(PASCAL_P100)) \
            .plan(dims, perm).kernel_time()
        assert t_p100 < t_k40


class TestScaledRankTrend:
    def test_ttlg_advantage_grows_with_scaled_rank(self):
        """The real story of Figs. 6/8/10: TTLG's edge over the
        single-dim-tiling baseline widens at high scaled rank, where
        dimension combining is what saves warp efficiency.

        (Our simulator's within-TTLG staircase is flatter than the
        paper's for extent 16 — see EXPERIMENTS.md deviations — so the
        asserted invariant is the relative one.)
        """
        from repro.baselines import CuttHeuristic

        ttlg = TTLG(predictor=ORACLE)
        cutt = CuttHeuristic()
        perms_by_rank = {2: [], 6: []}
        for p in itertools.permutations(range(6)):
            if p[0] == 0:
                continue  # FVI-match cases are easy for every library
            r = scaled_rank((16,) * 6, p)
            if r in perms_by_rank and len(perms_by_rank[r]) < 4:
                perms_by_rank[r].append(p)
        ratio = {}
        for r, ps in perms_by_rank.items():
            vals = []
            for p in ps:
                t = ttlg.plan((16,) * 6, p).bandwidth_gbps()
                c = cutt.plan((16,) * 6, p).bandwidth_gbps()
                vals.append(t / c)
            ratio[r] = np.mean(vals)
        assert ratio[6] > ratio[2]
        assert ratio[6] > 1.05


class TestTtgtOnTopOfLibrary:
    def test_ccsd_like_contraction(self, rng):
        """A computational-chemistry-shaped contraction runs through
        TTGT with TTLG transposes and matches einsum."""
        ext = dict(a=6, b=7, i=8, j=9, c=5)
        expr = "acij,bc->abij"
        spec = parse_contraction(expr, ext)
        A = rng.standard_normal(spec.volume(spec.a_labels))
        B = rng.standard_normal(spec.volume(spec.b_labels))
        C = contract(expr, A, B, ext)
        An = A.reshape(*[ext[l] for l in reversed(spec.a_labels)])
        Bn = B.reshape(*[ext[l] for l in reversed(spec.b_labels)])
        ref = np.einsum("jica,cb->jiba", An, Bn).reshape(-1)
        np.testing.assert_allclose(C, ref, rtol=1e-10)


class TestEndToEndScenario:
    def test_plan_once_run_many(self, rng):
        """The repeated-use scenario end to end: a Transposer planned
        once stays consistent across calls and dtypes."""
        t = repro.Transposer((12, 10, 14), (2, 0, 1))
        for _ in range(3):
            src = rng.standard_normal(12 * 10 * 14)
            ref = reference_transpose(
                src, TensorLayout((12, 10, 14)), Permutation((2, 0, 1))
            )
            np.testing.assert_array_equal(t(src), ref)

    def test_measure_mode_reports_better_or_equal_kernel(self):
        """cuTT-measure's pick can't be slower than its own heuristic's
        estimate ranking would suggest on the same menu."""
        dims, perm = (15,) * 6, (5, 4, 3, 2, 1, 0)
        m = CuttMeasure().plan(dims, perm)
        assert m.kernel_time() > 0
        assert m.num_candidates >= 2
