"""FVI-Match-Large kernel (Alg. 7).

When the fastest-varying index is the same in input and output and its
extent ``N0`` is at least the warp size, whole ``N0``-element contiguous
runs move unchanged: each thread block streams one (or a chunk of one)
run from input to output through registers — no shared memory, no offset
arrays (Table I row: ``C2`` DRAM transactions, everything else zero).

When the grid of runs alone would under-occupy the device (e.g. the
identity permutation fuses to a single giant run), runs are split into
chunks, which is what a production kernel does with a grid-stride loop.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import SchemaError
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.engine import WarpAccess
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.common import ceil_div


class FviMatchLargeKernel(TransposeKernel):
    """Direct contiguous-run copy (no shared memory)."""

    schema = Schema.FVI_MATCH_LARGE

    #: Threads per block; 256 keeps 8 warps per block, plenty for copy.
    THREADS = 256

    def __init__(
        self,
        layout: TensorLayout,
        perm: Permutation,
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
        chunk: Optional[int] = None,
    ):
        super().__init__(layout, perm, elem_bytes, spec)
        if not perm.fvi_matches():
            raise SchemaError(
                "FVI-Match-Large requires the fastest varying index to match "
                f"(perm={perm.mapping})"
            )
        self.n0 = layout.dims[0]
        self.num_runs = self.volume // self.n0
        self.chunk = chunk if chunk is not None else self._choose_chunk()
        if self.chunk <= 0:
            raise SchemaError(f"chunk must be positive, got {self.chunk}")

    def _choose_chunk(self) -> int:
        """Split runs so the grid comfortably fills the device.

        A run is one chunk unless that leaves too few blocks to overbook
        the device's *actual* resident-block slots (the Alg. 3
        overbooking idea: many waves amortize the ragged final wave);
        then runs split into warp-aligned chunks.
        """
        resident = min(
            self.spec.max_threads_per_sm // self.THREADS,
            self.spec.max_blocks_per_sm,
        )
        slots = resident * self.spec.num_sms
        # Many waves keep the ragged final wave negligible (~1/waves).
        target_blocks = 128 * slots
        if self.num_runs >= target_blocks or self.n0 <= self.THREADS:
            return self.n0
        pieces = ceil_div(target_blocks, self.num_runs)
        chunk = ceil_div(self.n0, pieces)
        # Round DOWN to a warp multiple: rounding up could drop the block
        # count back below the occupancy target.
        ws = self.spec.warp_size
        return max(ws, chunk // ws * ws)

    # ------------------------------------------------------------------
    @property
    def chunks_per_run(self) -> int:
        return ceil_div(self.n0, self.chunk)

    @property
    def runs_per_block(self) -> int:
        """Short runs are grouped so a block keeps all its warps busy
        (a block of 256 threads copies 8 consecutive 32-element runs)."""
        ws = self.spec.warp_size
        span = max(min(self.chunk, self.n0), ws)
        return max(1, self.THREADS // span)

    @property
    def launch_geometry(self) -> LaunchGeometry:
        blocks = (
            ceil_div(self.num_runs, self.runs_per_block) * self.chunks_per_run
        )
        span = max(min(self.chunk, self.n0), self.spec.warp_size)
        threads = min(self.THREADS, self.runs_per_block * span)
        return LaunchGeometry(
            num_blocks=blocks,
            threads_per_block=min(threads, self.spec.max_threads_per_block),
            shared_mem_per_block=0,
        )

    # ------------------------------------------------------------------
    def _run_out_offsets(self, max_runs: Optional[int] = None) -> np.ndarray:
        """Output element offset of each run's first element.

        Runs enumerate the outer dims (1..rank-1) in input order; a run's
        output offset permutes those coordinates.
        """
        n = self.num_runs if max_runs is None else min(self.num_runs, max_runs)
        if self.layout.rank == 1:
            return np.zeros(n, dtype=np.int64)
        outer = TensorLayout(self.layout.dims[1:])
        coords = outer.delinearize_many(np.arange(n, dtype=np.int64))
        out_strides = self.out_layout.strides
        # Output position of input dim d (d >= 1).
        off = np.zeros(n, dtype=np.int64)
        for q, d in enumerate(self.perm.mapping):
            if d == 0:
                continue
            off += coords[:, d - 1] * out_strides[q]
        return off

    # ------------------------------------------------------------------
    def counters(self) -> KernelCounters:
        c = KernelCounters()
        eb = self.elem_bytes
        ws = self.spec.warp_size
        n0, runs = self.n0, self.num_runs
        # Input runs tile the address space contiguously; each run of n0
        # elements starting at a multiple of n0*eb bytes.
        per_run_accesses = ceil_div(n0, ws)
        # Loads sweep the input contiguously (runs enumerate the outer
        # dims in input order), so they cost the exact line footprint.
        # Stores land in scattered runs; chain them through output dims
        # the grid enumerates adjacently, like the orthogonal kernels do.
        from repro.kernels.common import (
            Coverage,
            DimCoverage,
            effective_runs,
            lattice_run_transactions,
        )

        c.dram_ld_tx = ceil_div(self.volume * eb, self.spec.transaction_bytes)
        coverage = {0: DimCoverage(0, Coverage.FULL)}
        for d in range(1, self.layout.rank):
            coverage[d] = DimCoverage(d, Coverage.OUTER)
        st_tx = 0.0
        for count, r in effective_runs(
            self.perm.mapping, coverage, self.layout.dims, self.volume,
            self.spec.block_slots,
        ):
            lat = math.gcd(self.spec.transaction_bytes, r * eb)
            st_tx += count * lattice_run_transactions(r, eb, lat)
        c.dram_st_tx = int(round(st_tx))
        c.dram_ld_useful_bytes = self.volume * eb
        c.dram_st_useful_bytes = self.volume * eb
        c.warp_ld_accesses = runs * per_run_accesses
        c.warp_st_accesses = runs * per_run_accesses
        c.lane_slots = 2 * runs * per_run_accesses * ws
        c.active_lanes = 2 * self.volume
        # Per-block index decode: one mod+div per outer dimension.
        c.special_ops = self.launch_geometry.num_blocks * max(
            self.layout.rank - 1, 1
        ) * 2
        c.alu_ops = 2 * self.volume
        return c

    def features(self) -> dict:
        base = super().features()
        base.update(run_length=float(self.n0), chunk=float(self.chunk))
        return base

    # ------------------------------------------------------------------
    def trace(self, max_blocks: Optional[int] = None) -> Iterator[WarpAccess]:
        eb = self.elem_bytes
        ws = self.spec.warp_size
        out_offsets = self._run_out_offsets()
        n = self.num_runs
        if max_blocks is not None:
            n = min(n, max_blocks)
        for r in range(n):
            in_start = r * self.n0
            out_start = int(out_offsets[r])
            for w0 in range(0, self.n0, ws):
                lanes = np.arange(w0, min(w0 + ws, self.n0), dtype=np.int64)
                yield WarpAccess(
                    "gld", (in_start + lanes) * eb, eb, warp_size=ws
                )
                yield WarpAccess(
                    "gst", (out_start + lanes) * eb, eb, warp_size=ws
                )
