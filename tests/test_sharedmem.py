"""Unit tests for the bank-conflict model (repro.gpusim.sharedmem)."""

import numpy as np
import pytest

from repro.gpusim.sharedmem import (
    column_access_degree,
    conflict_degree,
    conflict_free_pad,
    extra_conflict_cycles,
    padded_tile_pitch,
)


class TestConflictDegree:
    def test_contiguous_is_free(self):
        assert conflict_degree(np.arange(32)) == 1

    def test_same_word_broadcast(self):
        assert conflict_degree(np.zeros(32, dtype=np.int64)) == 1

    def test_stride_32_fully_serialized(self):
        """Column of an unpadded 32-wide buffer: all lanes on bank 0."""
        assert conflict_degree(np.arange(32) * 32) == 32

    def test_stride_33_conflict_free(self):
        """The paper's 32x33 padding: stride 33 hits every bank once."""
        assert conflict_degree(np.arange(32) * 33) == 1

    def test_stride_2_two_way(self):
        assert conflict_degree(np.arange(32) * 2) == 2

    def test_stride_16_sixteen_way(self):
        assert conflict_degree(np.arange(32) * 16) == 16

    def test_empty(self):
        assert conflict_degree(np.array([])) == 0

    def test_extra_cycles(self):
        assert extra_conflict_cycles(np.arange(32) * 32) == 31
        assert extra_conflict_cycles(np.arange(32)) == 0


class TestColumnAccess:
    def test_padded_pitch_free(self):
        assert column_access_degree(32, padded_tile_pitch()) == 1

    def test_unpadded_pitch_serial(self):
        assert column_access_degree(32, 32) == 32

    def test_partial_column(self):
        assert column_access_degree(7, 33) == 1

    def test_zero_rows(self):
        assert column_access_degree(0, 33) == 0


class TestConflictFreePad:
    @pytest.mark.parametrize("n0", [2, 4, 8, 16])
    def test_power_of_two_n0_resolves(self, n0):
        """Fig. 4's rule: pad so row 1 starts at bank N0 — for N0
        dividing the bank count a conflict-free pad must exist."""
        pad = conflict_free_pad(n0)
        pitch = n0 + pad
        lanes = np.arange(32, dtype=np.int64)
        words = (lanes // n0) * pitch + (lanes % n0)
        assert conflict_degree(words) == 1

    @pytest.mark.parametrize("n0", [3, 5, 6, 7, 12, 24, 31])
    def test_any_n0_minimizes(self, n0):
        """For other extents the chosen pad must be at least as good as
        every alternative pad."""
        best = conflict_free_pad(n0)
        pitch = best + n0
        lanes = np.arange(32, dtype=np.int64)
        chosen = conflict_degree((lanes // n0) * pitch + (lanes % n0))
        for pad in range(32):
            words = (lanes // n0) * (n0 + pad) + (lanes % n0)
            assert chosen <= conflict_degree(words)

    def test_invalid_n0(self):
        with pytest.raises(ValueError):
            conflict_free_pad(0)
