"""Ablation: the Alg. 3 grid-overbooking cap.

Alg. 3 bounds the slice volume so the launch keeps "a sufficient number
of thread blocks to occupy all the SMs" — an empirically chosen
``overbooking_factor``.  This bench sweeps the factor and reports the
best achievable time among the admissible Orthogonal-Distinct slices at
each setting: factor 1 admits huge slices whose grids go ragged or
under-occupied; very large factors over-restrict the search.
"""

from conftest import write_result

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.slices import enumerate_orthogonal_distinct
from repro.gpusim.spec import KEPLER_K40C
from repro.model.pretrained import oracle_predictor

DIMS = (64, 16, 8, 64)
PERM = (3, 2, 1, 0)


def best_time(overbooking: int) -> tuple:
    layout, perm = TensorLayout(DIMS), Permutation(PERM)
    ks = enumerate_orthogonal_distinct(
        layout, perm, KEPLER_K40C, overbooking=overbooking
    )
    oracle = oracle_predictor()
    best = min(ks, key=oracle)
    return oracle(best), len(ks), best.A, best.B


def test_ablation_overbooking(benchmark):
    lines = [
        "Ablation — Alg. 3 overbooking factor "
        f"(dims {DIMS}, perm {' '.join(map(str, PERM))})",
        f"{'factor':>7s} {'candidates':>11s} {'best A':>7s} {'best B':>7s} "
        f"{'best ms':>9s}",
    ]
    results = {}
    for factor in (1, 2, 4, 8, 16, 64):
        t, n, a, b = best_time(factor)
        results[factor] = (t, n)
        lines.append(f"{factor:>7d} {n:>11d} {a:>7d} {b:>7d} {t * 1e3:>9.3f}")
    text = "\n".join(lines)
    print(text)
    write_result("ablation_overbooking", text)

    # The default (4) must be at least as good as the extremes, and the
    # search must narrow as the factor grows.
    assert results[4][0] <= results[64][0] * 1.001
    assert results[64][1] <= results[1][1]

    benchmark(lambda: best_time(4))
