"""Table I reproduction: per-kernel transaction analysis.

The paper's Table I gives closed-form DRAM/shared-memory/texture
transaction counts (C1, C2, C3, C3') for the four kernels.  This bench
instantiates each kernel on a concrete tensor, prints the analytic
counts next to the closed-form values and the per-warp replay, and
asserts the relationships the table encodes (loads = stores, smem
mirrors global traffic, TM = 0 for the FVI kernels, TM doubled on the
Orthogonal-Arbitrary output side).
"""

import math

from conftest import write_result

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.gpusim.engine import simulate_warp_accesses
from repro.gpusim.spec import KEPLER_K40C
from repro.kernels.fvi_match_large import FviMatchLargeKernel
from repro.kernels.fvi_match_small import FviMatchSmallKernel
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel


def build_kernels():
    """One float32 instance of each kernel (floats: 32 elems = one
    128 B transaction, the paper's counting unit)."""
    ks = {}
    ks["FVI-Match-Small"] = FviMatchSmallKernel(
        TensorLayout((8, 16, 8, 16)), Permutation((0, 2, 1, 3)),
        b=4, elem_bytes=4,
    )
    ks["FVI-Match-Large"] = FviMatchLargeKernel(
        TensorLayout((64, 8, 10)), Permutation((0, 2, 1)), elem_bytes=4
    )
    ks["Orthogonal-Distinct"] = OrthogonalDistinctKernel(
        TensorLayout((32, 4, 32)), Permutation((2, 1, 0)),
        1, 1, 1, 1, elem_bytes=4,
    )
    ks["Orthogonal-Arbitrary"] = OrthogonalArbitraryKernel(
        TensorLayout((8, 2, 8, 8)), Permutation((2, 1, 3, 0)),
        3, 1, 3, 1, elem_bytes=4,
    )
    return ks


def closed_forms():
    """The paper's formulas evaluated for the tensors above."""
    out = {}
    # C1 = ceil(size(i0)*b/32) * prod(other)/b
    out["FVI-Match-Small"] = math.ceil(8 * 4 / 32) * (16 * 8 * 16) // 4
    # C2 = ceil(size(i0)/32) * prod(other)
    out["FVI-Match-Large"] = math.ceil(64 / 32) * 8 * 10
    # C3 = ceil(A/32) * vol/A with A = B = 32
    out["Orthogonal-Distinct"] = math.ceil(32 / 32) * (32 * 4 * 32) // 32
    # A = 128 (a,b,c combined), vol/A = 8
    out["Orthogonal-Arbitrary"] = math.ceil(128 / 32) * (8 * 2 * 8 * 8) // 128
    return out


def test_table1(benchmark):
    kernels = build_kernels()
    forms = closed_forms()
    lines = [
        "Table I — transaction analysis (float32, 128 B transactions)",
        KEPLER_K40C.describe(),
        "",
        f"{'Algorithm':<22s} {'C (paper)':>10s} {'DRAM ld':>8s} {'DRAM st':>8s}"
        f" {'SM ld':>7s} {'SM st':>7s} {'TM':>7s}  replay(ld/st)",
    ]
    for name, k in kernels.items():
        c = k.counters()
        det = simulate_warp_accesses(
            k.trace(), KEPLER_K40C, k.tex_array_bytes(),
            line_cache_capacity=4096,
        )
        lines.append(
            f"{name:<22s} {forms[name]:>10d} {c.dram_ld_tx:>8d} "
            f"{c.dram_st_tx:>8d} {c.smem_ld_accesses:>7d} "
            f"{c.smem_st_accesses:>7d} {c.tex_accesses:>7d}  "
            f"{det.dram_ld_tx}/{det.dram_st_tx}"
        )
        # Table I invariants.
        assert c.dram_ld_tx == forms[name], name
        assert c.dram_st_tx == c.dram_ld_tx, name
        if name.startswith("FVI"):
            assert c.tex_accesses == 0, name
        if name == "FVI-Match-Small":
            assert c.smem_st_accesses == c.warp_ld_accesses
        if name == "Orthogonal-Arbitrary":
            assert c.tex_accesses == (
                c.warp_ld_accesses + 2 * c.warp_st_accesses
            )
        # Analytic counts match the detailed replay exactly on these
        # aligned instances.
        assert c.dram_ld_tx == det.dram_ld_tx, name
        assert c.dram_st_tx == det.dram_st_tx, name
    text = "\n".join(lines)
    print(text)
    write_result("table1_transactions", text)

    # Benchmark the analytic counter computation (the planning hot path).
    k = kernels["Orthogonal-Distinct"]
    benchmark(k.counters)
