"""Benchmark harness: suites, runners, and terminal rendering for the
paper-figure reproductions in ``benchmarks/``."""

from repro.bench.harness import CaseResult, run_case, run_suite
from repro.bench.record import SuiteResult, summarize_by_group
from repro.bench.suites import (
    six_d_suite,
    ttc_benchmark_suite,
    varying_dims_suite,
)

__all__ = [
    "CaseResult",
    "run_case",
    "run_suite",
    "SuiteResult",
    "summarize_by_group",
    "six_d_suite",
    "ttc_benchmark_suite",
    "varying_dims_suite",
]
