"""Sharded asyncio serving front end over :class:`TransposeService`.

One :class:`ServingServer` owns ``replicas`` independent
:class:`~repro.runtime.service.TransposeService` instances — each with
its own scheduler, stream pool, plan cache, and (bounded, private)
compiled-program cache — all warm-starting from **one** shared
:class:`~repro.runtime.store.PlanStore`.  Requests arrive as
length-prefixed codec frames (:mod:`repro.serving.codec`) over raw TCP
and are routed by **plan content key** through a consistent-hash ring
(:mod:`repro.serving.ring`), so each replica sees a stable subset of
the key space and its bounded caches stay hot — the warm-reuse insight
behind cuTT's per-permutation plan cache and this repo's frozen
executor programs, lifted to shard level.

Admission control runs before anything is planned or scheduled
(:mod:`repro.serving.admission`): per-tenant token buckets, a bounded
inflight permit pool, and replica queue-depth backpressure shed load
with typed ``OVERLOADED`` / ``QUOTA_EXCEEDED`` replies instead of
queueing without bound.  Per-request deadlines are enforced at
admission and re-checked after execution.  :meth:`ServingServer.drain`
implements graceful shutdown: stop accepting, flush inflight (zero
dropped requests), drain every replica, and fold replica metrics into
one ``serving.*`` snapshot.

**Zero-copy data path** (default; see the copy-count table in
``docs/serving.md``): request tensors decode straight into
:class:`~repro.runtime.arena.BufferArena` leases via the codec's
``buffer_factory`` hook, the transpose runs with ``out=`` pointing at a
second lease, and the reply is emitted with
:func:`~repro.serving.codec.write_parts` over memoryview parts of that
lease — a request's tensor bytes are touched
once on ingress (the socket read) and once on egress (the socket
write).  Both leases are released only after the write drains.  The
per-connection :class:`~repro.serving.codec.CodecStats` byte counters
are folded into the server's :class:`MetricsRegistry`
(``serving.tensor_bytes_copied`` / ``serving.tensor_bytes_zero_copy``),
so the invariant is observable and regression-testable; construct with
``zero_copy=False`` for the copying baseline the load bench compares
against.

Requests on one connection may be **pipelined**: the server replies per
request, possibly out of order, and the client matches replies to
requests by ``id`` (see :mod:`repro.serving.client`).

Wire schemas, verbs, and error codes are documented in
``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import math
import random
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    DrainingError,
    InvalidLayoutError,
    InvalidPermutationError,
    OverloadedError,
    PlanError,
    ProtocolError,
    QuotaExceededError,
    ReproError,
)
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.runtime.arena import ArenaBlock, BufferArena
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.service import TransposeService
from repro.runtime.store import PlanStore, content_key
from repro.serving.admission import AdmissionController
from repro.serving.codec import (
    DEFAULT_MAX_FRAME_BYTES,
    CodecStats,
    FrameTooLargeError,
    decode,
    pack_frame,
    pack_frame_parts,
    read_frame,
    write_parts,
)
from repro.serving.ring import HashRing
from repro.serving.wire import FrameConnection

#: Protocol version, echoed by ``ping`` and checked by the client.
PROTOCOL_VERSION = 1

#: The request verbs the server understands.
VERBS = ("ping", "execute", "submit", "batched", "stats", "drain")

#: The routing policies.  ``hash`` is the production router; ``random``
#: exists so the load benchmark can measure what routing locality buys.
ROUTERS = ("hash", "random", "round_robin")


class ReplyTooLargeError(FrameTooLargeError):
    """A *reply* the server built exceeds the connection's frame cap.

    Distinct from :class:`FrameTooLargeError` (the peer sent us an
    oversized frame) so the requester gets a structured
    ``REPLY_TOO_LARGE`` error — e.g. "your output is bigger than the
    negotiated cap, lower ``return_output``" — instead of the server
    emitting a frame the peer's codec would refuse and desync on.
    """


#: exception type -> wire error code, most specific first.
_ERROR_CODES = (
    (ReplyTooLargeError, "REPLY_TOO_LARGE"),
    (FrameTooLargeError, "FRAME_TOO_LARGE"),
    (ProtocolError, "BAD_REQUEST"),
    (QuotaExceededError, "QUOTA_EXCEEDED"),
    (OverloadedError, "OVERLOADED"),
    (DeadlineExceededError, "DEADLINE_EXCEEDED"),
    (DrainingError, "DRAINING"),
    (InvalidPermutationError, "INVALID_PERMUTATION"),
    (InvalidLayoutError, "INVALID_LAYOUT"),
    (PlanError, "PLAN_ERROR"),
    (ReproError, "INTERNAL"),
)


def error_code_of(exc: BaseException) -> str:
    for etype, code in _ERROR_CODES:
        if isinstance(exc, etype):
            return code
    return "INTERNAL"


def _synth_dtype(elem_bytes: int) -> np.dtype:
    """The dtype synthetic payloads use for a given element width."""
    if elem_bytes == 8:
        return np.dtype(np.float64)
    if elem_bytes == 4:
        return np.dtype(np.float32)
    if elem_bytes in (1, 2):
        return np.dtype(f"<i{elem_bytes}")
    raise ProtocolError(f"unsupported elem_bytes {elem_bytes} for synth")


class _ConnState:
    """Per-connection mutable state: the write lock serializing frame
    emission plus the connection's codec byte accounting.

    :meth:`fold_into` moves only the *delta* since the last fold into
    the server registry, so live connections can be folded at every
    snapshot (and once more at disconnect) without double counting.
    """

    __slots__ = ("write_lock", "stats", "_folded_copied", "_folded_zero")

    def __init__(self) -> None:
        self.write_lock = asyncio.Lock()
        self.stats = CodecStats()
        self._folded_copied = 0
        self._folded_zero = 0

    def fold_into(self, metrics: MetricsRegistry) -> None:
        dc = self.stats.tensor_bytes_copied - self._folded_copied
        dz = self.stats.tensor_bytes_zero_copy - self._folded_zero
        if dc:
            metrics.inc("tensor_bytes_copied", dc)
            self._folded_copied += dc
        if dz:
            metrics.inc("tensor_bytes_zero_copy", dz)
            self._folded_zero += dz


class _LeaseScope:
    """The arena leases of one request's lifecycle.

    The codec's ``buffer_factory`` lands every ingress tensor in a
    lease from here, and the dispatcher adds the egress output lease;
    :meth:`release` returns them all once the reply has drained (or the
    request dies on any earlier path).  Idempotent — the dispatcher
    releases eagerly before dropping the admission permit (so drain
    leak checks are deterministic) and the connection handler keeps a
    backstop release.
    """

    __slots__ = ("arena", "blocks")

    def __init__(self, arena: BufferArena) -> None:
        self.arena = arena
        self.blocks: List[ArenaBlock] = []

    def factory(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        block, view = self.arena.empty(shape, dtype)
        self.blocks.append(block)
        return view

    def release(self) -> None:
        blocks, self.blocks = self.blocks, []
        for block in blocks:
            block.release()


class ServingServer:
    """Asyncio TCP front end over ``replicas`` transpose services.

    Parameters
    ----------
    replicas:
        Number of independent :class:`TransposeService` shards.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`port`).
    store_path:
        Shared persistent plan store all replicas warm-start from
        (optional).  Each replica keeps a private autotune file next to
        it so the calibrators don't fight over one file.
    num_streams:
        Worker streams per replica.
    program_cache_size / program_cache_bytes:
        Per-replica compiled-program cache bounds.  Sizing this *below*
        the distinct-key count of the workload is what makes routing
        locality measurable (and valuable).
    max_inflight / tenant_rate / tenant_burst / max_queue_depth:
        Admission control (see :class:`AdmissionController`).
    router:
        ``hash`` (consistent hashing, default), ``random``, or
        ``round_robin``.
    default_deadline_s:
        Deadline applied when a request carries none (None = no limit).
    max_frame_bytes:
        Reject frames whose declared body exceeds this; replies are
        held to the same cap (``REPLY_TOO_LARGE``).
    zero_copy:
        Use the arena-backed scatter-gather data path (default).
        ``False`` selects the copying codec baseline: contiguous
        ``pack_frame`` frames out, owned array copies in — same wire
        format, ~6 extra tensor passes per round trip.
    """

    def __init__(
        self,
        replicas: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spec: DeviceSpec = KEPLER_K40C,
        store_path: Optional[Union[str, Path]] = None,
        num_streams: int = 2,
        predictor=None,
        cache_capacity: Optional[int] = None,
        program_cache_size: Optional[int] = None,
        program_cache_bytes: Optional[int] = None,
        max_inflight: int = 256,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        max_queue_depth: Optional[int] = None,
        router: str = "hash",
        vnodes: int = 128,
        router_seed: int = 0,
        default_deadline_s: Optional[float] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        zero_copy: bool = True,
    ):
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        if router not in ROUTERS:
            raise ValueError(f"router must be one of {ROUTERS}, got {router!r}")
        self.spec = spec
        self.host = host
        self._port = port
        self.router = router
        self.max_frame_bytes = max_frame_bytes
        self.default_deadline_s = default_deadline_s
        self.zero_copy = bool(zero_copy)
        self.store: Optional[PlanStore] = None
        if store_path is not None:
            self.store = PlanStore(store_path, autoflush=False)
        service_kwargs = dict(
            spec=spec,
            predictor=predictor,
            num_streams=num_streams,
            program_cache_size=program_cache_size,
            program_cache_bytes=program_cache_bytes,
        )
        if cache_capacity is not None:
            service_kwargs["cache_capacity"] = cache_capacity
        self.replicas: List[TransposeService] = []
        for i in range(replicas):
            kwargs = dict(service_kwargs)
            if self.store is not None:
                kwargs["store"] = self.store
                kwargs["autotune_path"] = Path(self.store.path).with_name(
                    f"autotune-r{i}.json"
                )
            self.replicas.append(TransposeService(**kwargs))
        self.ring = HashRing(range(replicas), vnodes=vnodes)
        self._rr = 0
        self._random = random.Random(router_seed)
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            tenant_rate=tenant_rate,
            tenant_burst=tenant_burst,
            max_queue_depth=max_queue_depth,
        )
        #: Request/ingress/egress buffer pool; heap-backed — the leases
        #: never cross a process boundary, and sub-segment churn of the
        #: shm path would only add filesystem round-trips here.
        self.arena = BufferArena(use_shared_memory=False)
        self.metrics = MetricsRegistry()
        # Materialize the data-path counters so snapshots (and the
        # tensor_bytes_copied == 0 assertions) see them even when idle.
        self.metrics.inc("tensor_bytes_copied", 0)
        self.metrics.inc("tensor_bytes_zero_copy", 0)
        self._conns: set = set()
        self._routed = [0] * replicas
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._draining = False
        self._drain_task: Optional[asyncio.Task] = None
        self._closed = False
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        self._synth: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ServingServer":
        loop = asyncio.get_running_loop()
        if self.zero_copy:
            # The readinto wire transport: inbound frame bodies are
            # recv'd straight into the buffer decode reads, and tensors
            # land in arena leases from there.
            self._server = await loop.create_server(
                self._wire_connection, self.host, self._port
            )
        else:
            # Copying baseline: the original StreamReader data path.
            self._server = await asyncio.start_server(
                self._handle, self.host, self._port
            )
        self._port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def port(self) -> int:
        return self._port

    @property
    def address(self) -> str:
        return f"{self.host}:{self._port}"

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop intake, flush inflight, drain shards.

        New requests (and new connections) are refused with ``DRAINING``
        the moment this is called; every already-admitted request runs
        to completion and its reply is delivered before the replicas
        close — zero dropped inflight requests.  Returns True when the
        inflight pool emptied within ``timeout``.

        Admitted requests release their arena leases *before* dropping
        their admission permit, so once the pool is idle and the shards
        have drained, ``serving.arena.leases_at_drain`` records how many
        leases were still outstanding — zero unless a connection was
        torn down mid-frame at exactly the wrong moment.
        """
        self._draining = True
        self._count("drains")
        if self._server is not None:
            self._server.close()
        if self.admission.idle:
            self._idle_event.set()
        else:
            self._idle_event.clear()
        drained = True
        try:
            await asyncio.wait_for(self._idle_event.wait(), timeout)
        except asyncio.TimeoutError:
            drained = False
        # Replica drains flush micro-batch windows and stop schedulers;
        # run them off-loop (they block on joins).
        loop = asyncio.get_running_loop()
        for svc in self.replicas:
            await loop.run_in_executor(None, svc.drain)
        self.metrics.inc(
            "arena.leases_at_drain", self.arena.stats()["active_blocks"]
        )
        return drained

    async def close(self) -> None:
        """Drain (if not already), then release sockets and replicas."""
        if self._closed:
            return
        if not self._draining:
            await self.drain()
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )
        loop = asyncio.get_running_loop()
        for svc in self.replicas:
            await loop.run_in_executor(None, svc.close)
        self.arena.close()
        if self.store is not None:
            self.store.close()

    async def __aenter__(self) -> "ServingServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route_key(self, key: str) -> int:
        """The replica index a plan content key routes to."""
        if self.router == "hash":
            return self.ring.route(key)
        if self.router == "random":
            return self._random.randrange(len(self.replicas))
        self._rr = (self._rr + 1) % len(self.replicas)
        return self._rr

    def _count(self, name: str, n: int = 1) -> None:
        self.metrics.inc(name, n)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _wire_connection(self) -> FrameConnection:
        """One zero-copy connection: a :class:`FrameConnection` whose
        per-frame decoder opens a :class:`_LeaseScope` and lands every
        ingress tensor in it, handled by the shared serve loop."""
        conn = _ConnState()

        def decoder(body: bytearray):
            scope = _LeaseScope(self.arena)
            try:
                msg = decode(
                    body, buffer_factory=scope.factory, stats=conn.stats
                )
            except BaseException:
                # Decode failures may already hold ingress leases.
                scope.release()
                raise
            return msg, scope

        def on_connect(wire: FrameConnection) -> None:
            task = asyncio.ensure_future(self._serve_wire(wire, conn))
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)

        return FrameConnection(
            max_frame_bytes=self.max_frame_bytes,
            decoder=decoder,
            on_connect=on_connect,
        )

    async def _serve_wire(self, wire: FrameConnection, conn: _ConnState) -> None:
        async def recv():
            return await wire.read_frame()

        await self._serve_conn(recv, wire, conn)

    async def _handle(self, reader, writer) -> None:
        # Copying-baseline connections: frames come off a StreamReader
        # and decode to owned array copies; no lease scopes exist.
        conn = _ConnState()

        async def recv():
            msg = await read_frame(
                reader, self.max_frame_bytes, stats=conn.stats
            )
            return msg, None

        await self._serve_conn(recv, writer, conn)

    async def _serve_conn(self, recv, writer, conn: _ConnState) -> None:
        """The per-connection serve loop, transport-agnostic: ``recv``
        yields ``(msg, lease_scope_or_None)`` per frame, ``writer`` is a
        :class:`asyncio.StreamWriter` or :class:`FrameConnection`."""
        self._writers.add(writer)
        self._conns.add(conn)
        self._count("connections")
        tasks: set = set()
        try:
            while True:
                try:
                    msg, scope = await recv()
                except EOFError:
                    break
                except FrameTooLargeError as exc:
                    # Typed reply, then hang up: the body was never read,
                    # so the stream position is unrecoverable.
                    self._count("errors.FRAME_TOO_LARGE")
                    try:
                        await self._write(
                            writer,
                            conn,
                            {
                                "ok": False,
                                "id": None,
                                "error": "FRAME_TOO_LARGE",
                                "message": str(exc),
                            },
                        )
                    except (ConnectionError, RuntimeError, OSError):
                        pass
                    break
                except ProtocolError as exc:
                    self._count("errors.BAD_REQUEST")
                    try:
                        await self._write(
                            writer,
                            conn,
                            {
                                "ok": False,
                                "id": None,
                                "error": "BAD_REQUEST",
                                "message": str(exc),
                            },
                        )
                    except (ConnectionError, RuntimeError, OSError):
                        pass
                    break
                except ConnectionError:
                    break
                # Dispatch concurrently so requests pipeline; replies
                # are matched by id, not order.
                task = asyncio.ensure_future(
                    self._dispatch(msg, writer, conn, scope)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            conn.fold_into(self.metrics)
            self._conns.discard(conn)
            self._count("disconnects")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(self, writer, conn: _ConnState, reply: dict) -> None:
        # Replies respect the same frame cap the peer's read side
        # enforces; an oversized one becomes a typed REPLY_TOO_LARGE
        # error instead of a frame the client codec would refuse.
        try:
            if self.zero_copy:
                parts = pack_frame_parts(
                    reply,
                    max_frame_bytes=self.max_frame_bytes,
                    stats=conn.stats,
                )
            else:
                frame = pack_frame(
                    reply,
                    max_frame_bytes=self.max_frame_bytes,
                    stats=conn.stats,
                )
        except ReplyTooLargeError:
            raise
        except FrameTooLargeError as exc:
            raise ReplyTooLargeError(str(exc)) from None
        async with conn.write_lock:
            if writer.is_closing():
                raise ConnectionResetError("peer went away")
            if self.zero_copy:
                # Scatter-gather emission: the transport consumes every
                # part (sent or buffered) before write_parts returns, so
                # arena leases backing them may be released after drain().
                write_parts(writer, parts)
            else:
                writer.write(frame)
            await writer.drain()

    async def _reply_error(
        self, writer, conn: _ConnState, req_id, exc: BaseException
    ) -> None:
        code = error_code_of(exc)
        self._count(f"errors.{code}")
        try:
            await self._write(
                writer,
                conn,
                {"ok": False, "id": req_id, "error": code, "message": str(exc)},
            )
        except (ConnectionError, RuntimeError, OSError):
            self._count("reply_failures")

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, msg, writer, conn: _ConnState, scope: Optional[_LeaseScope]
    ) -> None:
        req_id = msg.get("id") if isinstance(msg, dict) else None
        self._count("requests")
        try:
            if not isinstance(msg, dict):
                raise ProtocolError(
                    f"request must be a dict, got {type(msg).__name__}"
                )
            op = msg.get("op")
            if op == "ping":
                await self._write(
                    writer,
                    conn,
                    {
                        "ok": True,
                        "id": req_id,
                        "result": {
                            "version": PROTOCOL_VERSION,
                            "replicas": len(self.replicas),
                            "router": self.router,
                            "draining": self._draining,
                            "zero_copy": self.zero_copy,
                        },
                    },
                )
                return
            if op == "stats":
                await self._write(
                    writer,
                    conn,
                    {"ok": True, "id": req_id, "result": self.serving_snapshot()},
                )
                return
            if op == "drain":
                if self._drain_task is None:
                    self._drain_task = asyncio.ensure_future(
                        self.drain(msg.get("timeout_s"))
                    )
                drained = await self._drain_task
                await self._write(
                    writer,
                    conn,
                    {
                        "ok": True,
                        "id": req_id,
                        "result": {
                            "drained": drained,
                            "snapshot": self.serving_snapshot(),
                        },
                    },
                )
                return
            if op not in VERBS:
                self._count("errors.UNKNOWN_VERB")
                try:
                    await self._write(
                        writer,
                        conn,
                        {
                            "ok": False,
                            "id": req_id,
                            "error": "UNKNOWN_VERB",
                            "message": f"unknown verb {op!r}; "
                            f"supported: {', '.join(VERBS)}",
                        },
                    )
                except (ConnectionError, RuntimeError, OSError):
                    self._count("reply_failures")
                return
            await self._dispatch_execute(op, msg, req_id, writer, conn, scope)
        except BaseException as exc:  # typed error reply, never a crash
            # NB: DeadlineExceededError is a TimeoutError, which IS an
            # OSError since Python 3.3 — transport-failure handling
            # must never swallow ReproError-typed exceptions.
            if isinstance(
                exc, (ConnectionError, OSError)
            ) and not isinstance(exc, ReproError):
                self._count("reply_failures")
            else:
                await self._reply_error(writer, conn, req_id, exc)
        finally:
            # Backstop: execute paths release eagerly (before their
            # admission permit drops); everything else — ping/stats,
            # malformed requests that never reached dispatch_execute —
            # ends its leases here.
            if scope is not None:
                scope.release()

    async def _dispatch_execute(
        self, op, msg, req_id, writer, conn: _ConnState,
        scope: Optional[_LeaseScope],
    ) -> None:
        tenant = str(msg.get("tenant", "default"))
        self._count(f"tenant.{tenant}.requests")
        try:
            if self._draining:
                raise DrainingError("server is draining; intake is closed")
            dims, perm, elem_bytes = self._problem_of(msg)
            key = content_key(dims, perm, elem_bytes, self.spec)
            replica = self.route_key(key)
            svc = self.replicas[replica]
            reason = self.admission.try_admit(
                tenant, queue_depth=svc.scheduler.queue_depth
            )
            if reason is not None:
                self._count(f"tenant.{tenant}.shed")
                if reason == "QUOTA_EXCEEDED":
                    raise QuotaExceededError(
                        f"tenant {tenant!r} exhausted its quota"
                    )
                raise OverloadedError(
                    f"{self.admission.inflight} requests inflight "
                    f"(cap {self.admission.max_inflight}); back off and retry"
                )
        except BaseException as exc:
            await self._reply_error(writer, conn, req_id, exc)
            return
        # --- permit held from here: every path below must release -----
        try:
            loop = asyncio.get_running_loop()
            deadline_s = msg.get("deadline_ms")
            deadline_s = (
                float(deadline_s) / 1e3
                if deadline_s is not None
                else self.default_deadline_s
            )
            expires = (
                loop.time() + deadline_s if deadline_s is not None else None
            )
            payload, return_output = self._payload_of(
                msg, op, key, dims, elem_bytes
            )
            self._count(f"routed.replica{replica}")
            self._count(f"tenant.{tenant}.routed")
            if expires is not None and loop.time() > expires:
                self._count(f"tenant.{tenant}.deadline_missed")
                self._count("deadline_missed")
                raise DeadlineExceededError(
                    "deadline expired before dispatch"
                )
            if op == "batched":
                fut = svc.submit_batched(dims, perm, elem_bytes, payload)
            elif scope is not None and payload is not None:
                # The transpose writes its output directly into an
                # egress lease; the reply below is encoded as views
                # over it, released only after the write drains.
                out_view = scope.factory((math.prod(dims),), payload.dtype)
                fut = svc.submit(dims, perm, elem_bytes, payload, out=out_view)
            else:
                fut = svc.submit(dims, perm, elem_bytes, payload)
            report = await asyncio.wrap_future(fut)
            late = expires is not None and loop.time() > expires
            if late:
                self._count(f"tenant.{tenant}.deadline_missed")
                self._count("deadline_missed")
                report.release()
                raise DeadlineExceededError(
                    f"deadline expired {1e3 * (loop.time() - expires):.1f} ms "
                    "before the reply (work was executed and discarded)"
                )
            result = {
                "replica": replica,
                "stream": report.stream,
                "schema": report.schema,
                "sim_s": report.sim_time_s,
                "wall_s": report.wall_time_s,
                "queued_s": report.queued_s,
                "parts": report.parts,
                "batch": report.batch,
                "backend": report.backend,
            }
            if return_output and report.output is not None:
                result["output"] = np.asarray(report.output)
            reply = {"ok": True, "id": req_id, "result": result}
            try:
                await self._write(writer, conn, reply)
                self._count("replies")
            finally:
                report.release()
        except BaseException as exc:
            # Same TimeoutError-is-OSError trap as in _dispatch: typed
            # errors (deadline misses included) must reach the peer.
            if isinstance(
                exc, (ConnectionError, OSError)
            ) and not isinstance(exc, ReproError):
                self._count("reply_failures")
            else:
                await self._reply_error(writer, conn, req_id, exc)
        finally:
            # Leases die before the permit drops: when the admission
            # pool reads idle at drain time, no request still holds
            # arena blocks — the leak check is deterministic.
            if scope is not None:
                scope.release()
            self.admission.release()
            if self._draining and self.admission.idle:
                self._idle_event.set()

    # ------------------------------------------------------------------
    @staticmethod
    def _problem_of(msg) -> tuple:
        dims = msg.get("dims")
        perm = msg.get("perm")
        if not dims or not perm:
            raise ProtocolError("request needs non-empty dims and perm")
        try:
            dims = tuple(int(d) for d in dims)
            perm = tuple(int(p) for p in perm)
            elem_bytes = int(msg.get("elem_bytes", 8))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed problem fields: {exc}") from None
        return dims, perm, elem_bytes

    def _payload_of(self, msg, op, key, dims, elem_bytes):
        """The operand array for a request: explicit, synthetic, or None.

        Synthetic payloads (``synth: true``) are generated server-side
        once per content key and reused — the load-generator mode where
        the wire carries requests, not tensors.  Synth replies omit the
        output unless ``return_output`` asks for it.
        """
        payload = msg.get("payload")
        synth = bool(msg.get("synth", False))
        if payload is not None and synth:
            raise ProtocolError("pass either payload or synth, not both")
        if payload is not None:
            if not isinstance(payload, np.ndarray):
                raise ProtocolError("payload must be an ndarray")
            return payload, bool(msg.get("return_output", True))
        if synth:
            arr = self._synth.get(key)
            if arr is None:
                import hashlib

                dtype = _synth_dtype(elem_bytes)
                seed = int.from_bytes(
                    hashlib.blake2b(
                        key.encode("utf-8"), digest_size=4
                    ).digest(),
                    "big",
                )
                rng = np.random.default_rng(seed)
                volume = math.prod(dims)
                if dtype.kind == "f":
                    arr = rng.standard_normal(volume).astype(dtype)
                else:
                    arr = rng.integers(
                        -100, 100, size=volume, dtype=dtype
                    )
                self._synth[key] = arr
            return arr, bool(msg.get("return_output", False))
        if op == "batched":
            raise ProtocolError("batched requests need a payload (or synth)")
        return None, False

    # ------------------------------------------------------------------
    # snapshot / metrics folding
    # ------------------------------------------------------------------
    def serving_snapshot(self) -> dict:
        """Fold front-end counters and per-replica stats into one block.

        The ``counters`` section is flat ``serving.*`` names (what the
        CLI ``stats`` command prints) including the data-path byte
        counters and the ``serving.arena.*`` lease accounting;
        ``per_replica`` carries each shard's program-cache effectiveness
        and backlog; and ``runtime_counters`` sums every replica's
        service counters so aggregate cache/exec accounting survives the
        fold.
        """
        # Live connections fold their codec-byte deltas first, so the
        # snapshot reflects requests on still-open connections too.
        for live in list(self._conns):
            live.fold_into(self.metrics)
        raw = self.metrics.counters()
        counters = {
            f"serving.{name}": value for name, value in sorted(raw.items())
        }
        for name, value in sorted(self.arena.counters().items()):
            counters[f"serving.arena.{name}"] = value
        per_replica = []
        runtime_counters: Dict[str, int] = {}
        for i, svc in enumerate(self.replicas):
            executor = (
                svc.program_cache.stats()
                if svc.program_cache is not None
                else None
            )
            snap = svc.metrics.snapshot()
            for name, value in snap["counters"].items():
                runtime_counters[name] = runtime_counters.get(name, 0) + value
            cache_stats = svc.cache.snapshot_stats().as_dict()
            per_replica.append(
                {
                    "replica": i,
                    "routed": raw.get(f"routed.replica{i}", 0),
                    "queue_depth": svc.scheduler.queue_depth,
                    "inflight": svc.inflight,
                    "executor": executor,
                    "plan_cache": {
                        "resident": len(svc.cache),
                        "hit_rate": cache_stats.get("hit_rate", 0.0),
                    },
                }
            )
        return {
            "protocol_version": PROTOCOL_VERSION,
            "router": self.router,
            "replicas": len(self.replicas),
            "draining": self._draining,
            "zero_copy": self.zero_copy,
            "admission": self.admission.stats(),
            "counters": counters,
            "data_path": {
                "tensor_bytes_copied": raw.get("tensor_bytes_copied", 0),
                "tensor_bytes_zero_copy": raw.get("tensor_bytes_zero_copy", 0),
            },
            "arena": self.arena.stats(),
            "per_replica": per_replica,
            "runtime_counters": runtime_counters,
            "store": self.store.describe() if self.store is not None else None,
        }
