"""Public TTLG API.

Two entry levels:

- **NumPy convention** (friendly): :func:`transpose` behaves like
  ``np.transpose(a, axes)`` but runs through a TTLG plan on the
  simulated GPU and can report the simulated time/bandwidth.
- **Paper convention** (dims with dim 0 fastest, permutation ``p[i] = j``
  meaning output dim ``i`` is input dim ``j``): :func:`plan_transpose`,
  :class:`Transposer`, :func:`predict_time`.

:func:`predict_time` is the paper's "performance modeling interface that
can be queried by an invoking context" — e.g. the TTGT contraction
planner in :mod:`repro.ttgt`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import Predictor, TransposePlan, make_plan
from repro.core.taxonomy import Schema
from repro.errors import InvalidLayoutError
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec


def axes_to_perm(axes: Sequence[int]) -> Tuple[int, ...]:
    """Convert NumPy ``transpose`` axes to the paper's permutation.

    With rank ``r``: ``p[i] = r - 1 - axes[r - 1 - i]``.
    """
    r = len(axes)
    return tuple(r - 1 - axes[r - 1 - i] for i in range(r))


def perm_to_axes(perm: Sequence[int]) -> Tuple[int, ...]:
    """Inverse of :func:`axes_to_perm` (the conversion is an involution)."""
    return axes_to_perm(perm)


def _elem_bytes_of(dtype: np.dtype) -> int:
    size = np.dtype(dtype).itemsize
    if size not in (4, 8):
        raise InvalidLayoutError(
            f"TTLG kernels support 4- or 8-byte elements, got {size}-byte "
            f"dtype {dtype}"
        )
    return size


def _check_out(
    out: np.ndarray,
    dtype: np.dtype,
    shape: Optional[Tuple[int, ...]] = None,
    size: Optional[int] = None,
) -> np.ndarray:
    """Validate a caller-provided output buffer up front.

    The kernels' own ``check_output`` runs deep inside execution and
    raises ``SchemaError``; historically a non-contiguous or
    wrong-dtype ``out`` was accepted by some paths (silently copied) and
    rejected by others.  Every public ``out=`` now fails fast here with
    a consistent :class:`InvalidLayoutError`.
    """
    if not isinstance(out, np.ndarray):
        raise InvalidLayoutError(
            f"out must be a numpy array, got {type(out).__name__}"
        )
    if shape is not None and out.shape != tuple(shape):
        raise InvalidLayoutError(
            f"out has shape {out.shape}, expected {tuple(shape)}"
        )
    if size is not None and out.size != size:
        raise InvalidLayoutError(
            f"out has {out.size} elements, expected {size}"
        )
    if out.dtype != np.dtype(dtype):
        raise InvalidLayoutError(
            f"out has dtype {out.dtype}, expected {np.dtype(dtype)}"
        )
    if not out.flags.c_contiguous:
        raise InvalidLayoutError(
            "out must be C-contiguous (the kernels write the output "
            "linearization in place)"
        )
    if not out.flags.writeable:
        raise InvalidLayoutError("out is read-only")
    return out


def _plan_for(
    dims: Sequence[int],
    perm: Sequence[int],
    elem_bytes: int,
    spec: DeviceSpec,
    predictor: Optional[Predictor],
) -> TransposePlan:
    """Plan directly, or through the installed runtime service.

    When a process-wide :class:`repro.runtime.TransposeService` is
    installed (see :func:`repro.runtime.set_default_service`), planning
    routes through it — gaining request coalescing, the LRU cache, the
    persistent plan store, and metrics — unless the caller pins a custom
    ``predictor``, which a shared service cannot honour per-call.
    """
    if predictor is None:
        from repro.runtime import get_default_service

        service = get_default_service()
        if service is not None:
            return service.plan(dims, perm, elem_bytes, spec)
    return make_plan(dims, perm, elem_bytes, spec, predictor)


@dataclass(frozen=True)
class TransposeEstimate:
    """Answer of the queryable performance-model interface."""

    schema: Schema
    kernel_time: float
    plan_time: float
    bandwidth_gbps: float
    num_candidates: int

    @property
    def single_use_time(self) -> float:
        return self.kernel_time + self.plan_time


class Transposer:
    """A planned transposition for the repeated-use scenario.

    Plan once, call many times; mirrors cuTT's plan handle and TTC's
    generated kernel.

    Parameters use the paper convention; see :func:`transpose` for the
    NumPy-flavoured one-shot API.
    """

    def __init__(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
        predictor: Optional[Predictor] = None,
    ):
        self.plan = make_plan(dims, perm, elem_bytes, spec, predictor)
        self._cost_model = CostModel(spec)
        self.calls = 0

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self.plan.schema

    def __call__(
        self, src_flat: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Execute on linearized data (paper convention).

        With ``out`` (C-contiguous, same size and dtype) the result is
        written in place — the steady-state repeated-use call does no
        allocation at all.  An ``out`` of the wrong dtype, size, or
        memory layout raises :class:`InvalidLayoutError` before
        anything executes.
        """
        self.calls += 1
        if out is not None:
            _check_out(
                out,
                np.asarray(src_flat).dtype,
                size=self.plan.layout.volume,
            )
        return self.plan.execute(src_flat, out=out)

    def simulated_time(self) -> float:
        return self.plan.simulated_time(self._cost_model)

    def estimate(self) -> TransposeEstimate:
        t = self.simulated_time()
        return TransposeEstimate(
            schema=self.schema,
            kernel_time=t,
            plan_time=self.plan.plan_time,
            bandwidth_gbps=self._cost_model.bandwidth_gbps(
                self.plan.layout.volume, self.plan.elem_bytes, t
            ),
            num_candidates=self.plan.num_candidates,
        )


def plan_transpose(
    dims: Sequence[int],
    perm: Sequence[int],
    elem_bytes: int = 8,
    spec: DeviceSpec = KEPLER_K40C,
    predictor: Optional[Predictor] = None,
) -> TransposePlan:
    """Plan a transposition in the paper convention (see module docs).

    Routes through the installed runtime service, when there is one.
    """
    return _plan_for(dims, perm, elem_bytes, spec, predictor)


def predict_time(
    dims: Sequence[int],
    perm: Sequence[int],
    elem_bytes: int = 8,
    spec: DeviceSpec = KEPLER_K40C,
    predictor: Optional[Predictor] = None,
) -> TransposeEstimate:
    """Estimate a transposition without executing it.

    This is the interface a higher-level optimizer (e.g. a TTGT tensor
    contraction planner) queries to choose among layouts.
    """
    plan = _plan_for(dims, perm, elem_bytes, spec, predictor)
    cm = CostModel(spec)
    t = plan.simulated_time(cm)
    return TransposeEstimate(
        schema=plan.schema,
        kernel_time=t,
        plan_time=plan.plan_time,
        bandwidth_gbps=cm.bandwidth_gbps(plan.layout.volume, elem_bytes, t),
        num_candidates=plan.num_candidates,
    )


def transpose_many(
    arrays: Sequence[np.ndarray],
    axes: Sequence[int],
    spec: DeviceSpec = KEPLER_K40C,
    predictor: Optional[Predictor] = None,
) -> list:
    """Transpose a batch of same-shape arrays through ONE plan.

    The repeated-use pattern (Fig. 12) as an API: the plan is built once
    and reused, and the whole batch moves as **one** fused
    :meth:`~repro.kernels.executor.ExecutorProgram.run_batch` over a
    stacked leading axis, so the per-call cost is a single kernel
    execution for the entire batch.  All arrays must share the first
    array's shape and dtype.
    """
    if not arrays:
        return []
    first = np.ascontiguousarray(arrays[0])
    if first.ndim != len(axes):
        raise InvalidLayoutError(
            f"axes of length {len(axes)} for a rank-{first.ndim} array"
        )
    dims = first.shape[::-1]
    perm = axes_to_perm(axes)
    plan = _plan_for(dims, perm, _elem_bytes_of(first.dtype), spec, predictor)
    out_shape = tuple(first.shape[ax] for ax in axes)
    flats = []
    for a in arrays:
        a = np.ascontiguousarray(a)
        if a.shape != first.shape or a.dtype != first.dtype:
            raise InvalidLayoutError(
                "transpose_many requires a homogeneous batch: got "
                f"{a.shape}/{a.dtype} vs {first.shape}/{first.dtype}"
            )
        flats.append(plan.kernel.check_input(a.reshape(-1)))
    moved = plan.executor().run_batch(flats)
    return [row.reshape(out_shape) for row in moved]


def transpose(
    array: np.ndarray,
    axes: Sequence[int],
    spec: DeviceSpec = KEPLER_K40C,
    predictor: Optional[Predictor] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``np.transpose(array, axes)`` through a TTLG plan.

    The array must be C-contiguous (or convertible); the result is a new
    contiguous array, element-identical to NumPy's transposition.  With
    ``out`` (C-contiguous, the transposed shape, same dtype) the result
    is written in place and ``out`` is returned; a non-contiguous,
    wrong-shape, or wrong-dtype ``out`` raises
    :class:`InvalidLayoutError` before anything is planned or executed.
    """
    a = np.ascontiguousarray(array)
    if a.ndim != len(axes):
        raise InvalidLayoutError(
            f"axes of length {len(axes)} for a rank-{a.ndim} array"
        )
    dims = a.shape[::-1]  # our dim 0 is the fastest (NumPy's last axis)
    perm = axes_to_perm(axes)
    out_shape = tuple(a.shape[ax] for ax in axes)
    if out is not None:
        _check_out(out, a.dtype, shape=out_shape)
    plan = _plan_for(dims, perm, _elem_bytes_of(a.dtype), spec, predictor)
    if out is not None:
        plan.execute(a.reshape(-1), out=out)
        return out
    return plan.execute(a.reshape(-1)).reshape(out_shape)
