"""Shipped pretrained models and the planning predictor built on them.

``data/pretrained.json`` is produced by ``examples/model_training.py``
(or :func:`repro.model.trainer.train`) against the default simulated
K40c and committed to the repository, mirroring how the paper ships
offline-fitted regression coefficients inside the library.

:func:`pretrained_predictor` adapts the per-schema models into the
``Predictor`` callable Alg. 3 consumes, falling back to the simulator's
own cost model (the "oracle") for schemas without a fitted model.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.taxonomy import Schema
from repro.errors import ModelError
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.model.features import feature_matrix, feature_vector
from repro.model.regression import FittedModel
from repro.model.store import load_models

PRETRAINED_PATH = Path(__file__).parent / "data" / "pretrained.json"


@functools.lru_cache(maxsize=1)
def load_pretrained() -> Dict[Schema, FittedModel]:
    """The committed models, loaded once per process."""
    return load_models(PRETRAINED_PATH)


#: Schemas predicted by the analytic cost model rather than regression:
#: their counters are exact and cheap, their regression feature sets are
#: weak (the paper omits their model details "due to space
#: constraints"), and mixing a noisy model into cross-schema ranking
#: loses more than the regression gains.
ANALYTIC_SCHEMAS = frozenset(
    {Schema.FVI_MATCH_LARGE, Schema.FVI_MATCH_SMALL, Schema.NAIVE}
)


class SchemaPredictor:
    """Per-schema fitted models wrapped as an Alg. 3 predictor.

    Callable on one kernel (``predictor(kernel)``) and batchable over
    many (:meth:`predict_batch`) — the batched path groups kernels by
    schema and scores each group with a single matrix–vector product
    (or one vectorized cost-model pass for analytic schemas).

    Linear models can extrapolate below zero on extreme inputs; predicted
    times are clamped to ``min_time``.  Schemas absent from ``models``
    or listed in :data:`ANALYTIC_SCHEMAS` use ``fallback`` (the analytic
    cost model) when given, else raise.
    """

    def __init__(
        self,
        models: Dict[Schema, FittedModel],
        fallback: Optional[CostModel] = None,
        min_time: float = 1.0e-6,
    ) -> None:
        self.models = dict(models)
        self.fallback = fallback
        self.min_time = min_time

    def _model_for(self, schema: Schema) -> Optional[FittedModel]:
        if schema in ANALYTIC_SCHEMAS and self.fallback is not None:
            return None
        m = self.models.get(schema)
        if m is None and self.fallback is None:
            raise ModelError(f"no fitted model for schema {schema.value}")
        return m

    def __call__(self, kernel: TransposeKernel) -> float:
        m = self._model_for(kernel.schema)
        if m is None:
            assert self.fallback is not None
            return self.fallback.kernel_time(
                kernel.counters(), kernel.launch_geometry
            )
        return max(m.predict_one(feature_vector(kernel)), self.min_time)

    def predict_batch(
        self, kernels: Sequence[TransposeKernel]
    ) -> np.ndarray:
        """Times for many kernels, one schema group at a time."""
        out = np.empty(len(kernels), dtype=np.float64)
        by_schema: Dict[Schema, List[int]] = {}
        for i, k in enumerate(kernels):
            by_schema.setdefault(k.schema, []).append(i)
        for schema, idxs in by_schema.items():
            group = [kernels[i] for i in idxs]
            m = self._model_for(schema)
            if m is None:
                assert self.fallback is not None
                times = self.fallback.kernel_time_batch(
                    [k.counters() for k in group],
                    [k.launch_geometry for k in group],
                )
            else:
                times = np.maximum(
                    m.predict_batch(feature_matrix(group)), self.min_time
                )
            out[idxs] = times
        return out


def model_predictor(
    models: Dict[Schema, FittedModel],
    fallback: Optional[CostModel] = None,
    min_time: float = 1.0e-6,
) -> SchemaPredictor:
    """Wrap per-schema fitted models as an Alg. 3 predictor.

    Kept as the construction entry point; the returned
    :class:`SchemaPredictor` is a plain callable with an extra
    ``predict_batch`` method the two-phase planner exploits.
    """
    return SchemaPredictor(models, fallback=fallback, min_time=min_time)


#: Device the shipped coefficients were fitted on.  The regression is
#: device-specific (the paper fits offline per machine); planning for
#: any other device uses the analytic cost model until retrained.
PRETRAINED_DEVICE_NAME = "Tesla K40c (simulated)"


def pretrained_predictor(
    spec: Optional[DeviceSpec] = None,
) -> SchemaPredictor:
    """Predictor over the shipped models with an oracle fallback.

    The shipped coefficients are only valid for the device they were
    trained on; for any other ``spec`` every schema falls back to the
    analytic cost model (retrain via ``examples/model_training.py``).
    """
    fallback = CostModel(spec) if spec is not None else CostModel()
    if spec is not None and spec.name != PRETRAINED_DEVICE_NAME:
        return model_predictor({}, fallback=fallback)
    return model_predictor(load_pretrained(), fallback=fallback)


class OraclePredictor:
    """Predictor that queries the simulator's cost model directly."""

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model

    def __call__(self, kernel: TransposeKernel) -> float:
        return self.cost_model.kernel_time(
            kernel.counters(), kernel.launch_geometry
        )

    def predict_batch(
        self, kernels: Sequence[TransposeKernel]
    ) -> np.ndarray:
        return self.cost_model.kernel_time_batch(
            [k.counters() for k in kernels],
            [k.launch_geometry for k in kernels],
        )


def oracle_predictor(
    spec: Optional[DeviceSpec] = None,
) -> OraclePredictor:
    """Predictor that queries the simulator's cost model directly.

    Used for ablations (model-driven vs oracle selection) and as the
    bootstrap predictor before any model has been trained.
    """
    cm = CostModel(spec) if spec is not None else CostModel()
    return OraclePredictor(cm)
