"""TTC reimplementation (Springer et al., ARRAY 2016) on gpusim.

TTC is an *offline code generator*: for a fixed size + permutation it
emits specialized C++/CUDA candidates over loop orders and blockings,
measures each, and ships the fastest.  Consequences reproduced here:

- its GPU kernels tile the two fastest-varying dims with a 32x32
  shared-memory tile (no dimension combining — TTLG's Sec. III insight),
  falling back to a direct copy for matching-FVI and an elementwise
  kernel otherwise;
- candidate selection is by (simulated) measurement, but **offline**:
  the ~8 s of code generation + compilation the paper reports is kept
  out of the online plan time, which is why TTC appears in the
  repeated-use charts but not the single-use ones;
- the generated code bakes sizes in, so the online "plan" is just an
  allocation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.library import LibraryPlan, TransposeLibrary
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.errors import PlanError, SchemaError
from repro.gpusim.noise import measurement_jitter
from repro.kernels.base import TransposeKernel
from repro.kernels.fvi_match_large import FviMatchLargeKernel
from repro.kernels.naive import NaiveKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel

#: Code generation + compilation per problem (paper: "around 8 seconds").
CODEGEN_TIME_S = 8.0


def ttc_candidates(
    layout: TensorLayout,
    perm: Permutation,
    spec,
    elem_bytes: int,
) -> List[TransposeKernel]:
    """TTC's candidate set: FVI-dim tilings with a few blocking variants."""
    cands: List[TransposeKernel] = []
    if perm.fvi_matches():
        cands.append(FviMatchLargeKernel(layout, perm, elem_bytes, spec))
    else:
        # 32x32 tile over the two FVI dims only (sub-dim blocked when an
        # extent exceeds the tile) — TTC's CUDA backend does not combine
        # dimensions, which is exactly where TTLG's Sec. III
        # generalization wins on sub-warp extents.
        ws = spec.warp_size
        try:
            cands.append(
                OrthogonalDistinctKernel(
                    layout,
                    perm,
                    in_prefix=0,
                    blockA=min(ws, layout.dims[0]),
                    out_prefix=0,
                    blockB=min(ws, layout.dims[perm[0]]),
                    elem_bytes=elem_bytes,
                    spec=spec,
                )
            )
        except SchemaError:
            pass
    # The elementwise fallback is always generated.
    cands.append(NaiveKernel(layout, perm, elem_bytes, spec))
    return cands


class TTC(TransposeLibrary):
    """TTC: offline-measured specialized code, repeated-use oriented."""

    name = "TTC"

    def plan(
        self, dims: Sequence[int], perm: Sequence[int], elem_bytes: int = 8
    ) -> LibraryPlan:
        fused = self.fuse(dims, perm)
        cands = ttc_candidates(fused.layout, fused.perm, self.spec, elem_bytes)
        if not cands:
            raise PlanError(
                f"TTC generated no candidate for dims={tuple(dims)} "
                f"perm={tuple(perm)}"
            )
        best, best_t = None, float("inf")
        for i, k in enumerate(cands):
            t = k.simulated_time(self.cost_model)
            measured = t * measurement_jitter(
                ("ttc-offline", tuple(dims), tuple(perm), i), 0.01
            )
            if measured < best_t:
                best, best_t = k, measured
        assert best is not None
        return LibraryPlan(
            library=self.name,
            kernel=best,
            plan_time=self.spec.alloc_overhead_s,
            num_candidates=len(cands),
            offline_time=CODEGEN_TIME_S,
        )
