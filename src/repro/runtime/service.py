"""The concurrent transpose-serving front door.

:class:`TransposeService` is what a long-running process embeds: many
threads submit transpositions; the service coalesces identical in-flight
planning requests (single-flight), serves repeats from the LRU cache,
warm-starts the cache from a persistent :class:`PlanStore` across
process restarts, dispatches executions over a pool of simulated
streams, and accounts everything in a :class:`MetricsRegistry`.

A process-wide default service can be installed so the classic
:mod:`repro.core.api` entry points (``repro.transpose`` etc.) route
through it transparently — see :func:`install_default_service`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.cache import DEFAULT_CAPACITY, PlanCache
from repro.core.plan import Predictor, TransposePlan
from repro.errors import InvalidLayoutError
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.runtime.batching import SingleFlight
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.scheduler import ExecutionReport, StreamScheduler
from repro.runtime.store import PlanStore

#: How cache events surface in the metrics registry.
_EVENT_COUNTERS = {
    "hit": "cache_hits",
    "miss": "cache_misses",
    "restore": "plans_restored",
    "build": "plans_built",
    "eviction": "cache_evictions",
    "store_error": "store_errors",
}


class TransposeService:
    """Thread-safe transpose server over the simulated GPU.

    Parameters
    ----------
    spec:
        Default simulated device plans are built for.
    store:
        An existing :class:`PlanStore` to warm-start from (mutually
        exclusive with ``store_path``).
    store_path:
        Path of a JSON plan store to open (created when absent).
    cache_capacity:
        LRU capacity of the in-memory plan cache.
    num_streams / devices:
        Worker pool shape; streams round-robin over ``devices``
        (default: ``[spec]``).
    predictor:
        Optional override of the performance model used when planning
        for ``spec`` (tests use the oracle predictor for speed).
    metrics:
        Share a registry between services; a fresh one by default.
    """

    def __init__(
        self,
        spec: DeviceSpec = KEPLER_K40C,
        *,
        store: Optional[PlanStore] = None,
        store_path: Optional[Union[str, Path]] = None,
        cache_capacity: int = DEFAULT_CAPACITY,
        num_streams: int = 4,
        devices: Optional[Sequence[DeviceSpec]] = None,
        predictor: Optional[Predictor] = None,
        metrics: Optional[MetricsRegistry] = None,
        store_autoflush: bool = True,
    ):
        if store is not None and store_path is not None:
            raise ValueError("pass either store or store_path, not both")
        self.spec = spec
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = store
        if store_path is not None:
            self.store = PlanStore(store_path, autoflush=store_autoflush)
        self.cache = PlanCache(
            cache_capacity, store=self.store, on_event=self._cache_event
        )
        self._predictor = predictor
        self._flights = SingleFlight()
        self.scheduler = StreamScheduler(
            num_streams=num_streams,
            devices=devices if devices else [spec],
            metrics=self.metrics,
        )
        self._closed = False

    # ------------------------------------------------------------------
    def _cache_event(self, event: str) -> None:
        self.metrics.inc(_EVENT_COUNTERS.get(event, event))

    def plan(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        spec: Optional[DeviceSpec] = None,
    ) -> TransposePlan:
        """Cache-backed, store-backed, single-flight planning.

        Concurrent requests for the same key share one planning search:
        exactly one caller builds (or restores) the plan, the rest wait
        on it.  Later arrivals hit the LRU.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        spec = spec if spec is not None else self.spec
        predictor = self._predictor if spec is self.spec else None
        self.metrics.inc("plan_requests")
        key = PlanCache._key(dims, perm, elem_bytes, spec)
        started = time.perf_counter()
        plan, leader = self._flights.do(
            key, lambda: self.cache.get(dims, perm, elem_bytes, spec, predictor)
        )
        if not leader:
            self.metrics.inc("requests_coalesced")
        self.metrics.observe("plan_s", time.perf_counter() - started)
        return plan

    # ------------------------------------------------------------------
    def submit(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
    ):
        """Plan (coalesced/cached) and enqueue the execution.

        Returns a ``concurrent.futures.Future`` resolving to an
        :class:`~repro.runtime.scheduler.ExecutionReport`.  ``payload``
        is the linearized input data; without it the stream still
        retires the launch on its simulated clock (a timing-only call).
        """
        plan = self.plan(dims, perm, elem_bytes, spec)
        self.metrics.inc("executions_submitted")
        return self.scheduler.submit(plan, payload)

    def execute(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
    ) -> ExecutionReport:
        """Blocking :meth:`submit`."""
        return self.submit(dims, perm, elem_bytes, payload, spec).result()

    def submit_partitioned(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
        parts: Optional[int] = None,
    ):
        """Plan, then execute ONE transposition across the whole pool.

        The plan's compiled executor program is split into up to
        ``parts`` (default: the stream count) disjoint tasks that the
        worker streams retire concurrently into a shared output buffer —
        the multi-stream analogue of splitting a launch's thread blocks
        across streams.  Returns a future resolving to an
        :class:`~repro.runtime.scheduler.ExecutionReport`.
        """
        if payload is None:
            raise InvalidLayoutError(
                "submit_partitioned requires a payload to move"
            )
        plan = self.plan(dims, perm, elem_bytes, spec)
        self.metrics.inc("executions_submitted")
        return self.scheduler.submit_partitioned(plan, payload, parts)

    def execute_partitioned(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        payload: Optional[np.ndarray] = None,
        spec: Optional[DeviceSpec] = None,
        parts: Optional[int] = None,
    ) -> ExecutionReport:
        """Blocking :meth:`submit_partitioned`."""
        return self.submit_partitioned(
            dims, perm, elem_bytes, payload, spec, parts
        ).result()

    def transpose(self, array: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        """NumPy-convention transposition routed through the service."""
        from repro.core.api import _elem_bytes_of, axes_to_perm

        a = np.ascontiguousarray(array)
        if a.ndim != len(axes):
            raise InvalidLayoutError(
                f"axes of length {len(axes)} for a rank-{a.ndim} array"
            )
        dims = a.shape[::-1]
        perm = axes_to_perm(axes)
        report = self.execute(
            dims, perm, _elem_bytes_of(a.dtype), payload=a.reshape(-1)
        )
        out_shape = tuple(a.shape[ax] for ax in axes)
        return report.output.reshape(out_shape)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Full JSON-friendly status: metrics + cache + streams + store
        + compiled-executor program cache."""
        from repro.kernels.executor import exec_cache_stats

        return {
            "device": self.spec.name,
            "metrics": self.metrics.snapshot(),
            "cache": {
                "capacity": self.cache.capacity,
                "resident_plans": len(self.cache),
                **self.cache.snapshot_stats().as_dict(),
            },
            "executor": exec_cache_stats(),
            "scheduler": self.scheduler.snapshot(),
            "store": self.store.describe() if self.store else None,
        }

    def flush(self) -> None:
        if self.store is not None:
            self.store.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.scheduler.shutdown()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "TransposeService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
