"""Detailed per-warp simulation engine (validation path).

Kernels expose an optional trace generator that yields every warp-level
memory access a launch would perform.  This engine replays the trace
through the exact coalescing and bank-conflict models and aggregates a
:class:`~repro.gpusim.counters.KernelCounters`, which tests compare
against the kernels' fast analytic counters.

The trace path is O(elements) and only meant for small tensors; the
analytic path used by planning and benchmarks is O(rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from repro.gpusim.counters import KernelCounters
from repro.gpusim.sharedmem import extra_conflict_cycles
from repro.gpusim.spec import DeviceSpec
from repro.gpusim.texture import offset_array_traffic
from repro.gpusim.transactions import warp_transactions

AccessKind = Literal["gld", "gst", "sld", "sst", "tld"]


@dataclass(frozen=True)
class WarpAccess:
    """One warp-level memory access.

    Attributes
    ----------
    kind:
        ``gld``/``gst`` global load/store, ``sld``/``sst`` shared-memory
        load/store, ``tld`` texture (offset-array) load.
    addresses:
        Byte addresses touched by the *active* lanes only.  For shared
        memory these are byte offsets into the block's buffer.
    elem_bytes:
        Element size each lane moves.
    warp_size:
        Lanes available in the warp (for lane-efficiency accounting).
    """

    kind: AccessKind
    addresses: np.ndarray
    elem_bytes: int
    warp_size: int = 32

    def __post_init__(self) -> None:
        if self.elem_bytes <= 0:
            raise ValueError(f"elem_bytes must be positive, got {self.elem_bytes}")
        if len(self.addresses) > self.warp_size:
            raise ValueError(
                f"{len(self.addresses)} active lanes exceeds warp size "
                f"{self.warp_size}"
            )


class _LineCache:
    """Tiny LRU over recently touched 128 B lines.

    Models the L1/L2 absorption of boundary lines shared between
    *consecutive* accesses (e.g. two warp reads covering one contiguous
    row) without giving credit for distant reuse.  This matches the
    per-contiguous-run transaction convention of the analytic counters.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._lines: dict = {}

    def misses(self, lines: np.ndarray) -> int:
        n = 0
        for line in lines.tolist():
            if line in self._lines:
                self._lines.pop(line)
            else:
                n += 1
            self._lines[line] = None
            if len(self._lines) > self.capacity:
                self._lines.pop(next(iter(self._lines)))
        return n


def simulate_warp_accesses(
    accesses: Iterable[WarpAccess],
    spec: DeviceSpec,
    tex_array_bytes: int = 0,
    line_cache_capacity: int = 64,
) -> KernelCounters:
    """Aggregate a full access trace into kernel counters.

    Parameters
    ----------
    accesses:
        The launch's warp accesses, in trace order (the small line cache
        makes global transaction counts mildly order-sensitive, matching
        real hardware).
    spec:
        Device whose coalescing/bank parameters apply.
    tex_array_bytes:
        Combined size of all texture-mapped offset arrays, for the
        compulsory-miss model.
    line_cache_capacity:
        Lines of the LRU that absorbs immediately re-touched boundary
        lines; 0 disables it (pure per-access counting).
    """
    c = KernelCounters()
    caches = (
        {"gld": _LineCache(line_cache_capacity), "gst": _LineCache(line_cache_capacity)}
        if line_cache_capacity
        else None
    )
    for acc in accesses:
        active = int(len(acc.addresses))
        if active == 0:
            continue
        addrs = np.asarray(acc.addresses, dtype=np.int64)
        if acc.kind in ("gld", "gst"):
            if caches is not None:
                first = addrs // spec.transaction_bytes
                last = (addrs + acc.elem_bytes - 1) // spec.transaction_bytes
                lines = np.unique(np.concatenate([first, last]))
                tx = caches[acc.kind].misses(lines)
            else:
                tx = warp_transactions(
                    addrs, acc.elem_bytes, spec.transaction_bytes
                )
            useful = active * acc.elem_bytes
            c.lane_slots += acc.warp_size
            c.active_lanes += active
            if acc.kind == "gld":
                c.dram_ld_tx += tx
                c.dram_ld_useful_bytes += useful
                c.warp_ld_accesses += 1
            else:
                c.dram_st_tx += tx
                c.dram_st_useful_bytes += useful
                c.warp_st_accesses += 1
        elif acc.kind in ("sld", "sst"):
            words = addrs // spec.bank_bytes
            c.smem_conflict_cycles += extra_conflict_cycles(
                words, spec.shared_mem_banks
            )
            if acc.kind == "sld":
                c.smem_ld_accesses += 1
            else:
                c.smem_st_accesses += 1
        elif acc.kind == "tld":
            c.tex_accesses += 1
        else:  # pragma: no cover - kind is a Literal, defensive only
            raise ValueError(f"unknown access kind {acc.kind!r}")
    traffic = offset_array_traffic(tex_array_bytes, c.tex_accesses)
    c.tex_miss_tx = traffic.miss_tx
    return c
