"""Tests for the coarsening heuristic and the error hierarchy."""

import pytest

import repro
from repro.core.coarsening import (
    MIN_TENSOR_BYTES,
    choose_coarsening,
)
from repro.core.layout import TensorLayout
from repro.errors import (
    ContractionError,
    InvalidLayoutError,
    InvalidPermutationError,
    ModelError,
    PlanError,
    ReproError,
    SchemaError,
)


class TestCoarsening:
    def test_small_tensor_never_coarsened(self):
        """Sec. IV-A: only tensors above 2 MB are coarsened."""
        layout = TensorLayout((16, 16, 16))  # 32 KB
        assert choose_coarsening(layout, slice_dims=[0]) is None

    def test_first_eligible_dim_in_input_order(self):
        layout = TensorLayout((64, 8, 16, 64, 64))  # > 2 MB
        dim_factor = choose_coarsening(layout, slice_dims=[0])
        assert dim_factor == (1, 8)

    def test_slice_dims_excluded(self):
        layout = TensorLayout((64, 8, 16, 64, 64))
        dim_factor = choose_coarsening(layout, slice_dims=[0, 1])
        assert dim_factor == (2, 16)

    def test_extent_window(self):
        """Extents outside [4, 32] are not coarsenable."""
        layout = TensorLayout((64, 2, 64, 128, 64))
        assert choose_coarsening(layout, slice_dims=[0]) is None

    def test_factor_is_full_extent(self):
        layout = TensorLayout((64, 32, 64, 64))
        d, f = choose_coarsening(layout, slice_dims=[0])
        assert f == layout.dims[d]

    def test_threshold_boundary(self):
        vol = MIN_TENSOR_BYTES // 8  # exactly 2 MB of doubles
        layout = TensorLayout((vol // 8, 8))
        assert choose_coarsening(layout, slice_dims=[0]) is None


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidPermutationError,
            InvalidLayoutError,
            PlanError,
            SchemaError,
            ModelError,
            ContractionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_schema_error_is_plan_error(self):
        assert issubclass(SchemaError, PlanError)

    def test_value_errors_catchable_as_builtin(self):
        assert issubclass(InvalidPermutationError, ValueError)
        assert issubclass(InvalidLayoutError, ValueError)
        assert issubclass(ContractionError, ValueError)

    def test_api_raises_library_errors(self):
        with pytest.raises(ReproError):
            repro.plan_transpose((4, 4), (0, 0))
        with pytest.raises(ReproError):
            repro.plan_transpose((0, 4), (1, 0))
