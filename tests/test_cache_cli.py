"""Tests for the plan cache and the CLI entry point."""

import subprocess
import sys

import pytest

from repro.core.cache import PlanCache, cached_plan, global_cache
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100
from repro.model.pretrained import oracle_predictor

ORACLE = oracle_predictor()


class TestPlanCache:
    def test_hit_returns_same_plan(self):
        cache = PlanCache()
        a = cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        b = cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        assert a is b
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_distinct_problems_miss(self):
        cache = PlanCache()
        cache.get((8, 8, 8), (2, 1, 0), predictor=ORACLE)
        cache.get((8, 8, 8), (1, 2, 0), predictor=ORACLE)
        assert cache.stats.misses == 2

    def test_device_in_key(self):
        cache = PlanCache()
        a = cache.get((8, 8, 8), (2, 1, 0), spec=KEPLER_K40C, predictor=ORACLE)
        b = cache.get(
            (8, 8, 8), (2, 1, 0), spec=PASCAL_P100,
            predictor=oracle_predictor(PASCAL_P100),
        )
        assert a is not b

    def test_eviction(self):
        cache = PlanCache(capacity=2)
        cache.get((4, 4), (1, 0), predictor=ORACLE)
        cache.get((4, 8), (1, 0), predictor=ORACLE)
        cache.get((8, 4), (1, 0), predictor=ORACLE)
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_lru_order(self):
        cache = PlanCache(capacity=2)
        a = cache.get((4, 4), (1, 0), predictor=ORACLE)
        cache.get((4, 8), (1, 0), predictor=ORACLE)
        cache.get((4, 4), (1, 0), predictor=ORACLE)  # refresh a
        cache.get((8, 4), (1, 0), predictor=ORACLE)  # evicts (4,8)
        assert cache.get((4, 4), (1, 0), predictor=ORACLE) is a

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_global_cache_shared(self):
        global_cache().clear()
        a = cached_plan((6, 6, 6), (2, 0, 1), predictor=ORACLE)
        b = cached_plan((6, 6, 6), (2, 0, 1), predictor=ORACLE)
        assert a is b
        assert global_cache().stats.hit_rate == 0.5


def run_cli(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCli:
    def test_plan(self):
        out = run_cli("plan", "16,16,16", "2,1,0")
        assert "schema" in out and "bandwidth" in out

    def test_predict(self):
        out = run_cli("predict", "32,8,16", "1,2,0")
        assert "kernel time" in out

    def test_compare(self):
        out = run_cli("compare", "8,8,8,8", "3,2,1,0")
        assert "TTLG" in out and "cuTT Measure" in out

    def test_device(self):
        out = run_cli("device", "p100")
        assert "P100" in out

    def test_plan_f32(self):
        out = run_cli("plan", "16,16,16", "2,1,0", "--dtype", "f32")
        assert "schema" in out

    def test_bad_dims_rejected(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "plan", "16,x", "1,0"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode != 0
