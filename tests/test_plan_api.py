"""Tests for the planner (repro.core.plan) and public API (core.api)."""

import numpy as np
import pytest

import repro
from repro.core.api import axes_to_perm, perm_to_axes
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.plan import make_plan
from repro.core.taxonomy import Schema
from repro.errors import InvalidLayoutError, InvalidPermutationError
from repro.kernels.common import reference_transpose
from repro.model.pretrained import oracle_predictor

ORACLE = oracle_predictor()


class TestMakePlan:
    @pytest.mark.parametrize(
        "dims,perm",
        [
            ((16,) * 6, (4, 1, 2, 5, 3, 0)),
            ((8, 2, 8, 8), (2, 1, 3, 0)),
            ((64, 8, 10, 6), (0, 3, 2, 1)),
            ((8, 12, 10, 6), (0, 2, 1, 3)),
            ((128, 128), (1, 0)),
            ((32, 32, 32), (0, 1, 2)),
            ((5, 7), (1, 0)),
            ((3, 3, 3, 3, 3, 3, 3), (6, 5, 4, 3, 2, 1, 0)),
        ],
    )
    def test_plans_and_executes_correctly(self, dims, perm, rng):
        plan = make_plan(dims, perm, predictor=ORACLE)
        layout, p = TensorLayout(dims), Permutation(perm)
        src = rng.standard_normal(layout.volume)
        np.testing.assert_array_equal(
            plan.execute(src), reference_transpose(src, layout, p)
        )

    def test_identity_uses_copy_kernel(self):
        plan = make_plan((16, 16, 16), (0, 1, 2), predictor=ORACLE)
        assert plan.schema is Schema.FVI_MATCH_LARGE

    def test_plan_time_positive_and_scales(self):
        p1 = make_plan((64, 8), (1, 0), predictor=ORACLE)
        assert p1.plan_time > 0
        assert p1.num_candidates >= 1

    def test_pretrained_predictor_default(self):
        plan = make_plan((16,) * 4, (3, 2, 1, 0))
        assert plan.predicted_time > 0

    def test_model_choice_close_to_oracle(self):
        """The regression-driven choice must be within 25 % of the
        oracle-optimal simulated time (Fig. 5's 'choose the potential
        best slice variant')."""
        dims, perm = (27,) * 5, (4, 1, 2, 0, 3)
        t_model = make_plan(dims, perm).simulated_time()
        t_oracle = make_plan(dims, perm, predictor=ORACLE).simulated_time()
        assert t_model <= 1.25 * t_oracle

    def test_coarsening_consistent_with_kernel(self):
        """When the planner records a coarsening, the kernel must carry
        it; when the model rejects it, none is recorded."""
        plan = make_plan((16,) * 6, (4, 1, 2, 5, 3, 0), predictor=ORACLE)
        kernel_coarsen = getattr(plan.kernel, "coarsen", None)
        assert plan.coarsening == kernel_coarsen

    def test_coarsening_mechanism(self, rng):
        """Sec. IV-A applied explicitly: same traffic, fewer blocks,
        fewer mod/div special instructions, identical data movement."""
        from repro.core.layout import TensorLayout as TL
        from repro.kernels.orthogonal_arbitrary import (
            OrthogonalArbitraryKernel,
        )

        dims, perm = (16, 8, 16, 16, 16), (2, 1, 4, 3, 0)
        base = OrthogonalArbitraryKernel(
            TL(dims), Permutation(perm), 2, 1, 2, 1
        )
        outer = base.coverage.outer_dims()
        c_dim = outer[0]
        coarse = OrthogonalArbitraryKernel(
            TL(dims), Permutation(perm), 2, 1, 2, 1,
            coarsen=(c_dim, dims[c_dim]),
        )
        cb, cc = base.counters(), coarse.counters()
        assert cc.dram_tx == cb.dram_tx
        assert cc.special_ops < cb.special_ops
        assert (
            coarse.launch_geometry.num_blocks
            < base.launch_geometry.num_blocks
        )
        src = rng.standard_normal(base.volume)
        np.testing.assert_array_equal(coarse.execute(src), base.execute(src))

    def test_coarsening_invalid_dim_rejected(self):
        from repro.core.layout import TensorLayout as TL
        from repro.errors import SchemaError
        from repro.kernels.orthogonal_arbitrary import (
            OrthogonalArbitraryKernel,
        )

        with pytest.raises(SchemaError):
            OrthogonalArbitraryKernel(
                TL((16, 8, 16)), Permutation((2, 1, 0)), 1, 1, 1, 1,
                coarsen=(0, 4),  # dim 0 is inside the slice
            )

    def test_no_coarsening_small_tensor(self):
        plan = make_plan((8, 8, 8), (1, 2, 0), predictor=ORACLE)
        assert plan.coarsening is None

    def test_bandwidth_amortization(self):
        plan = make_plan((16,) * 6, (5, 4, 3, 2, 1, 0), predictor=ORACLE)
        bw1 = plan.bandwidth_gbps(repeats=1, include_plan=True)
        bw64 = plan.bandwidth_gbps(repeats=64, include_plan=True)
        bw_inf = plan.bandwidth_gbps(repeats=1, include_plan=False)
        assert bw1 < bw64 <= bw_inf * 1.001


class TestAxesConversion:
    @pytest.mark.parametrize(
        "axes", [(1, 0), (2, 0, 1), (0, 2, 1), (3, 1, 0, 2)]
    )
    def test_roundtrip(self, axes):
        assert perm_to_axes(axes_to_perm(axes)) == tuple(axes)

    def test_transpose_matches_numpy(self, rng):
        """The conversion must make repro.transpose == np.transpose."""
        a = rng.standard_normal((3, 4, 5, 2))
        for axes in [(2, 0, 3, 1), (3, 2, 1, 0), (0, 1, 2, 3)]:
            np.testing.assert_array_equal(
                repro.transpose(a, axes), np.transpose(a, axes)
            )


class TestPublicApi:
    def test_transpose_2d(self, rng):
        a = rng.standard_normal((40, 50))
        np.testing.assert_array_equal(repro.transpose(a, (1, 0)), a.T)

    def test_transpose_float32(self, rng):
        a = rng.standard_normal((6, 7, 8)).astype(np.float32)
        np.testing.assert_array_equal(
            repro.transpose(a, (1, 2, 0)), np.transpose(a, (1, 2, 0))
        )

    def test_transpose_rejects_unsupported_dtype(self):
        a = np.zeros((4, 4), dtype=np.int16)
        with pytest.raises(InvalidLayoutError):
            repro.transpose(a, (1, 0))

    def test_transpose_rejects_bad_axes(self):
        with pytest.raises(InvalidLayoutError):
            repro.transpose(np.zeros((4, 4)), (1, 0, 2))

    def test_transposer_repeated_use(self, rng):
        t = repro.Transposer((8, 9, 10), (2, 1, 0))
        src = rng.standard_normal(720)
        out1 = t(src)
        out2 = t(src)
        np.testing.assert_array_equal(out1, out2)
        assert t.calls == 2

    def test_transposer_estimate(self):
        t = repro.Transposer((16,) * 5, (4, 3, 2, 1, 0))
        est = t.estimate()
        assert est.kernel_time > 0
        assert est.plan_time > 0
        assert est.single_use_time == est.kernel_time + est.plan_time
        assert est.bandwidth_gbps > 0

    def test_predict_time_interface(self):
        est = repro.predict_time((16,) * 6, (5, 4, 3, 2, 1, 0))
        assert est.schema in tuple(Schema)
        assert est.num_candidates >= 1

    def test_predict_time_invalid_perm(self):
        with pytest.raises(InvalidPermutationError):
            repro.predict_time((4, 4), (0, 0))

    def test_dunder_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestTransposeMany:
    def test_batch_matches_numpy(self, rng):
        import repro

        batch = [rng.standard_normal((3, 4, 5)) for _ in range(4)]
        outs = repro.transpose_many(batch, (1, 2, 0))
        for a, b in zip(batch, outs):
            np.testing.assert_array_equal(b, np.transpose(a, (1, 2, 0)))

    def test_empty_batch(self):
        import repro

        assert repro.transpose_many([], (1, 0)) == []

    def test_heterogeneous_batch_rejected(self, rng):
        import repro

        batch = [rng.standard_normal((3, 4)), rng.standard_normal((4, 3))]
        with pytest.raises(InvalidLayoutError):
            repro.transpose_many(batch, (1, 0))

    def test_dtype_mismatch_rejected(self, rng):
        import repro

        batch = [
            rng.standard_normal((3, 4)),
            rng.standard_normal((3, 4)).astype(np.float32),
        ]
        with pytest.raises(InvalidLayoutError):
            repro.transpose_many(batch, (1, 0))

    def test_axes_rank_mismatch(self, rng):
        import repro

        with pytest.raises(InvalidLayoutError):
            repro.transpose_many([rng.standard_normal((3, 4))], (1, 0, 2))


class TestOutValidation:
    """Every public ``out=`` fails fast with InvalidLayoutError —
    before any planning or execution — on a buffer that could not
    receive the result in place."""

    def test_transpose_out_happy_path(self, rng):
        a = rng.standard_normal((6, 7, 8))
        out = np.empty((7, 8, 6))
        result = repro.transpose(a, (1, 2, 0), out=out)
        assert result is out
        np.testing.assert_array_equal(out, np.transpose(a, (1, 2, 0)))

    def test_transpose_out_not_an_array(self, rng):
        a = rng.standard_normal((4, 4))
        with pytest.raises(InvalidLayoutError, match="numpy array"):
            repro.transpose(a, (1, 0), out=[0.0] * 16)

    def test_transpose_out_wrong_shape(self, rng):
        a = rng.standard_normal((4, 6))
        with pytest.raises(InvalidLayoutError, match="shape"):
            repro.transpose(a, (1, 0), out=np.empty((4, 6)))

    def test_transpose_out_wrong_dtype(self, rng):
        a = rng.standard_normal((4, 6))
        with pytest.raises(InvalidLayoutError, match="dtype"):
            repro.transpose(a, (1, 0), out=np.empty((6, 4), dtype=np.float32))

    def test_transpose_out_not_contiguous(self, rng):
        a = rng.standard_normal((8, 8))
        with pytest.raises(InvalidLayoutError, match="contiguous"):
            repro.transpose(a, (1, 0), out=np.empty((8, 16))[:, ::2])

    def test_transpose_out_read_only(self, rng):
        a = rng.standard_normal((4, 4))
        out = np.empty((4, 4))
        out.flags.writeable = False
        with pytest.raises(InvalidLayoutError, match="read-only"):
            repro.transpose(a, (1, 0), out=out)

    def test_transposer_out_happy_path(self, rng):
        t = repro.Transposer((8, 9, 10), (2, 1, 0))
        src = rng.standard_normal(720)
        out = np.empty(720)
        result = t(src, out=out)
        assert np.shares_memory(result, out)
        np.testing.assert_array_equal(out, t(src))

    def test_transposer_out_wrong_size(self, rng):
        t = repro.Transposer((8, 9, 10), (2, 1, 0))
        with pytest.raises(InvalidLayoutError, match="elements"):
            t(rng.standard_normal(720), out=np.empty(719))

    def test_transposer_out_wrong_dtype(self, rng):
        t = repro.Transposer((8, 9, 10), (2, 1, 0))
        with pytest.raises(InvalidLayoutError, match="dtype"):
            t(rng.standard_normal(720), out=np.empty(720, dtype=np.float32))
