"""Occupancy and wave/tail modeling.

Occupancy — how many thread blocks (and hence warps) can be resident on
one SM — determines how much memory-level parallelism a launch exposes.
The paper leans on this twice: Alg. 3 caps slice volume so that the block
count stays high ("overbooking factor"), and the coarsening heuristic
(Sec. IV-A) refuses to coarsen small tensors to avoid tail effects.  The
cost model consumes :class:`Occupancy` to derate achievable bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.counters import LaunchGeometry
from repro.gpusim.spec import DeviceSpec


@dataclass(frozen=True)
class Occupancy:
    """Residency of a kernel launch on the simulated device."""

    blocks_per_sm: int
    resident_warps_per_sm: int
    #: Fraction of the SM's maximum resident warps in use.
    occupancy: float
    #: Number of sequential "waves" of thread blocks.
    waves: int
    #: Fraction of block slots doing work in the *last* wave.
    tail_utilization: float

    @property
    def wave_efficiency(self) -> float:
        """Average block-slot utilization across all waves.

        1.0 when the grid divides evenly into waves; approaches
        ``1 / waves``-discounted values for multi-wave grids with a nearly
        idle final wave.  Single-wave launches return 1.0 — their
        underutilization is a *parallelism* (bandwidth-saturation) effect
        that the cost model handles separately, not a tail effect.
        """
        if self.waves <= 1:
            return 1.0
        return (self.waves - 1 + self.tail_utilization) / self.waves


def blocks_per_sm_limit(spec: DeviceSpec, geom: LaunchGeometry) -> int:
    """Resident blocks per SM allowed by threads, smem, and block limits."""
    by_threads = spec.max_threads_per_sm // geom.threads_per_block
    if geom.shared_mem_per_block > 0:
        by_smem = spec.shared_mem_per_sm // geom.shared_mem_per_block
    else:
        by_smem = spec.max_blocks_per_sm
    by_regs = spec.max_registers_per_sm // max(
        geom.registers_per_thread * geom.threads_per_block, 1
    )
    return max(0, min(by_threads, by_smem, by_regs, spec.max_blocks_per_sm))


def occupancy_for(spec: DeviceSpec, geom: LaunchGeometry) -> Occupancy:
    """Compute :class:`Occupancy` for a launch on ``spec``.

    Raises
    ------
    ValueError
        If the block cannot run at all (e.g. requests more shared memory
        or threads than one SM provides).
    """
    if geom.threads_per_block > spec.max_threads_per_block:
        raise ValueError(
            f"block of {geom.threads_per_block} threads exceeds device limit "
            f"{spec.max_threads_per_block}"
        )
    if geom.shared_mem_per_block > spec.shared_mem_per_sm:
        raise ValueError(
            f"block requests {geom.shared_mem_per_block} B shared memory, "
            f"SM has {spec.shared_mem_per_sm} B"
        )
    bps = blocks_per_sm_limit(spec, geom)
    if bps == 0:
        raise ValueError("kernel cannot be resident on any SM")
    warps_per_block = geom.warps_per_block(spec.warp_size)
    resident_warps = min(bps * warps_per_block, spec.max_warps_per_sm)
    occ = resident_warps / spec.max_warps_per_sm

    slots = bps * spec.num_sms
    if geom.num_blocks == 0:
        waves, tail = 0, 1.0
    else:
        waves = -(-geom.num_blocks // slots)
        in_last_wave = geom.num_blocks - (waves - 1) * slots
        tail = in_last_wave / slots
    return Occupancy(
        blocks_per_sm=bps,
        resident_warps_per_sm=resident_warps,
        occupancy=occ,
        waves=waves,
        tail_utilization=tail,
    )
