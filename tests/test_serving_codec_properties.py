"""Property-based round-trip tests for the zero-copy wire codec.

Hypothesis drives ndarrays through every layout the serving data path
has to survive — non-contiguous slices, read-only buffers, zero-size
and 0-d arrays, non-native-endian dtypes — over **both** codec paths:

* the copying baseline (``encode`` -> ``decode``), and
* the zero-copy parts path (``encode_parts`` -> ``decode`` with a
  ``buffer_factory``), which the wire transport runs in production.

The invariants: both paths produce byte-identical wire frames, both
decodes are bit-exact against the source, and the ``CodecStats``
buckets attribute every tensor byte to the right side of the
copied/zero-copy ledger.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.serving.codec import (
    CodecStats,
    decode,
    decode_frame,
    encode,
    encode_parts,
    pack_frame,
    pack_frame_parts,
)

#: Every width/endianness class the serving protocol carries: native
#: and byte-swapped floats and ints, plus single-byte (order-free).
DTYPES = ("<f8", ">f8", "<f4", ">f4", "<i4", ">i4", "<i2", "|u1")


@st.composite
def ndarrays(draw) -> np.ndarray:
    """Small arrays spanning the codec's layout edge cases.

    Values are small integers, exact in every sampled dtype, so
    bit-exactness assertions never trip over rounding.
    """
    dtype = np.dtype(draw(st.sampled_from(DTYPES)))
    shape = tuple(draw(st.lists(st.integers(0, 4), max_size=3)))
    count = int(np.prod(shape, dtype=np.int64))
    base = (np.arange(max(count, 1), dtype=np.int64) % 120)[:count]
    arr = base.reshape(shape).astype(dtype)
    variant = draw(
        st.sampled_from(("contiguous", "sliced", "readonly", "fortran"))
    )
    if variant == "sliced" and arr.ndim >= 1:
        # A strided view equal to `arr` but (usually) non-contiguous.
        arr = np.repeat(arr, 2, axis=0)[::2]
    elif variant == "readonly":
        arr = arr.copy()
        arr.setflags(write=False)
    elif variant == "fortran":
        arr = np.asfortranarray(arr)
    return arr


def _assert_bit_exact(got: np.ndarray, want: np.ndarray) -> None:
    assert isinstance(got, np.ndarray)
    assert got.dtype == want.dtype
    assert got.shape == want.shape
    assert got.tobytes() == want.tobytes()


def _join_parts(parts) -> bytes:
    return b"".join(bytes(p) for p in parts)


class TestNdarrayRoundtrip:
    @given(arr=ndarrays())
    @settings(max_examples=80, deadline=None)
    def test_copying_path(self, arr):
        _assert_bit_exact(decode(encode(arr)), arr)

    @given(arr=ndarrays())
    @settings(max_examples=80, deadline=None)
    def test_zero_copy_path(self, arr):
        landed = []

        def factory(shape, dtype):
            dest = np.empty(shape, dtype=dtype)
            landed.append(dest)
            return dest

        back = decode(_join_parts(encode_parts(arr)), buffer_factory=factory)
        _assert_bit_exact(back, arr)
        # The decoded array IS the factory's storage, not a copy of it.
        assert len(landed) == 1 and back is landed[0]

    @given(arr=ndarrays())
    @settings(max_examples=80, deadline=None)
    def test_paths_produce_identical_wire_bytes(self, arr):
        assert _join_parts(encode_parts(arr)) == encode(arr)
        assert _join_parts(pack_frame_parts(arr)) == pack_frame(arr)

    @given(arr=ndarrays())
    @settings(max_examples=80, deadline=None)
    def test_both_decodes_agree(self, arr):
        body = encode(arr)
        plain = decode(body)
        factored = decode(
            body, buffer_factory=lambda s, d: np.empty(s, dtype=d)
        )
        _assert_bit_exact(factored, plain)


class TestCodecStats:
    @given(arr=ndarrays())
    @settings(max_examples=80, deadline=None)
    def test_encode_parts_buckets(self, arr):
        stats = CodecStats()
        encode_parts(arr, stats=stats)
        if arr.flags.c_contiguous:
            # Views straight over the source array: nothing copied,
            # even read-only / non-native-endian / 0-d sources.
            assert stats.tensor_bytes_copied == 0
            assert stats.tensor_bytes_zero_copy == arr.nbytes
        else:
            # The one unavoidable copy: compaction of a strided source.
            assert stats.tensor_bytes_copied == arr.nbytes
            assert stats.tensor_bytes_zero_copy == 0

    @given(arr=ndarrays())
    @settings(max_examples=40, deadline=None)
    def test_decode_buckets(self, arr):
        body = encode(arr)
        copying = CodecStats()
        decode(body, stats=copying)
        assert copying.tensor_bytes_copied == arr.nbytes
        assert copying.tensor_bytes_zero_copy == 0
        landing = CodecStats()
        decode(
            body,
            buffer_factory=lambda s, d: np.empty(s, dtype=d),
            stats=landing,
        )
        assert landing.tensor_bytes_copied == 0
        assert landing.tensor_bytes_zero_copy == arr.nbytes


#: Scalars with exact wire representations (i64 / f64 / utf-8 / raw).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**60), 2**60),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
    st.binary(max_size=12),
)

#: Request-shaped messages: flat fields plus tensor payloads, like the
#: serving protocol's execute frames.
_messages = st.dictionaries(
    st.text(max_size=6),
    st.one_of(_scalars, st.lists(_scalars, max_size=3), ndarrays()),
    max_size=4,
)


def _assert_equal_tree(got, want) -> None:
    if isinstance(want, np.ndarray):
        _assert_bit_exact(got, want)
    elif isinstance(want, dict):
        assert isinstance(got, dict) and got.keys() == want.keys()
        for key in want:
            _assert_equal_tree(got[key], want[key])
    elif isinstance(want, list):
        assert isinstance(got, list) and len(got) == len(want)
        for g, w in zip(got, want):
            _assert_equal_tree(g, w)
    else:
        assert got == want and type(got) is type(want)


class TestMessageRoundtrip:
    @given(msg=_messages)
    @settings(max_examples=50, deadline=None)
    def test_frame_parity_and_both_decodes(self, msg):
        frame = pack_frame(msg)
        assert _join_parts(pack_frame_parts(msg)) == frame
        _assert_equal_tree(decode_frame(frame), msg)
        factored = decode(
            frame[4:], buffer_factory=lambda s, d: np.empty(s, dtype=d)
        )
        _assert_equal_tree(factored, msg)
