"""The four TTLG transposition kernels (Algs. 2, 5, 6, 7) plus the naive
d-nested-loop strawman, all implemented against the gpusim substrate."""

from repro.kernels.base import TransposeKernel
from repro.kernels.fvi_match_large import FviMatchLargeKernel
from repro.kernels.fvi_match_small import FviMatchSmallKernel
from repro.kernels.naive import NaiveKernel
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel

__all__ = [
    "TransposeKernel",
    "FviMatchLargeKernel",
    "FviMatchSmallKernel",
    "OrthogonalDistinctKernel",
    "OrthogonalArbitraryKernel",
    "NaiveKernel",
]
