"""Concurrency and scheduling tests for the transpose-serving runtime."""

import threading

import numpy as np
import pytest

import repro.core.cache as cache_mod
from repro.core.api import transpose as api_transpose
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100
from repro.model.pretrained import oracle_predictor
from repro.runtime import (
    SingleFlight,
    StreamScheduler,
    TransposeService,
    get_default_service,
    set_default_service,
)

ORACLE = oracle_predictor()

PROBLEMS = [
    ((8, 8, 8), (2, 1, 0)),
    ((16, 4, 8), (1, 2, 0)),
    ((8, 8, 8, 8), (0, 3, 1, 2)),
]


class TestExactlyOncePlanning:
    def test_hammer_overlapping_keys(self, monkeypatch):
        """8 threads x overlapping keys -> one make_plan call per key."""
        builds = []
        build_lock = threading.Lock()
        real_make_plan = cache_mod.make_plan

        def counting_make_plan(dims, perm, *args, **kwargs):
            with build_lock:
                builds.append((tuple(dims), tuple(perm)))
            return real_make_plan(dims, perm, *args, **kwargs)

        monkeypatch.setattr(cache_mod, "make_plan", counting_make_plan)

        n_threads, rounds = 8, 5
        service = TransposeService(predictor=ORACLE, num_streams=2)
        barrier = threading.Barrier(n_threads)
        failures = []

        def client():
            try:
                barrier.wait()
                for _ in range(rounds):
                    for dims, perm in PROBLEMS:
                        service.plan(dims, perm)
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [threading.Thread(target=client) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.close()

        assert not failures
        # Exactly-once construction per distinct key.
        assert sorted(set(builds)) == sorted(PROBLEMS)
        assert len(builds) == len(PROBLEMS)
        counters = service.metrics.snapshot()["counters"]
        assert counters["plans_built"] == len(PROBLEMS)
        assert counters["cache_misses"] == len(PROBLEMS)
        expected = n_threads * rounds * len(PROBLEMS)
        assert counters["plan_requests"] == expected
        assert counters["cache_hits"] + counters["cache_misses"] + counters.get(
            "requests_coalesced", 0
        ) == expected

    def test_single_flight_leader_failure_propagates_then_retries(self):
        flight = SingleFlight()
        calls = []

        def boom():
            calls.append("boom")
            raise RuntimeError("planning failed")

        with pytest.raises(RuntimeError):
            flight.do("k", boom)
        # The flight retired: a later call retries instead of caching the error.
        value, leader = flight.do("k", lambda: 42)
        assert (value, leader) == (42, True)
        assert flight.in_flight() == 0


class TestScheduler:
    def test_outputs_match_numpy_across_streams(self):
        service = TransposeService(predictor=ORACLE, num_streams=3)
        rng = np.random.default_rng(0)
        arrays = [
            rng.random((4, 6, 8)),
            rng.random((8, 3, 5)),
            rng.random((2, 7, 9)),
        ]
        futures, expected = [], []
        for a in arrays:
            for axes in [(2, 0, 1), (1, 2, 0), (2, 1, 0)]:
                dims = a.shape[::-1]
                from repro.core.api import axes_to_perm

                futures.append(
                    service.submit(
                        dims, axes_to_perm(axes), 8, payload=a.reshape(-1)
                    )
                )
                expected.append(np.transpose(a, axes).reshape(-1))
        for fut, want in zip(futures, expected):
            report = fut.result(timeout=60)
            assert np.array_equal(report.output, want)
            assert report.sim_time_s > 0
            assert 0 <= report.stream < 3
        snap = service.scheduler.snapshot()
        assert sum(snap["jobs_done"]) == len(futures)
        assert sum(snap["sim_clock_s"]) > 0
        service.close()

    def test_timing_only_jobs_advance_sim_clocks(self):
        service = TransposeService(predictor=ORACLE, num_streams=2)
        for _ in range(4):
            report = service.execute((8, 8, 8), (2, 1, 0))
            assert report.output is None
            assert report.sim_time_s > 0
        counters = service.metrics.snapshot()["counters"]
        assert counters["executions_completed"] == 4
        hists = service.metrics.snapshot()["histograms"]
        schema = service.plan((8, 8, 8), (2, 1, 0)).schema.value
        assert hists[f"sim_s.{schema}"]["count"] == 4
        assert hists[f"wall_s.{schema}"]["count"] == 4
        service.close()

    def test_multi_device_streams(self):
        scheduler = StreamScheduler(
            num_streams=2, devices=[KEPLER_K40C, PASCAL_P100]
        )
        assert scheduler.snapshot()["devices"] == [
            KEPLER_K40C.name,
            PASCAL_P100.name,
        ]
        scheduler.shutdown()

    def test_submit_after_shutdown_raises(self):
        service = TransposeService(predictor=ORACLE, num_streams=1)
        service.close()
        with pytest.raises(RuntimeError):
            service.plan((8, 8), (1, 0))

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            StreamScheduler(num_streams=0)


class TestServiceApi:
    def test_transpose_matches_numpy(self):
        with TransposeService(predictor=ORACLE, num_streams=2) as service:
            a = np.arange(4 * 5 * 6, dtype=np.float64).reshape(4, 5, 6)
            out = service.transpose(a, (2, 0, 1))
            assert np.array_equal(out, np.transpose(a, (2, 0, 1)))

    def test_stats_shape(self):
        with TransposeService(predictor=ORACLE, num_streams=2) as service:
            service.execute((8, 8, 8), (2, 1, 0))
            stats = service.stats()
        assert stats["cache"]["misses"] == 1
        assert stats["scheduler"]["num_streams"] == 2
        assert stats["store"] is None
        assert stats["metrics"]["counters"]["plans_built"] == 1

    def test_store_and_store_path_conflict(self, tmp_path):
        from repro.runtime import PlanStore

        store = PlanStore(tmp_path / "a.json")
        with pytest.raises(ValueError):
            TransposeService(store=store, store_path=tmp_path / "b.json")

    def test_default_service_routes_api(self):
        service = TransposeService(predictor=ORACLE, num_streams=2)
        previous = set_default_service(service)
        try:
            a = np.arange(3 * 4 * 5, dtype=np.float64).reshape(3, 4, 5)
            out = api_transpose(a, (2, 0, 1))
            assert np.array_equal(out, np.transpose(a, (2, 0, 1)))
            counters = service.metrics.snapshot()["counters"]
            assert counters["plan_requests"] == 1
            # Explicit predictors bypass the shared service.
            api_transpose(a, (1, 0, 2), predictor=ORACLE)
            assert service.metrics.counter("plan_requests") == 1
        finally:
            set_default_service(previous)
            service.close()
        assert get_default_service() is previous


class TestPayloadValidation:
    def test_submit_rejects_wrong_element_count(self):
        from repro.errors import InvalidLayoutError

        with TransposeService(predictor=ORACLE, num_streams=1) as service:
            with pytest.raises(InvalidLayoutError, match="60"):
                service.submit((4, 3, 5), (2, 0, 1), payload=np.zeros(59))

    def test_submit_rejects_dtype_disagreement(self):
        from repro.errors import InvalidLayoutError

        with TransposeService(predictor=ORACLE, num_streams=1) as service:
            with pytest.raises(InvalidLayoutError, match="elem_bytes"):
                service.submit(
                    (4, 3, 5), (2, 0, 1),
                    payload=np.zeros(60, dtype=np.float32),
                )
            # Matching elem_bytes passes.
            service.execute(
                (4, 3, 5), (2, 0, 1), elem_bytes=4,
                payload=np.zeros(60, dtype=np.float32),
            )

    def test_partitioned_rejects_bad_payload_before_scheduling(self):
        from repro.errors import InvalidLayoutError

        with TransposeService(predictor=ORACLE, num_streams=1) as service:
            with pytest.raises(InvalidLayoutError):
                service.submit_partitioned((4, 4), (1, 0), payload=np.zeros(15))
            assert service.metrics.counter("executions_submitted") == 0


class TestOutParameter:
    """``out=``: the transpose lands in caller-provided storage (how the
    zero-copy serving path points execution at an arena lease)."""

    def test_out_receives_transpose_and_is_the_report_output(self):
        rng = np.random.default_rng(21)
        dims, perm = (4, 5, 6), (2, 0, 1)
        src = rng.standard_normal(int(np.prod(dims)))
        dest = np.empty_like(src)
        with TransposeService(predictor=ORACLE, num_streams=1) as service:
            expected = np.asarray(
                service.execute(dims, perm, payload=src).output
            ).copy()
            report = service.submit(dims, perm, payload=src, out=dest).result(
                timeout=60
            )
        np.testing.assert_array_equal(dest, expected)
        # No arena block is leased: the report's output is a view over
        # the caller's buffer, not a fresh allocation.
        assert np.shares_memory(np.asarray(report.output), dest)
        report.release()  # a no-op for caller-owned storage
        np.testing.assert_array_equal(dest, expected)

    def test_out_without_payload_rejected(self):
        from repro.errors import InvalidLayoutError

        with TransposeService(predictor=ORACLE, num_streams=1) as service:
            with pytest.raises(InvalidLayoutError, match="payload"):
                service.submit((4, 3, 5), (2, 0, 1), out=np.zeros(60))

    def test_out_wrong_volume_rejected(self):
        from repro.errors import InvalidLayoutError

        with TransposeService(predictor=ORACLE, num_streams=1) as service:
            with pytest.raises(InvalidLayoutError):
                service.submit(
                    (4, 3, 5), (2, 0, 1),
                    payload=np.zeros(60), out=np.zeros(59),
                )


class TestBatchedService:
    def test_batched_outputs_match_single_requests(self):
        rng = np.random.default_rng(7)
        dims, perm = (6, 5, 7), (2, 0, 1)
        srcs = [rng.standard_normal(210) for _ in range(4)]
        with TransposeService(
            predictor=ORACLE, num_streams=2,
            batch_window_s=30.0, batch_max=4,
        ) as service:
            refs = [service.execute(dims, perm, payload=s).output for s in srcs]
            futs = [service.submit_batched(dims, perm, payload=s) for s in srcs]
            reports = [f.result(timeout=30) for f in futs]
            for report, ref in zip(reports, refs):
                assert report.batch == 4
                np.testing.assert_array_equal(report.output, ref)

    def test_batched_requires_payload(self):
        from repro.errors import InvalidLayoutError

        with TransposeService(predictor=ORACLE, num_streams=1) as service:
            with pytest.raises(InvalidLayoutError):
                service.submit_batched((4, 4), (1, 0), payload=None)

    def test_distinct_problems_do_not_coalesce(self):
        rng = np.random.default_rng(8)
        with TransposeService(
            predictor=ORACLE, num_streams=2,
            batch_window_s=0.02, batch_max=64,
        ) as service:
            f1 = service.submit_batched(
                (4, 3, 5), (2, 0, 1), payload=rng.standard_normal(60)
            )
            f2 = service.submit_batched(
                (5, 4, 3), (1, 2, 0), payload=rng.standard_normal(60)
            )
            r1, r2 = f1.result(timeout=30), f2.result(timeout=30)
            assert r1.batch == 1 and r2.batch == 1
            assert service.metrics.counter("batch_flushes") == 2
            assert service.metrics.counter("batch_coalesced") == 0

    def test_close_drains_open_batch_window(self):
        rng = np.random.default_rng(9)
        service = TransposeService(
            predictor=ORACLE, num_streams=2,
            batch_window_s=30.0, batch_max=64,
        )
        fut = service.submit_batched(
            (4, 3, 5), (2, 0, 1), payload=rng.standard_normal(60)
        )
        service.close()  # window never expired; close flushes it
        assert fut.result(timeout=30).batch == 1


class TestAutoPartitioner:
    def test_auto_parts_match_unpartitioned_output(self):
        rng = np.random.default_rng(10)
        dims, perm = (20, 6, 18), (2, 1, 0)
        src = rng.standard_normal(int(np.prod(dims)))
        with TransposeService(predictor=ORACLE, num_streams=3) as service:
            ref = service.execute(dims, perm, payload=src).output
            # Drive the same cell repeatedly: exploration visits every
            # candidate, then exploitation settles on the winner —
            # outputs stay bit-identical throughout.
            seen_parts = set()
            for _ in range(8):
                report = service.execute_partitioned(dims, perm, payload=src)
                seen_parts.add(report.parts)
                np.testing.assert_array_equal(report.output, ref)
            table = service.stats()["autotune"]
            assert table["cells"]  # calibration recorded
        assert seen_parts  # parts chosen by the tuner, not the caller

    def test_explicit_parts_still_honored(self):
        rng = np.random.default_rng(11)
        dims, perm = (20, 6, 18), (2, 1, 0)
        src = rng.standard_normal(int(np.prod(dims)))
        with TransposeService(predictor=ORACLE, num_streams=4) as service:
            report = service.execute_partitioned(
                dims, perm, payload=src, parts=3
            )
            assert report.parts == 3

    def test_calibration_persists_next_to_plan_store(self, tmp_path):
        rng = np.random.default_rng(12)
        dims, perm = (8, 8, 8), (2, 1, 0)
        src = rng.standard_normal(512)
        service = TransposeService(
            predictor=ORACLE, num_streams=2,
            store_path=tmp_path / "plans.json",
        )
        service.execute_partitioned(dims, perm, payload=src)
        service.close()
        assert (tmp_path / "autotune.json").exists()
        reborn = TransposeService(
            predictor=ORACLE, num_streams=2,
            store_path=tmp_path / "plans.json",
        )
        try:
            assert reborn.stats()["autotune"]["cells"]
        finally:
            reborn.close()
