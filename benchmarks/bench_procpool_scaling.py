"""Process-pool scaling: the out-of-GIL tier vs the thread pool.

Large indexed/chunked programs (forced with ``lowering=False``) move
every element through NumPy fancy gather/scatter, which holds the GIL —
on the thread pool their partition tasks serialize no matter how many
streams exist.  The shared-memory process pool exists for exactly this
regime: workers map the operand/output segments by name and scatter
concurrently, with only control metadata crossing the pipes.

Three sections per case:

**backends** — the same transposition through the thread pool and the
process pool (both via the partitioned path, bit-exactness asserted
before timing).  The ``>= MIN_PROC_SPEEDUP`` acceptance gate applies
only on hosts with at least ``MIN_GATE_CPUS`` cores — one worker per
core is the whole mechanism, so a 1-2 core runner measures nothing but
dispatch overhead; ``cpus`` is recorded so committed results are
interpretable.

**arena** — after warm-up, a burst of further runs must allocate ZERO
new arena blocks (the ``allocations`` counter is asserted frozen): the
warm serving path leases every output from the free lists.

**auto** — the calibrated router (``backend="auto"``) is timed against
both fixed backends after feeding the calibrator; auto must never be
slower than ``MAX_AUTO_RATIO`` x the better fixed backend (it is
allowed to *be* the better backend, not to lose to it).

Run directly::

    PYTHONPATH=src python benchmarks/bench_procpool_scaling.py

writes ``results/procpool_scaling.json``.  CI runs ``--smoke``: smaller
operands (still above the process-routing floor), fewer repeats, gates
only on what a shared 1-2 core runner can measure deterministically
(parity, arena reuse, routing sanity).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import numpy as np

from conftest import bench_parser, env_stamp, gate, interleaved_ms, pick_repeats
from repro.core.plan import make_plan
from repro.kernels.common import reference_transpose
from repro.runtime.autotune import ThroughputCalibrator
from repro.runtime.scheduler import PROC_MIN_BYTES, StreamScheduler

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "results" / "procpool_scaling.json"
)

#: name -> (full dims, smoke dims, perm).  All f64; the full cases are
#: >= 64 MiB, the smoke cases ~8 MiB (still > PROC_MIN_BYTES so the
#: router actually sends them to the pool).
CASES = {
    "od-reverse-64MiB": (
        (128, 64, 32, 32),
        (64, 32, 16, 16),
        (3, 2, 1, 0),
    ),
    "oa-partial-64MiB": (
        (32, 64, 64, 64),
        (16, 32, 32, 32),
        (1, 0, 3, 2),
    ),
}

#: Process-over-thread acceptance (full mode, >= MIN_GATE_CPUS cores).
MIN_PROC_SPEEDUP = 2.0
MIN_GATE_CPUS = 4

#: Auto routing may not lose to the better fixed backend by more than
#: this factor.
MAX_AUTO_RATIO = 1.1

#: Warm-path burst length for the zero-allocation assertion.
ARENA_BURST = 4


def bench_case(name, dims, perm, repeats, workers, streams=4):
    tuner = ThroughputCalibrator(
        pool_size=streams, backends=("thread", "process")
    )
    sched = StreamScheduler(
        num_streams=streams,
        tuner=tuner,
        backend="auto",
        proc_workers=workers,
    )
    try:
        plan = make_plan(dims, perm)
        volume = plan.layout.volume
        src = np.random.default_rng(3).standard_normal(volume)
        nbytes = src.nbytes
        assert nbytes >= PROC_MIN_BYTES, (
            f"{name}: {nbytes} B payload is below the process-routing "
            f"floor; the case would silently measure threads twice"
        )

        def run(backend=None, parts=None):
            report = sched.submit_partitioned(
                plan, src, parts=parts, backend=backend, lowering=False
            ).result()
            report.release()
            return report

        # Parity first: both backends must produce the reference bits.
        ref = reference_transpose(src, plan.layout, plan.perm)
        for backend in ("thread", "process"):
            report = sched.submit_partitioned(
                plan, src, backend=backend, lowering=False
            ).result()
            assert report.backend == backend, (
                f"{name}: requested {backend}, routed to {report.backend}"
            )
            assert np.array_equal(report.output, ref), (
                f"{name}: {backend} backend output mismatch"
            )
            report.release()
        from repro.kernels.executor import executor_for

        program_kind = executor_for(plan.kernel, lowering=False).kind
        assert program_kind in ("indexed", "chunked"), program_kind

        # Calibrate every (backend, parts) cell so the auto phase
        # exploits measurements instead of exploring.
        for backend in ("thread", "process"):
            for p in tuner.candidates:
                for _ in range(tuner.min_samples):
                    run(backend=backend, parts=p)

        # Zero-allocation warm path: the burst must reuse pooled blocks.
        before = sched.arena.stats()["allocations"]
        for backend in ("thread", "process"):
            for _ in range(ARENA_BURST):
                run(backend=backend)
        arena_after = sched.arena.stats()
        new_allocations = arena_after["allocations"] - before

        timed = interleaved_ms(
            {
                "thread": lambda: run(backend="thread"),
                "process": lambda: run(backend="process"),
                "auto": lambda: run(),
            },
            repeats,
        )
        thread_ms, _ = timed["thread"]
        proc_ms, _ = timed["process"]
        auto_ms, _ = timed["auto"]
        best_fixed_ms = min(thread_ms, proc_ms)
        pool_stats = sched.procpool.stats() if sched.procpool else {}
        return {
            "dims": list(dims),
            "perm": list(perm),
            "schema": plan.schema.value,
            "program": program_kind,
            "payload_mib": round(nbytes / (1 << 20), 1),
            "workers": workers,
            "thread_ms": round(thread_ms, 3),
            "process_ms": round(proc_ms, 3),
            "auto_ms": round(auto_ms, 3),
            "process_speedup": round(thread_ms / proc_ms, 3),
            "auto_vs_best_ratio": round(auto_ms / best_fixed_ms, 3),
            "arena_new_allocations_warm": new_allocations,
            "arena_reuses": arena_after["reuses"],
            "procpool_program_hits": pool_stats.get("program_hits", 0),
            "procpool_pipe_rehydrations": pool_stats.get(
                "pipe_rehydrations", 0
            ),
        }
    finally:
        sched.close()


def main(argv=None):
    ap = bench_parser(__doc__.splitlines()[0])
    ap.add_argument("--workers", type=int, default=None)
    ap.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = ap.parse_args(argv)

    cpus = os.cpu_count() or 1
    repeats = pick_repeats(args, full=7, smoke=2)
    workers = args.workers if args.workers is not None else min(cpus, 8)

    results = {}
    for name, (full_dims, smoke_dims, perm) in CASES.items():
        dims = smoke_dims if args.smoke else full_dims
        results[name] = bench_case(name, dims, perm, repeats, workers)

    print(
        f"{'case':<20s} {'prog':<8s} {'MiB':>6s} {'thread':>9s} "
        f"{'process':>9s} {'auto':>9s} {'speedup':>8s} {'auto/best':>9s}"
    )
    for name, r in results.items():
        print(
            f"{name:<20s} {r['program']:<8s} {r['payload_mib']:>6.1f} "
            f"{r['thread_ms']:>7.2f}ms {r['process_ms']:>7.2f}ms "
            f"{r['auto_ms']:>7.2f}ms {r['process_speedup']:>7.2f}x "
            f"{r['auto_vs_best_ratio']:>9.3f}"
        )

    failures = [
        f"{name}: warm burst allocated {r['arena_new_allocations_warm']} "
        "new arena blocks (expected 0)"
        for name, r in results.items()
        if r["arena_new_allocations_warm"] != 0
    ]

    if args.smoke:
        # Speedup and the auto ratio need real cores and quiet hosts;
        # smoke gates only the deterministic invariants above (parity
        # and routing already asserted inside bench_case).
        return gate("PROCPOOL SCALING REGRESSION", failures, smoke=True)

    speedup_gated = cpus >= MIN_GATE_CPUS
    if speedup_gated:
        failures += [
            f"{name}: process speedup {r['process_speedup']}x < "
            f"{MIN_PROC_SPEEDUP}x over the thread pool"
            for name, r in results.items()
            if r["process_speedup"] < MIN_PROC_SPEEDUP
        ]
    failures += [
        f"{name}: auto {r['auto_vs_best_ratio']}x of the better fixed "
        f"backend (max {MAX_AUTO_RATIO})"
        for name, r in results.items()
        if r["auto_vs_best_ratio"] > MAX_AUTO_RATIO
    ]
    summary = {
        "env": env_stamp(
            speedup_gated,
            "" if speedup_gated else f"fewer than {MIN_GATE_CPUS} cpus",
        ),
        "cpus": cpus,
        "workers": workers,
        "repeats": repeats,
        "speedup_gated": speedup_gated,
        "min_proc_speedup": MIN_PROC_SPEEDUP,
        "max_auto_ratio": MAX_AUTO_RATIO,
        "cases": results,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.out}")
    return gate("ACCEPTANCE THRESHOLDS NOT MET", failures)


if __name__ == "__main__":
    sys.exit(main())
