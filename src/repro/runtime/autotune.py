"""Online throughput calibration for partitioned/batched execution.

``submit_partitioned`` historically required the caller to guess
``parts=`` — how many disjoint tasks to fan one program across the
worker pool.  The right answer depends on the program kind (a view
chain's strided copies release the GIL very differently from a fused
gather), on the problem size (small moves are dominated by task
dispatch, large ones by bandwidth), and on the host — none of which a
caller can know.  cuTT ships heuristics tuned offline for exactly this
choice; here the heuristic is *measured online*: the first runs of each
``(kind, size-class)`` cell round-robin through a small candidate set
of part counts, the observed wall-clock throughput is recorded, and
every later run exploits the measured argmax.

The calibration table persists as JSON next to the plan store
(``autotune.json``), so a restarted process starts exploited, not
exploring — the same across-restart amortization the plan store gives
planning.

With the process-pool execution tier the table gained a **backend
axis**: cells are keyed ``backend:kind|2^cls`` and
:meth:`ThroughputCalibrator.choose_backend` picks between the thread
pool and the process pool for the cells where the router has a real
choice (large indexed/chunked programs — see
:mod:`repro.runtime.procpool`), by the same explore-then-exploit rule
``choose`` uses for ``parts``.

The codegen tier (:mod:`repro.kernels.codegen`) adds a third routable
backend, ``codegen`` — the same thread pool, but running a generated
cache-blocked loop nest instead of the index-map program — and with it
the wrinkle that a backend can turn out not to *exist* for a cell: the
nest search may judge a geometry unprofitable and fall back.  The
scheduler reports that with :meth:`ThroughputCalibrator
.mark_unavailable`, which pins the cell off that backend so
``choose_backend`` never explores it again (otherwise the explore rule
would retry the doomed backend forever).  Unavailability persists with
the measurements.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from threading import Lock
from typing import Dict, List, Optional, Sequence, Set, Union

#: Version 2 added the backend axis to the cell keys; v1 files (no
#: backend prefix) would alias thread and process measurements, so they
#: are discarded on load.
AUTOTUNE_VERSION = 2

#: The cell-key backend prefix used when the caller does not say —
#: the in-process thread pool, the only backend before the process tier.
DEFAULT_BACKEND = "thread"

#: Measurements per (cell, candidate) before the calibrator stops
#: exploring that candidate.
DEFAULT_MIN_SAMPLES = 2


def parts_candidates(pool_size: int) -> List[int]:
    """Candidate part counts: powers of two up to the pool, plus the
    pool size itself — a tiny grid that still brackets the optimum."""
    out = {1, max(1, pool_size)}
    p = 2
    while p < pool_size:
        out.add(p)
        p *= 2
    return sorted(out)


class ThroughputCalibrator:
    """Measured-throughput table choosing ``parts`` per program kind.

    Cells are keyed by ``(backend, program kind, log2 size class of the
    moved payload bytes)``.  :meth:`choose` returns the first
    under-sampled candidate (exploration, in ascending order) until
    every candidate of the cell has ``min_samples`` measurements, then
    the candidate with the highest measured bytes/second
    (exploitation); :meth:`choose_backend` applies the same rule across
    the ``backends`` the scheduler runs.  :meth:`record` feeds a
    finished run back in.  Thread-safe; state optionally persists to
    ``path`` (atomic JSON, corruption-tolerant).
    """

    def __init__(
        self,
        pool_size: int,
        path: Optional[Union[str, Path]] = None,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        autoflush: bool = False,
        backends: Sequence[str] = (DEFAULT_BACKEND,),
    ):
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        if not backends:
            raise ValueError("at least one backend is required")
        self.pool_size = pool_size
        self.candidates = parts_candidates(pool_size)
        self.backends = tuple(backends)
        self.min_samples = max(1, min_samples)
        self.path = Path(path) if path is not None else None
        self.autoflush = autoflush
        self._lock = Lock()
        #: cell key -> {str(parts): {"count": int, "total_s": float,
        #:                            "total_bytes": float}}
        self._cells: Dict[str, Dict[str, dict]] = {}
        #: Cell keys whose backend declined the work (codegen fallback):
        #: choose_backend skips these instead of exploring them forever.
        self._unavailable: Set[str] = set()
        self._dirty = False
        if self.path is not None:
            self._load()

    # ---- keying ------------------------------------------------------
    @staticmethod
    def size_class(total_bytes: int) -> int:
        """Log2 bucket of the payload size (0 for <= 1 byte)."""
        return max(0, int(total_bytes) - 1).bit_length()

    def _key(
        self, kind: str, total_bytes: int, backend: str = DEFAULT_BACKEND
    ) -> str:
        return f"{backend}:{kind}|2^{self.size_class(total_bytes)}"

    # ---- choose / record --------------------------------------------
    def choose(
        self, kind: str, total_bytes: int, backend: str = DEFAULT_BACKEND
    ) -> int:
        """The ``parts`` to run with: explore until calibrated, then
        the measured-throughput argmax."""
        key = self._key(kind, total_bytes, backend)
        with self._lock:
            cell = self._cells.get(key, {})
            for p in self.candidates:
                stats = cell.get(str(p))
                if stats is None or stats["count"] < self.min_samples:
                    return p
            return max(
                self.candidates,
                key=lambda p: cell[str(p)]["total_bytes"]
                / max(cell[str(p)]["total_s"], 1e-12),
            )

    def _best_bps(self, cell: Dict[str, dict]) -> float:
        """Highest calibrated throughput in a cell (lock held)."""
        best = -1.0
        for s in cell.values():
            if s["count"] >= self.min_samples:
                best = max(best, s["total_bytes"] / max(s["total_s"], 1e-12))
        return best

    def choose_backend(
        self,
        kind: str,
        total_bytes: int,
        among: Optional[Sequence[str]] = None,
    ) -> str:
        """The execution backend to run with, among ``self.backends``.

        Same explore-then-exploit shape as :meth:`choose`, one level
        up: while any backend's cell is still exploring ``parts``, that
        backend runs next (so both sides of the crossover get measured);
        once every backend is calibrated, the one whose best candidate
        measured the highest bytes/second wins.  ``among`` restricts
        the contest to the backends the caller's routing rules left
        eligible for this job (the scheduler excludes, e.g., the
        process pool for payloads below its dispatch floor); backends a
        fallback declared unavailable for the cell are always skipped.
        """
        backends = [
            b for b in self.backends if among is None or b in among
        ]
        if not backends:
            backends = [self.backends[0]]
        if len(backends) == 1:
            return backends[0]
        with self._lock:
            scored = []
            for backend in backends:
                key = self._key(kind, total_bytes, backend)
                if key in self._unavailable:
                    continue
                cell = self._cells.get(key, {})
                for p in self.candidates:
                    stats = cell.get(str(p))
                    if stats is None or stats["count"] < self.min_samples:
                        return backend
                scored.append((self._best_bps(cell), backend))
            if not scored:
                return backends[0]
            return max(scored)[1]

    def mark_unavailable(
        self, kind: str, total_bytes: int, backend: str
    ) -> None:
        """Pin a cell off a backend that declined the work.

        The codegen router calls this when the nest search judges a
        geometry unprofitable: the job silently ran on the thread
        backend instead, so leaving the ``codegen`` cell unmeasured
        would make :meth:`choose_backend` re-explore it on every later
        request.  Persisted alongside the measurements.
        """
        key = self._key(kind, total_bytes, backend)
        with self._lock:
            if key not in self._unavailable:
                self._unavailable.add(key)
                self._dirty = True
        if self.autoflush:
            self.flush()

    def backend_wins(self) -> Dict[str, Dict[str, int]]:
        """Per program kind, how many calibrated cells each backend wins.

        The CLI's codegen-vs-indexed scoreboard: a cell counts for the
        backend whose best calibrated candidate measured the highest
        throughput among all backends sharing that ``kind|2^cls`` cell
        (cells still exploring, or with a single contender, are
        skipped).
        """
        with self._lock:
            grouped: Dict[str, Dict[str, float]] = {}
            for key, cell in self._cells.items():
                backend, _, rest = key.partition(":")
                best = self._best_bps(cell)
                if best < 0:
                    continue
                grouped.setdefault(rest, {})[backend] = best
            wins: Dict[str, Dict[str, int]] = {}
            for rest, per_backend in grouped.items():
                if len(per_backend) < 2:
                    continue
                kind = rest.split("|", 1)[0]
                winner = max(per_backend.items(), key=lambda kv: kv[1])[0]
                wins.setdefault(kind, {})
                wins[kind][winner] = wins[kind].get(winner, 0) + 1
            return wins

    def record(
        self,
        kind: str,
        total_bytes: int,
        parts: int,
        seconds: float,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        """Feed one finished run's wall time back into the table."""
        if seconds <= 0 or parts <= 0:
            return
        key = self._key(kind, total_bytes, backend)
        with self._lock:
            cell = self._cells.setdefault(key, {})
            stats = cell.setdefault(
                str(parts), {"count": 0, "total_s": 0.0, "total_bytes": 0.0}
            )
            stats["count"] += 1
            stats["total_s"] += float(seconds)
            stats["total_bytes"] += float(total_bytes)
            self._dirty = True
        if self.autoflush:
            self.flush()

    def calibrated(
        self, kind: str, total_bytes: int, backend: str = DEFAULT_BACKEND
    ) -> bool:
        """Whether :meth:`choose` has left exploration for this cell."""
        key = self._key(kind, total_bytes, backend)
        with self._lock:
            cell = self._cells.get(key, {})
            return all(
                cell.get(str(p), {"count": 0})["count"] >= self.min_samples
                for p in self.candidates
            )

    # ---- introspection ----------------------------------------------
    def table(self) -> dict:
        """JSON-friendly snapshot: per cell, per-candidate mean time and
        measured throughput, plus the current winner."""
        with self._lock:
            cells = {}
            for key, cell in sorted(self._cells.items()):
                rows = {}
                best, best_bps = None, -1.0
                for p_str, s in sorted(cell.items(), key=lambda kv: int(kv[0])):
                    bps = s["total_bytes"] / max(s["total_s"], 1e-12)
                    rows[p_str] = {
                        "count": s["count"],
                        "mean_ms": round(s["total_s"] / s["count"] * 1e3, 4),
                        "gbps": round(bps / 1e9, 3),
                    }
                    if s["count"] >= self.min_samples and bps > best_bps:
                        best, best_bps = int(p_str), bps
                cells[key] = {"parts": rows, "best_parts": best}
            return {
                "pool_size": self.pool_size,
                "candidates": self.candidates,
                "backends": list(self.backends),
                "min_samples": self.min_samples,
                "path": str(self.path) if self.path else None,
                "unavailable": sorted(self._unavailable),
                "cells": cells,
            }

    def reset(self) -> None:
        with self._lock:
            self._cells.clear()
            self._unavailable.clear()
            self._dirty = True

    # ---- persistence -------------------------------------------------
    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("autotune_version") != AUTOTUNE_VERSION
            or payload.get("pool_size") != self.pool_size
        ):
            # A foreign pool shape measured different candidates; its
            # numbers would mislead choose().  Start fresh.
            return
        cells = payload.get("cells")
        if not isinstance(cells, dict):
            return
        for key, cell in cells.items():
            if not isinstance(cell, dict):
                continue
            clean = {}
            for p_str, s in cell.items():
                try:
                    clean[str(int(p_str))] = {
                        "count": int(s["count"]),
                        "total_s": float(s["total_s"]),
                        "total_bytes": float(s["total_bytes"]),
                    }
                except (KeyError, TypeError, ValueError):
                    continue
            if clean:
                self._cells[key] = clean
        unavailable = payload.get("unavailable", [])
        if isinstance(unavailable, list):
            self._unavailable.update(
                k for k in unavailable if isinstance(k, str)
            )

    def flush(self) -> None:
        """Atomically persist the table (no-op without a path)."""
        if self.path is None:
            return
        with self._lock:
            payload = {
                "autotune_version": AUTOTUNE_VERSION,
                "pool_size": self.pool_size,
                "unavailable": sorted(self._unavailable),
                "cells": {
                    k: {p: dict(s) for p, s in v.items()}
                    for k, v in self._cells.items()
                },
            }
            self._dirty = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def close(self) -> None:
        if self.path is not None and self._dirty:
            self.flush()
