"""A small thread-safe bounded LRU mapping.

The planning and execution layers keep several process-wide memoization
caches (geometry features, DRAM-transaction totals, candidate lower
bounds, compiled executor programs).  Historically these were plain
dicts that were wholesale ``clear()``-ed when full — correct, but a
pathological workload cycling through slightly more keys than the cap
would rebuild *everything* each lap.  :class:`BoundedLRU` replaces that
with per-entry least-recently-used eviction, optionally bounded by an
approximate byte budget as well (for caches whose values own large
arrays, like executor index maps).

The class is deliberately not a full ``MutableMapping``: the cache call
sites only ever need ``get``/``put``/``clear``/``len``/containment, and
keeping the surface small keeps the locking story obvious.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Any, Callable, Hashable, Optional


class BoundedLRU:
    """LRU-evicting key/value cache with entry-count and byte budgets.

    ``maxsize`` bounds the number of entries; ``max_bytes`` (optional)
    additionally bounds ``sum(sizeof(value))`` using the ``sizeof``
    callable (default: everything costs 0 bytes, i.e. no byte bound).
    Reads and writes are O(1) and thread-safe; ``hits``/``misses``
    counters make cache effectiveness observable (the runtime metrics
    snapshot them).
    """

    def __init__(
        self,
        maxsize: int,
        max_bytes: Optional[int] = None,
        sizeof: Optional[Callable[[Any], int]] = None,
    ):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self._sizeof = sizeof if sizeof is not None else (lambda _: 0)
        self._lock = Lock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        size = self._sizeof(value)
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self._bytes -= self._sizeof(old)
            self._data[key] = value
            self._bytes += size
            while len(self._data) > self.maxsize or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._data) > 1
            ):
                _, evicted = self._data.popitem(last=False)
                self._bytes -= self._sizeof(evicted)
                self.evictions += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    @property
    def nbytes(self) -> int:
        """Approximate bytes held, per the ``sizeof`` accounting."""
        with self._lock:
            return self._bytes

    def values(self) -> list:
        """Snapshot of the cached values, oldest first."""
        with self._lock:
            return list(self._data.values())

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._data.clear()
            self._bytes = 0

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        """JSON-friendly snapshot of occupancy and effectiveness."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._data),
                "maxsize": self.maxsize,
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }
