"""Codegen throughput: generated loop nests vs the fancy-indexing path.

The 64 MiB OD/OA cases from ``bench_procpool_scaling`` are the regime
the codegen tier (``docs/codegen.md``) was built for: forced index-map
programs stream a volume-sized int64 gather map alongside the data, so
they are memory-traffic-bound on any host.  Per case:

**parity first** — the generated :class:`~repro.kernels.codegen
.NestProgram` must produce bit-identical output to the
``IndexedProgram`` reference on ``run``, ``run_batch``, and the
``partition``/``run_part`` path, before anything is timed.

**warm throughput** — warm ``run`` of the nest vs the indexed program,
interleaved; the acceptance gate is ``>= MIN_CODEGEN_SPEEDUP`` in full
mode (codegen's win is single-threaded DRAM traffic, so it gates on
any CPU count, unlike the procpool bench).

**warm restart** — the plan store is reopened and every compiled
program dropped, as a restarted process would; recompiling the nests
must run ZERO loop-order searches (the artifact-cache hit counter is
asserted equal to the case count, and the search seconds saved are
reported).

Run directly::

    PYTHONPATH=src python benchmarks/bench_codegen_throughput.py

writes ``results/codegen_throughput.json``.  CI runs ``--smoke``:
smaller operands (still above the nest-profitability floor), fewer
repeats, gating only the deterministic invariants (parity, fallback
sanity, zero-search warm restart).
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from conftest import bench_parser, env_stamp, gate, interleaved_ms, pick_repeats
from repro.core.plan import make_plan
from repro.kernels.codegen import (
    codegen_stats,
    compile_backend,
    reset_codegen_stats,
)
from repro.kernels.common import reference_transpose
from repro.kernels.executor import compile_executor

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent
    / "results"
    / "codegen_throughput.json"
)

#: name -> (full dims, smoke dims, perm).  All f64; the full cases are
#: 64 MiB, the smoke cases ~8 MiB (still above NEST_MIN_BYTES so the
#: search can actually be profitable).
CASES = {
    "od-reverse-64MiB": (
        (128, 64, 32, 32),
        (64, 32, 16, 16),
        (3, 2, 1, 0),
    ),
    "oa-partial-64MiB": (
        (32, 64, 64, 64),
        (16, 32, 32, 32),
        (1, 0, 3, 2),
    ),
}

#: Warm nest over warm indexed, full mode, any host.
MIN_CODEGEN_SPEEDUP = 1.5

#: Batch rows for the run_batch parity check.
PARITY_BATCH = 2


def bench_case(name, dims, perm, repeats, store, smoke):
    plan = make_plan(dims, perm)
    volume = plan.layout.volume
    src = np.random.default_rng(3).standard_normal(volume)
    ref = reference_transpose(src, plan.layout, plan.perm)

    indexed = compile_executor(plan.kernel, lowering=False)
    assert indexed.kind in ("indexed", "chunked"), indexed.kind

    t0 = time.perf_counter()
    nest = compile_executor(
        plan.kernel, lowering=False, codegen=True, artifacts=store
    )
    compile_ms = (time.perf_counter() - t0) * 1e3
    assert nest.kind == "nest", (
        f"{name}: search declined a {src.nbytes >> 20} MiB "
        f"memory-bound case (kind={nest.kind})"
    )

    # Parity on every execution surface before any timing.
    assert np.array_equal(indexed.run(src), ref), f"{name}: indexed parity"
    assert np.array_equal(nest.run(src), ref), f"{name}: nest run parity"
    srcs = np.stack([src * (i + 1) for i in range(PARITY_BATCH)])
    refs = np.stack(
        [reference_transpose(s, plan.layout, plan.perm) for s in srcs]
    )
    assert np.array_equal(nest.run_batch(srcs), refs), (
        f"{name}: nest run_batch parity"
    )
    tasks = nest.partition(4)
    assert len(tasks) > 1, f"{name}: degenerate partition {tasks}"
    out = np.empty(volume)
    for task in tasks:
        nest.run_part(src, out, task)
    assert np.array_equal(out, ref), f"{name}: nest partition parity"

    out_i = np.empty(volume)
    out_n = np.empty(volume)
    indexed.run(src, out=out_i)  # warm both before interleaving
    nest.run(src, out=out_n)
    timed = interleaved_ms(
        {
            "indexed": lambda: indexed.run(src, out=out_i),
            "codegen": lambda: nest.run(src, out=out_n),
        },
        repeats,
    )
    indexed_ms, _ = timed["indexed"]
    nest_ms, _ = timed["codegen"]
    desc = nest.descriptor
    return {
        "dims": list(dims),
        "perm": list(perm),
        "schema": plan.schema.value,
        "indexed_kind": indexed.kind,
        "payload_mib": round(src.nbytes / (1 << 20), 1),
        "tiles": list(desc["tiles"]),
        "order": list(desc["order"]),
        "model_cost_lines": desc["cost"],
        "model_indexed_lines": desc["indexed_cost"],
        "search_ms": desc["search_ms"],
        "compile_ms": round(compile_ms, 3),
        "indexed_ms": round(indexed_ms, 3),
        "codegen_ms": round(nest_ms, 3),
        "codegen_speedup": round(indexed_ms / nest_ms, 3),
    }


def check_fallback(store):
    """A cache-resident case must fall back to the indexed program."""
    plan = make_plan((8, 8, 8), (2, 1, 0))
    program = compile_executor(
        plan.kernel, lowering=False, codegen=True, artifacts=store
    )
    assert program.kind in ("indexed", "chunked"), (
        f"tiny case generated a {program.kind} program instead of "
        "falling back"
    )
    src = np.random.default_rng(5).standard_normal(plan.layout.volume)
    ref = reference_transpose(src, plan.layout, plan.perm)
    assert np.array_equal(program.run(src), ref), "fallback parity"


def main(argv=None):
    ap = bench_parser(__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = ap.parse_args(argv)
    repeats = pick_repeats(args, full=7, smoke=2)

    from repro.runtime.store import PlanStore

    state_dir = Path(tempfile.mkdtemp(prefix="repro-codegen-bench-"))
    store = PlanStore(state_dir / "plans.json")
    reset_codegen_stats()

    results = {}
    for name, (full_dims, smoke_dims, perm) in CASES.items():
        dims = smoke_dims if args.smoke else full_dims
        results[name] = bench_case(name, dims, perm, repeats, store, args.smoke)
    check_fallback(store)

    cold = codegen_stats()
    failures = []
    if cold["searches"] != len(CASES):
        failures.append(
            f"cold pass ran {cold['searches']} searches for "
            f"{len(CASES)} cases"
        )

    # Warm restart: reopen the store and drop every compiled program,
    # exactly what a new process sees.  Rebuilding the nests must hit
    # the artifact cache for every case and search zero times.
    store.close()
    from repro.kernels.executor import clear_exec_caches

    clear_exec_caches()
    reset_codegen_stats()
    warm_store = PlanStore(state_dir / "plans.json")
    for name, (full_dims, smoke_dims, perm) in CASES.items():
        dims = smoke_dims if args.smoke else full_dims
        plan = make_plan(dims, perm)
        program = compile_executor(
            plan.kernel, lowering=False, codegen=True, artifacts=warm_store
        )
        assert program.kind == "nest", f"{name}: warm rebuild fell back"
    warm = codegen_stats()
    if warm["searches"] != 0:
        failures.append(
            f"warm restart re-ran {warm['searches']} loop-order searches "
            "(expected 0)"
        )
    if warm["artifact_hits"] != len(CASES):
        failures.append(
            f"warm restart hit {warm['artifact_hits']} artifacts for "
            f"{len(CASES)} cases"
        )

    print(
        f"{'case':<20s} {'prog':<8s} {'MiB':>6s} {'indexed':>9s} "
        f"{'codegen':>9s} {'speedup':>8s}  {'tiles':<18s} {'search':>8s}"
    )
    for name, r in results.items():
        print(
            f"{name:<20s} {r['indexed_kind']:<8s} {r['payload_mib']:>6.1f} "
            f"{r['indexed_ms']:>7.2f}ms {r['codegen_ms']:>7.2f}ms "
            f"{r['codegen_speedup']:>7.2f}x  "
            f"{'x'.join(str(t) for t in r['tiles']):<18s} "
            f"{r['search_ms']:>6.2f}ms"
        )
    print(
        f"compile backend: {compile_backend()}; warm restart: "
        f"{warm['searches']} searches, {warm['artifact_hits']} artifact "
        f"hits, {warm['search_s_saved'] * 1e3:.2f} ms search saved"
    )

    if args.smoke:
        # Throughput needs a quiet host; smoke gates only the
        # deterministic invariants (parity and the fallback asserted in
        # bench_case/check_fallback, search/artifact counters above).
        return gate("CODEGEN SMOKE REGRESSION", failures, smoke=True)

    failures += [
        f"{name}: codegen speedup {r['codegen_speedup']}x < "
        f"{MIN_CODEGEN_SPEEDUP}x over the indexed program"
        for name, r in results.items()
        if r["codegen_speedup"] < MIN_CODEGEN_SPEEDUP
    ]
    summary = {
        "env": env_stamp(True),
        "repeats": repeats,
        "compile_backend": compile_backend(),
        "min_codegen_speedup": MIN_CODEGEN_SPEEDUP,
        "warm_restart": {
            "searches": warm["searches"],
            "artifact_hits": warm["artifact_hits"],
            "search_ms_saved": round(warm["search_s_saved"] * 1e3, 3),
        },
        "cases": results,
    }
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.out}")
    return gate("ACCEPTANCE THRESHOLDS NOT MET", failures)


if __name__ == "__main__":
    sys.exit(main())
