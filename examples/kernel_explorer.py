"""Tour of the TTLG taxonomy (Fig. 3 / Alg. 1) across permutations.

For every permutation of a 4D tensor this prints the fused (scaled)
rank, the schema the taxonomy picks, the kernel and slice sizes the
model-driven search settles on, and the simulated bandwidth — a compact
view of the whole decision pipeline.

Run:  python examples/kernel_explorer.py [extent]
"""

import itertools
import sys

import repro
from repro.core.fusion import fuse_indices
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import select_schema


def main(extent: int = 12) -> None:
    dims = (extent, extent // 2 + 1, extent, extent // 3 + 2)
    print(f"dims = {dims} (dim 0 fastest); warp size 32\n")
    header = (
        f"{'perm':<12s} {'fused rank':>10s} {'taxonomy':>22s} "
        f"{'chosen kernel':>22s} {'A':>6s} {'B':>6s} {'GB/s':>7s}"
    )
    print(header)
    print("-" * len(header))
    for perm in itertools.permutations(range(4)):
        fused = fuse_indices(TensorLayout(dims), Permutation(perm))
        decision = select_schema(fused.layout, fused.perm)
        plan = repro.plan_transpose(dims, perm)
        k = plan.kernel
        a = getattr(k, "A", getattr(k, "n0", "-"))
        b = getattr(k, "B", "-")
        print(
            f"{' '.join(map(str, perm)):<12s} {fused.scaled_rank:>10d} "
            f"{decision.schema.value:>22s} {plan.schema.value:>22s} "
            f"{str(a):>6s} {str(b):>6s} {plan.bandwidth_gbps():>7.1f}"
        )
    print(
        "\n'taxonomy' is Alg. 1's primary pick; 'chosen kernel' is what "
        "the regression model selected among the allowed candidates."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
