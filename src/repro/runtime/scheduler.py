"""Worker-pool scheduler dispatching executions across simulated streams.

Each worker thread owns one simulated *stream* — an execution lane with
its own :class:`~repro.gpusim.cost.CostModel` and a monotonically
advancing simulated clock (the sum of simulated kernel times it has
retired).  Streams may be spread round-robin over several simulated
devices.  Jobs are pulled from one shared FIFO, so dispatch is
least-loaded by construction; the registry's ``queue_depth`` gauge and
``queue_depth_peak`` high-water mark expose backlog.

Per-schema simulated and wall (host) execution times are recorded into
the metrics registry, giving the ``sim_s.<schema>`` / ``wall_s.<schema>``
histograms documented in ``docs/runtime.md``.  Executions run through
the compiled-executor layer (``docs/executor.md``): program-cache hits
and misses are counted (``exec_cache_hits`` / ``exec_cache_misses``)
and the wall time of warm vs cold calls is recorded separately
(``exec_warm_s`` / ``exec_cold_s`` histograms).  One large execution
can also be split across the whole pool with
:meth:`StreamScheduler.submit_partitioned`, and ``B`` same-geometry
operands run as one fused batched program via
:meth:`StreamScheduler.submit_batch` (split along the batch axis).
For both, the part count defaults to what the attached
:class:`~repro.runtime.autotune.ThroughputCalibrator` has measured to
be fastest for the program kind and payload size — finished runs feed
their wall time back into the calibrator.

The scheduler also routes between execution **backends**: its own
thread pool, the shared-memory :class:`~repro.runtime.procpool
.ProcessPool` (created lazily), and the generated-kernel **codegen**
tier (:mod:`repro.kernels.codegen`).  View/region programs are pure
strided NumPy copies that release the GIL, so they stay on threads;
large indexed/chunked programs hold the GIL for their whole fused
gather/scatter, so with ``backend="process"`` their partition tasks
run in worker processes that scatter directly into the shared-memory
output block, and with ``backend="codegen"`` the job is recompiled
with ``codegen=True`` — when the loop-nest search is profitable the
resulting :class:`~repro.kernels.codegen.NestProgram` runs its
row-range partition tasks on the *thread* pool (slice assignment
releases the GIL), and when it declines the job falls back to threads
and the calibrator cell is marked unavailable.  Under ``"auto"`` the
calibrator's backend axis arbitrates between every eligible backend
online.
Output buffers for split/batched jobs are leased from a
:class:`~repro.runtime.arena.BufferArena` instead of ``np.empty`` — the
report carries the lease (:attr:`ExecutionReport.block`) and callers
that are done with the output call :meth:`ExecutionReport.release` to
recycle it.
"""

from __future__ import annotations

import queue
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from threading import Lock, Thread
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.plan import TransposePlan
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.kernels.codegen import NEST_MIN_BYTES
from repro.kernels.executor import DEFAULT_MAX_INDEX_BYTES, executor_with_status
from repro.runtime.arena import ArenaBlock, BufferArena
from repro.runtime.autotune import ThroughputCalibrator
from repro.runtime.metrics import MetricsRegistry

_SHUTDOWN = object()

#: The backends a scheduler can be asked to run.
BACKENDS = ("thread", "process", "codegen", "auto")

#: Below this many payload bytes a job never routes to the process
#: pool: pipe dispatch plus segment attach costs more than the whole
#: move, GIL or not.
PROC_MIN_BYTES = 4 << 20

#: Pseudo stream id process-pool jobs report (they run on no stream).
PROC_STREAM = -1


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of one dispatched transposition (or batch of them)."""

    stream: int
    device: str
    schema: str
    #: Simulated GPU time of the kernel launch, in seconds.
    sim_time_s: float
    #: Host (wall) time spent moving the data functionally, in seconds.
    wall_time_s: float
    #: Time the job spent queued before a stream picked it up.
    queued_s: float
    #: Transposed flat data, when the job carried a payload.  Batched
    #: jobs carry the ``(B, volume)`` stack of per-operand outputs.
    output: Optional[np.ndarray]
    #: Disjoint tasks the execution was split into (1 = unsplit).
    parts: int = 1
    #: Operands moved by the job (``> 1`` only for batched jobs).
    batch: int = 1
    #: Which execution backend ran the job.
    backend: str = "thread"
    #: The arena lease backing ``output`` (``None`` when the output is
    #: a plain array or there is no output).  The report holds one
    #: reference; callers done with the output call :meth:`release`.
    block: Optional[ArenaBlock] = field(default=None, compare=False)

    def release(self) -> None:
        """Return the output's arena block to its free list.

        Call exactly once, and only when nothing reads ``output``
        anymore (the buffer is recycled for later executions).  A
        report without an arena-backed output is a no-op.  Unreleased
        blocks are reclaimed at garbage collection of the report.
        """
        if self.block is not None:
            self.block.release()


class _PartitionedJob:
    """Shared state of one execution split into disjoint tasks.

    Workers invoke ``runner(task)`` against one shared output buffer —
    for partitioned jobs the tasks are :meth:`~repro.kernels.executor
    .ExecutorProgram.partition` tasks, for batched jobs they are ranges
    of the batch axis.  The last task to retire resolves the future.
    """

    def __init__(
        self,
        plan: TransposePlan,
        program,
        runner: Callable[[tuple], None],
        src: np.ndarray,
        out: np.ndarray,
        fut: "Future[ExecutionReport]",
        enqueued: float,
        total: int,
        batch: int = 1,
        block: Optional[ArenaBlock] = None,
        backend: str = "thread",
        record_kind: Optional[str] = None,
    ):
        self.plan = plan
        self.program = program
        self.runner = runner
        self.src = src
        self.out = out
        self.fut = fut
        self.enqueued = enqueued
        self.lock = Lock()
        self.parts = total
        self.remaining = total
        self.batch = batch
        self.block = block
        #: The routed backend the report carries; ``codegen`` jobs run
        #: on the thread pool but are accounted under their own name.
        self.backend = backend
        #: The calibrator cell kind: for codegen jobs, the kind of the
        #: program the nest *replaced* (indexed/chunked), so the
        #: backend-axis cells compared by ``choose_backend`` line up.
        self.record_kind = record_kind if record_kind else program.kind
        self.started: Optional[float] = None
        self.failed = False
        self.cancelled = False


@dataclass(frozen=True)
class _PartTask:
    job: _PartitionedJob
    task: tuple


class StreamScheduler:
    """Dispatch plan executions over ``num_streams`` worker threads."""

    def __init__(
        self,
        num_streams: int = 4,
        devices: Optional[Sequence[DeviceSpec]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tuner: Optional[ThroughputCalibrator] = None,
        backend: str = "thread",
        proc_workers: Optional[int] = None,
        arena: Optional[BufferArena] = None,
        store_path=None,
        proc_start_method: Optional[str] = None,
        program_cache=None,
        store=None,
        codegen_refine: int = 0,
    ):
        if num_streams <= 0:
            raise ValueError(f"num_streams must be positive, got {num_streams}")
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.devices: List[DeviceSpec] = list(devices) if devices else [KEPLER_K40C]
        self.num_streams = num_streams
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Online parts auto-tuner consulted when ``parts`` is omitted;
        #: finished split jobs feed their wall time back into it.
        self.tuner = tuner
        #: ``thread`` | ``process`` | ``codegen`` | ``auto`` — where
        #: eligible split jobs run (view/region and small jobs always
        #: stay on threads).
        self.backend = backend
        self.arena = arena if arena is not None else BufferArena()
        self._own_arena = arena is None
        #: The persistent :class:`~repro.runtime.store.PlanStore` whose
        #: artifact section backs the codegen tier's descriptor cache
        #: (``None`` = searches are re-run per process).
        self.store = store
        #: Private compiled-program cache (``None`` = the process-wide
        #: one).  Sharded serving gives each replica its own so routing
        #: locality is observable as per-replica hit rate.
        self.program_cache = program_cache
        #: Codegen micro-probe shortlist size: ``>= 2`` lets first-time
        #: nest compiles time the analytic top-K on the live host
        #: before the winner persists (0 = pure-analytic pick).
        self.codegen_refine = int(codegen_refine)
        self._proc_workers = proc_workers
        self._proc_start_method = proc_start_method
        self._store_path = store_path
        self._procpool = None
        self._procpool_lock = Lock()
        self._stream_devices = [
            self.devices[i % len(self.devices)] for i in range(num_streams)
        ]
        self._cost_models = [CostModel(d) for d in self._stream_devices]
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = Lock()
        self._sim_clocks = [0.0] * num_streams
        self._jobs_done = [0] * num_streams
        self._closed = False
        self._workers = [
            Thread(target=self._worker, args=(i,), daemon=True, name=f"stream-{i}")
            for i in range(num_streams)
        ]
        for w in self._workers:
            w.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        plan: TransposePlan,
        payload: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> "Future[ExecutionReport]":
        """Enqueue one execution; resolves to an :class:`ExecutionReport`.

        ``out``, when given, receives the transposed data in place (it
        must be C-contiguous with the plan's volume and the payload's
        dtype) and becomes ``report.output`` — no arena block is leased,
        and the caller owns the buffer's lifetime.  The zero-copy
        serving path points ``out`` at an arena lease so the reply can
        be encoded as views over it.
        """
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        if out is not None and payload is None:
            raise ValueError("out= requires a payload")
        fut: "Future[ExecutionReport]" = Future()
        self._queue.put((plan, payload, out, fut, time.perf_counter()))
        depth = self._queue.qsize()
        self.metrics.set_gauge("queue_depth", depth)
        self.metrics.max_gauge("queue_depth_peak", depth)
        return fut

    def _pick_parts(
        self, kind: str, total_bytes: int, backend: str = "thread"
    ) -> int:
        """The part count for a split job: the calibrated winner when a
        tuner is attached, the stream count otherwise."""
        if self.tuner is not None:
            return self.tuner.choose(kind, total_bytes, backend=backend)
        return self.num_streams

    # ---- backend routing ---------------------------------------------
    def _route(
        self, program, total_bytes: int, backend: Optional[str]
    ) -> str:
        """Which backend one split job runs on.

        Static rules first: view/region programs are strided NumPy
        copies that already release the GIL — threads always win, and
        the codegen tier has nothing to improve on.  Small payloads
        never amortize process dispatch (nor a generated nest's
        per-tile overhead).  What remains (large indexed/chunked, the
        GIL-bound fancy-indexing regime) honors a fixed ``process`` or
        ``codegen`` choice when the job clears that backend's floor,
        and under ``auto`` asks the calibrator's backend axis —
        restricted to the backends this job is actually eligible for —
        measuring every side first.
        """
        choice = backend if backend is not None else self.backend
        if choice not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {choice!r}"
            )
        if choice == "thread" or self._closed:
            return "thread"
        if program.kind in ("view", "region"):
            return "thread"
        codegen_ok = total_bytes >= NEST_MIN_BYTES
        process_ok = (
            total_bytes >= PROC_MIN_BYTES and self.arena.use_shared_memory
        )
        if choice == "codegen":
            return "codegen" if codegen_ok else "thread"
        if choice == "process":
            return "process" if process_ok else "thread"
        # auto
        if self.tuner is not None:
            known = getattr(self.tuner, "backends", ())
            eligible = ["thread"]
            if codegen_ok and "codegen" in known:
                eligible.append("codegen")
            if process_ok and "process" in known:
                eligible.append("process")
            if len(eligible) > 1:
                return self.tuner.choose_backend(
                    program.kind, total_bytes, among=eligible
                )
            return "thread"
        if process_ok:
            return "process"
        return "codegen" if codegen_ok else "thread"

    def _resolve_codegen(self, plan, program, lowering: bool, nbytes: int):
        """Swap a codegen-routed job's program for its generated nest.

        Recompiles the kernel with ``codegen=True`` (cached under its
        own program-cache key, descriptors reused from the plan store's
        artifact section).  When the search declines — the model says
        blocking cannot beat fancy indexing here — the job falls back
        to the thread backend on the original program, and the
        calibrator cell is pinned unavailable so ``auto`` routing never
        re-explores a backend that does not exist for this cell.

        Returns ``(program, backend)``.
        """
        nest, hit = executor_with_status(
            plan.kernel,
            lowering=lowering,
            codegen=True,
            artifacts=self.store,
            cache=self.program_cache,
            refine=self.codegen_refine,
        )
        self.metrics.inc("exec_cache_hits" if hit else "exec_cache_misses")
        if nest.kind == "nest":
            self.metrics.inc("codegen_jobs")
            # Which backend the nest actually attached: jobs running the
            # compiled-C tier (GIL released whole-call, out-of-band
            # objects from the store's native dir) vs the numba/python
            # chain — the split the serving stats tables report.
            if nest.descriptor.get("backend") == "c":
                self.metrics.inc("codegen_native_jobs")
            return nest, "codegen"
        self.metrics.inc("codegen_fallbacks")
        if self.tuner is not None:
            self.tuner.mark_unavailable(program.kind, nbytes, "codegen")
        return program, "thread"

    def _ensure_procpool(self):
        with self._procpool_lock:
            if self._procpool is None:
                from repro.runtime.procpool import ProcessPool

                self._procpool = ProcessPool(
                    self._proc_workers,
                    store_path=self._store_path,
                    start_method=self._proc_start_method,
                )
            return self._procpool

    @property
    def procpool(self):
        """The lazily-created process pool (``None`` until first use)."""
        with self._procpool_lock:
            return self._procpool

    def _submit_process(
        self,
        plan: TransposePlan,
        program,
        src: np.ndarray,
        tasks,
        mode: str,
        enqueued: float,
        compile_opts,
        batch: int = 1,
    ) -> "Future[ExecutionReport]":
        """Dispatch one split job's tasks to the process pool.

        The source is copied once into a shared-memory block (the only
        data copy the process tier pays); the output block is scattered
        into directly by the workers, and only plan key + segment
        descriptors + task ranges cross the pipes.
        """
        from repro.runtime.store import plan_key, serialize_plan

        pool = self._ensure_procpool()
        src_block, src_view = self.arena.empty(src.shape, src.dtype)
        np.copyto(src_view, src)
        out_shape = src.shape if mode == "batch" else (plan.kernel.volume,)
        out_block, out_view = self.arena.empty(out_shape, src.dtype)
        fut: "Future[ExecutionReport]" = Future()
        fut.set_running_or_notify_cancel()
        started = time.perf_counter()
        schema = plan.schema.value
        nbytes = src.nbytes
        kind = program.kind

        def done(err, wall) -> None:
            src_block.release()
            if err is not None:
                self.metrics.inc("executions_failed")
                out_block.release()
                fut.set_exception(err)
                return
            sim = plan.simulated_time() * max(1, batch)
            self.metrics.inc("executions_completed")
            self.metrics.inc("procpool_jobs")
            if batch > 1:
                self.metrics.inc("batch_rows", batch)
            self.metrics.observe(f"sim_s.{schema}", sim)
            self.metrics.observe(f"wall_s.{schema}", wall)
            if self.tuner is not None:
                self.tuner.record(
                    kind, nbytes, len(tasks), wall, backend="process"
                )
            fut.set_result(
                ExecutionReport(
                    stream=PROC_STREAM,
                    device=self.devices[0].name,
                    schema=schema,
                    sim_time_s=sim,
                    wall_time_s=wall,
                    queued_s=started - enqueued,
                    output=out_view,
                    parts=len(tasks),
                    batch=batch,
                    backend="process",
                    block=out_block,
                )
            )

        try:
            pool.submit_tasks(
                key=plan_key(plan),
                entry=serialize_plan(plan),
                spec=plan.kernel.spec,
                compile_opts=compile_opts,
                mode=mode,
                src=(src_block.name, 0, tuple(src.shape), src.dtype.str),
                out=(out_block.name, 0, tuple(out_shape), src.dtype.str),
                tasks=tasks,
                done_cb=done,
            )
        except BaseException:
            src_block.release()
            out_block.release()
            raise
        return fut

    def _enqueue_split(self, job: "_PartitionedJob", tasks) -> None:
        for task in tasks:
            self._queue.put(_PartTask(job, task))
        depth = self._queue.qsize()
        self.metrics.set_gauge("queue_depth", depth)
        self.metrics.max_gauge("queue_depth_peak", depth)

    def submit_partitioned(
        self,
        plan: TransposePlan,
        payload: np.ndarray,
        parts: Optional[int] = None,
        backend: Optional[str] = None,
        lowering: bool = True,
    ) -> "Future[ExecutionReport]":
        """Execute ONE transposition split across the worker pool.

        The plan's compiled program is partitioned into up to ``parts``
        disjoint output-covering tasks that workers retire concurrently
        against a shared output buffer; the future resolves when the
        last task lands, carrying the full output.  Wall time spans
        first task start to last task end.  Without ``parts`` the count
        comes from the attached auto-tuner's online calibration (the
        stream count when no tuner is attached).

        ``backend`` overrides the scheduler's configured backend for
        this call; routing (:meth:`_route`) may still keep the job on
        threads.  ``lowering=False`` forces the index-map compilation
        (the GIL-bound regime the process pool exists for).
        """
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        compile_opts = (lowering, DEFAULT_MAX_INDEX_BYTES, False)
        program, hit = executor_with_status(
            plan.kernel, lowering=lowering, cache=self.program_cache
        )
        self.metrics.inc("exec_cache_hits" if hit else "exec_cache_misses")
        src = plan.kernel.check_input(payload)
        record_kind = program.kind
        chosen = self._route(program, src.nbytes, backend)
        if chosen == "codegen":
            program, chosen = self._resolve_codegen(
                plan, program, lowering, src.nbytes
            )
        if parts is None:
            parts = self._pick_parts(record_kind, src.nbytes, chosen)
        tasks = program.partition(parts)
        enqueued = time.perf_counter()
        if chosen == "process":
            return self._submit_process(
                plan, program, src, tasks, "part", enqueued, compile_opts
            )
        out_block, out = self.arena.empty((plan.kernel.volume,), src.dtype)
        fut: "Future[ExecutionReport]" = Future()
        job = _PartitionedJob(
            plan,
            program,
            lambda task: program.run_part(src, out, task),
            src,
            out,
            fut,
            enqueued,
            len(tasks),
            block=out_block,
            backend=chosen,
            record_kind=record_kind,
        )
        self._enqueue_split(job, tasks)
        return fut

    def submit_batch(
        self,
        plan: TransposePlan,
        payloads: Sequence[np.ndarray],
        parts: Optional[int] = None,
        backend: Optional[str] = None,
        lowering: bool = True,
    ) -> "Future[ExecutionReport]":
        """Execute ``B`` same-geometry operands as one batched program.

        The payloads are stacked into a ``(B, volume)`` block and moved
        by the compiled program's fused :meth:`~repro.kernels.executor
        .ExecutorProgram.run_batch` — split along the batch axis into up
        to ``parts`` row ranges that workers retire concurrently.  The
        future resolves to an :class:`ExecutionReport` whose ``output``
        is the ``(B, volume)`` stack of per-operand results.  Without
        ``parts`` the split comes from the auto-tuner, as in
        :meth:`submit_partitioned`; ``backend``/``lowering`` also behave
        as there (batch rows are the tasks the process workers share).
        """
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        if not len(payloads):
            raise ValueError("submit_batch requires at least one payload")
        compile_opts = (lowering, DEFAULT_MAX_INDEX_BYTES, False)
        program, hit = executor_with_status(
            plan.kernel, lowering=lowering, cache=self.program_cache
        )
        self.metrics.inc("exec_cache_hits" if hit else "exec_cache_misses")
        srcs = program.batch_view(
            [plan.kernel.check_input(p) for p in payloads]
        )
        rows = srcs.shape[0]
        record_kind = program.kind
        chosen = self._route(program, srcs.nbytes, backend)
        if chosen == "codegen":
            program, chosen = self._resolve_codegen(
                plan, program, lowering, srcs.nbytes
            )
        if parts is None:
            parts = self._pick_parts(record_kind, srcs.nbytes, chosen)
        nparts = max(1, min(parts, rows))
        bounds = np.linspace(0, rows, nparts + 1, dtype=np.int64)
        tasks = [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        enqueued = time.perf_counter()
        if chosen == "process":
            return self._submit_process(
                plan,
                program,
                srcs,
                tasks,
                "batch",
                enqueued,
                compile_opts,
                batch=rows,
            )
        outs_block, outs = self.arena.empty(srcs.shape, srcs.dtype)
        fut: "Future[ExecutionReport]" = Future()
        job = _PartitionedJob(
            plan,
            program,
            lambda task: program.run_batch(
                srcs[task[0] : task[1]], out=outs[task[0] : task[1]]
            ),
            srcs,
            outs,
            fut,
            enqueued,
            len(tasks),
            batch=rows,
            block=outs_block,
            backend=chosen,
            record_kind=record_kind,
        )
        self._enqueue_split(job, tasks)
        return fut

    def _run_part(self, stream: int, item: _PartTask) -> None:
        job = item.job
        now = time.perf_counter()
        with job.lock:
            if job.started is None:
                job.started = now
                if not job.fut.set_running_or_notify_cancel():
                    job.cancelled = True
            skip = job.cancelled or job.failed
        if not skip:
            try:
                job.runner(item.task)
            except BaseException as exc:
                with job.lock:
                    already = job.failed
                    job.failed = True
                if not already:
                    self.metrics.inc("executions_failed")
                    job.fut.set_exception(exc)
        with job.lock:
            job.remaining -= 1
            last = job.remaining == 0
            finalize = last and not (job.cancelled or job.failed)
        if not finalize:
            if last and job.block is not None:
                # Failed/cancelled jobs never hand their output out.
                job.block.release()
            return
        plan = job.plan
        # A batched job retires the simulated work of B launches.
        sim = plan.simulated_time() * max(1, job.batch)
        wall = time.perf_counter() - job.started
        with self._lock:
            self._sim_clocks[stream] += sim
            self._jobs_done[stream] += 1
        schema = plan.schema.value
        self.metrics.inc("executions_completed")
        if job.batch > 1:
            self.metrics.inc("batch_rows", job.batch)
        self.metrics.observe(f"sim_s.{schema}", sim)
        self.metrics.observe(f"wall_s.{schema}", wall)
        self.metrics.set_gauge("queue_depth", self._queue.qsize())
        if self.tuner is not None:
            self.tuner.record(
                job.record_kind,
                job.src.nbytes,
                job.parts,
                wall,
                backend=job.backend,
            )
        job.fut.set_result(
            ExecutionReport(
                stream=stream,
                device=self._stream_devices[stream].name,
                schema=schema,
                sim_time_s=sim,
                wall_time_s=wall,
                queued_s=job.started - job.enqueued,
                output=job.out,
                parts=job.parts,
                batch=job.batch,
                backend=job.backend,
                block=job.block,
            )
        )

    def _worker(self, stream: int) -> None:
        cm = self._cost_models[stream]
        device = self._stream_devices[stream]
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            if isinstance(item, _PartTask):
                self._run_part(stream, item)
                continue
            plan, payload, out, fut, enqueued = item
            if not fut.set_running_or_notify_cancel():
                continue
            started = time.perf_counter()
            try:
                output = None
                block = None
                if payload is not None:
                    program, hit = executor_with_status(
                        plan.kernel, cache=self.program_cache
                    )
                    self.metrics.inc(
                        "exec_cache_hits" if hit else "exec_cache_misses"
                    )
                    src = plan.kernel.check_input(payload)
                    if out is not None:
                        # Caller-owned destination (e.g. a serving-layer
                        # arena lease): no block is leased here and
                        # report.release() is a no-op.
                        output = plan.kernel.check_output(out, src.dtype)
                    else:
                        block, output = self.arena.empty(
                            (plan.kernel.volume,), src.dtype
                        )
                    program.run(src, out=output)
                # Use the stream's own cost model only when the plan was
                # built for this stream's device; a foreign plan keeps
                # its own device's timing.
                if plan.kernel.spec is device:
                    sim = plan.simulated_time(cm)
                else:
                    sim = plan.simulated_time()
                wall = time.perf_counter() - started
                with self._lock:
                    self._sim_clocks[stream] += sim
                    self._jobs_done[stream] += 1
                schema = plan.schema.value
                self.metrics.inc("executions_completed")
                self.metrics.observe(f"sim_s.{schema}", sim)
                self.metrics.observe(f"wall_s.{schema}", wall)
                if payload is not None:
                    self.metrics.observe(
                        "exec_warm_s" if hit else "exec_cold_s", wall
                    )
                self.metrics.set_gauge("queue_depth", self._queue.qsize())
                fut.set_result(
                    ExecutionReport(
                        stream=stream,
                        device=device.name,
                        schema=schema,
                        sim_time_s=sim,
                        wall_time_s=wall,
                        queued_s=started - enqueued,
                        output=output,
                        block=block,
                    )
                )
            except BaseException as exc:
                self.metrics.inc("executions_failed")
                fut.set_exception(exc)

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs (and split tasks) currently waiting for a stream — the
        cheap accessor serving-layer backpressure polls per request."""
        return self._queue.qsize()

    def snapshot(self) -> dict:
        with self._lock:
            snap = {
                "num_streams": self.num_streams,
                "devices": [d.name for d in self.devices],
                "backend": self.backend,
                "sim_clock_s": list(self._sim_clocks),
                "jobs_done": list(self._jobs_done),
                "queue_depth": self._queue.qsize(),
            }
        snap["arena"] = self.arena.stats()
        pool = self.procpool
        snap["procpool"] = pool.stats() if pool is not None else None
        return snap

    def close(self, wait: bool = True) -> None:
        """Orderly shutdown: refuse new work, drain the queue (already
        enqueued jobs still run), join the workers, stop the process
        pool, and close the arena (when the scheduler owns it)."""
        if self._closed:
            return
        self._closed = True
        # One sentinel per worker *behind* the queued work: FIFO order
        # means everything already submitted drains before any exit.
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for w in self._workers:
                w.join()
        with self._procpool_lock:
            pool = self._procpool
        if pool is not None:
            # Fold the workers' warm-up counters into the registry while
            # they can still answer, then stop them.
            final = pool.stats()
            self.metrics.inc_many(
                {
                    name: final[name]
                    for name in (
                        "jobs",
                        "tasks",
                        "programs_built",
                        "program_hits",
                        "store_rehydrations",
                        "pipe_rehydrations",
                        "errors",
                    )
                },
                prefix="procpool.",
            )
            pool.close()
        if self._own_arena:
            self.arena.close()

    def shutdown(self, wait: bool = True) -> None:
        """Alias of :meth:`close` (the historical name)."""
        self.close(wait=wait)

    def __enter__(self) -> "StreamScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
