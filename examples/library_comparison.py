"""Head-to-head comparison of TTLG, cuTT, TTC and the naive kernel.

Reproduces the flavor of the paper's Sec. VI on a handful of cases:
repeated-use and single-use bandwidth for each library, plus each
library's chosen kernel — a quick way to see *why* the orderings come
out the way they do.

Run:  python examples/library_comparison.py
"""

from repro.baselines import (
    CuttHeuristic,
    CuttMeasure,
    NaiveLibrary,
    TTC,
    TTLG,
)

CASES = [
    ("6D all-16 reversal", (16,) * 6, (5, 4, 3, 2, 1, 0)),
    ("6D all-15 reversal", (15,) * 6, (5, 4, 3, 2, 1, 0)),
    ("6D all-17 reversal", (17,) * 6, (5, 4, 3, 2, 1, 0)),
    ("Fig. 12a (FVI match)", (16,) * 6, (0, 2, 5, 1, 4, 3)),
    ("Fig. 12b (no match)", (16,) * 6, (4, 1, 2, 5, 3, 0)),
    ("Fig. 5 shape 27^5", (27,) * 5, (4, 1, 2, 0, 3)),
    ("big matrix", (4096, 4096), (1, 0)),
]


def main() -> None:
    libs = [TTLG(), CuttHeuristic(), CuttMeasure(), TTC(), NaiveLibrary()]
    for title, dims, perm in CASES:
        print(f"\n== {title}: dims={dims} perm={perm} ==")
        print(
            f"  {'library':<16s} {'kernel':<22s} "
            f"{'repeated GB/s':>14s} {'single GB/s':>12s} {'plan ms':>9s}"
        )
        for lib in libs:
            plan = lib.plan(dims, perm)
            rep = plan.bandwidth_gbps()
            single = plan.bandwidth_gbps(include_plan=True)
            print(
                f"  {lib.name:<16s} {plan.kernel.schema.value:<22s} "
                f"{rep:>14.1f} {single:>12.1f} {plan.plan_time * 1e3:>9.3f}"
            )
        print(
            "  (TTC's single-use figure excludes its ~8 s offline code "
            "generation, as in the paper)"
        )


if __name__ == "__main__":
    main()
