"""Unit tests for repro.core.permutation."""

import numpy as np
import pytest

from repro.core.permutation import Permutation
from repro.errors import InvalidPermutationError


class TestConstruction:
    def test_valid(self):
        p = Permutation((2, 0, 1))
        assert p.rank == 3
        assert p.mapping == (2, 0, 1)

    def test_identity_factory(self):
        assert Permutation.identity(4).mapping == (0, 1, 2, 3)

    def test_reversal_factory(self):
        assert Permutation.reversal(4).mapping == (3, 2, 1, 0)

    def test_accepts_iterables(self):
        assert Permutation([1, 0]) == Permutation((1, 0))
        assert Permutation(range(3)).is_identity()

    def test_rank_one(self):
        p = Permutation((0,))
        assert p.is_identity()
        assert p.fvi_matches()

    @pytest.mark.parametrize(
        "bad", [(), (1,), (0, 0), (0, 2), (1, 2, 3), (-1, 0)]
    )
    def test_invalid(self, bad):
        with pytest.raises(InvalidPermutationError):
            Permutation(bad)


class TestAlgebra:
    def test_inverse(self):
        p = Permutation((2, 0, 3, 1))
        inv = p.inverse()
        assert p.compose(inv).is_identity()
        assert inv.compose(p).is_identity()

    def test_inverse_involution(self):
        p = Permutation((3, 1, 0, 2))
        assert p.inverse().inverse() == p

    def test_apply(self):
        p = Permutation((2, 0, 1))
        assert p.apply(("a", "b", "c")) == ("c", "a", "b")

    def test_apply_then_inverse_roundtrip(self):
        p = Permutation((1, 3, 0, 2))
        seq = ("w", "x", "y", "z")
        assert p.inverse().apply(p.apply(seq)) == seq

    def test_compose_matches_sequential_apply(self):
        a = Permutation((1, 2, 0))
        b = Permutation((2, 1, 0))
        seq = ("p", "q", "r")
        assert a.compose(b).apply(seq) == a.apply(b.apply(seq))

    def test_compose_rank_mismatch(self):
        with pytest.raises(InvalidPermutationError):
            Permutation((0, 1)).compose(Permutation((0, 1, 2)))

    def test_apply_length_mismatch(self):
        with pytest.raises(InvalidPermutationError):
            Permutation((0, 1)).apply((1, 2, 3))


class TestQueries:
    def test_fvi_matches(self):
        assert Permutation((0, 2, 1)).fvi_matches()
        assert not Permutation((2, 1, 0)).fvi_matches()

    def test_fixed_points(self):
        assert Permutation((0, 2, 1, 3)).fixed_points() == (0, 3)

    def test_cycles_cover_all_indices(self):
        p = Permutation((1, 2, 0, 4, 3))
        flat = sorted(i for cyc in p.cycles() for i in cyc)
        assert flat == list(range(5))

    def test_cycles_identity(self):
        assert Permutation.identity(3).cycles() == ((0,), (1,), (2,))

    def test_hash_and_eq(self):
        assert hash(Permutation((1, 0))) == hash(Permutation((1, 0)))
        assert Permutation((1, 0)) == (1, 0)
        assert Permutation((1, 0)) != Permutation((0, 1))

    def test_iteration_and_indexing(self):
        p = Permutation((2, 0, 1))
        assert list(p) == [2, 0, 1]
        assert p[0] == 2
        assert len(p) == 3


class TestNumpyInterop:
    @pytest.mark.parametrize(
        "dims,perm",
        [
            ((3, 4), (1, 0)),
            ((2, 3, 4), (2, 0, 1)),
            ((2, 3, 4, 5), (3, 1, 2, 0)),
            ((5, 2, 7), (0, 2, 1)),
        ],
    )
    def test_numpy_axes_matches_definition(self, dims, perm):
        """np.transpose with numpy_axes must realize the abstract
        permutation: output index i holds input dim perm[i]."""
        p = Permutation(perm)
        arr = np.arange(int(np.prod(dims))).reshape(dims[::-1])
        t = np.transpose(arr, p.numpy_axes())
        # Spot-check elementwise semantics.
        rng = np.random.default_rng(0)
        for _ in range(20):
            idx = tuple(rng.integers(0, d) for d in dims)
            out_idx = p.apply(idx)
            assert t[tuple(reversed(out_idx))] == arr[tuple(reversed(idx))]

    def test_numpy_axes_identity(self):
        assert Permutation.identity(3).numpy_axes() == (0, 1, 2)

    def test_numpy_axes_reversal(self):
        assert Permutation.reversal(3).numpy_axes() == (2, 1, 0)
