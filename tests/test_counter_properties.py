"""Property-based cross-validation of analytic counters vs the replay.

For random small problems, whatever kernel the planner builds must emit
internally consistent counters that agree with the per-warp replay on
the quantities both models define identically (warp accesses, lane
activity, shared-memory accesses), and within tolerance on DRAM
transactions (where the two make different — bracketed — cache
assumptions).
"""

import math

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.plan import make_plan
from repro.gpusim.engine import simulate_warp_accesses
from repro.gpusim.spec import KEPLER_K40C
from repro.model.pretrained import oracle_predictor

ORACLE = oracle_predictor()


@st.composite
def problems(draw):
    rank = draw(st.integers(2, 4))
    dims = tuple(draw(st.integers(2, 12)) for _ in range(rank))
    perm = tuple(draw(st.permutations(range(rank))))
    return dims, perm


@st.composite
def replay_problems(draw):
    """Problems big enough that caches cannot swallow the whole tensor."""
    rank = draw(st.integers(3, 4))
    dims = tuple(draw(st.integers(8, 16)) for _ in range(rank))
    perm = tuple(draw(st.permutations(range(rank))))
    return dims, perm


@given(problems())
@settings(max_examples=30, deadline=None)
def test_counters_internally_consistent(problem):
    dims, perm = problem
    plan = make_plan(dims, perm, predictor=ORACLE)
    c = plan.kernel.counters()
    c.validate()
    # Useful payload can never exceed what the memory system moved.
    assert c.dram_ld_useful_bytes <= c.dram_ld_tx * 128
    assert c.dram_st_useful_bytes <= c.dram_st_tx * 128
    # Each direction moves the whole tensor exactly once.
    vol_bytes = plan.layout.volume * plan.elem_bytes
    assert c.dram_ld_useful_bytes == vol_bytes
    assert c.dram_st_useful_bytes == vol_bytes
    # Every active lane slot moves one element, twice (in + out).
    assert c.active_lanes == 2 * plan.layout.volume


@given(replay_problems())
@settings(max_examples=15, deadline=None)
def test_counters_agree_with_replay(problem):
    dims, perm = problem
    # Keep the whole tensor well above the replay caches so dedup
    # assumptions, not capacity artifacts, are what is being compared —
    # and below the size where the O(elements) replay gets slow.
    assume(64 * 1024 <= math.prod(dims) * 8 <= 512 * 1024)
    plan = make_plan(dims, perm, predictor=ORACLE)
    k = plan.kernel
    ana = k.counters()
    # Two replay variants bracket the cache behaviour: a small
    # adjacent-access-only cache (pessimistic) and an L2-sized one
    # (optimistic, matching the analytic chaining assumptions).
    trace = list(k.trace())
    det_small = simulate_warp_accesses(
        iter(trace), KEPLER_K40C, k.tex_array_bytes(), line_cache_capacity=64
    )
    det_l2 = simulate_warp_accesses(
        iter(trace), KEPLER_K40C, k.tex_array_bytes(),
        line_cache_capacity=4096,
    )
    # Exact agreement on instruction-level quantities.
    assert ana.warp_ld_accesses == det_small.warp_ld_accesses
    assert ana.warp_st_accesses == det_small.warp_st_accesses
    assert ana.active_lanes == det_small.active_lanes
    assert ana.smem_ld_accesses == det_small.smem_ld_accesses
    assert ana.smem_st_accesses == det_small.smem_st_accesses
    # DRAM transactions near the replay bracket.  The analytic side uses
    # phase-averaged alignment and per-run chaining heuristics whose
    # residual error the regression layer absorbs (Sec. V); the property
    # guards against gross (>= 2x) accounting bugs, not the last 50 %.
    for side in ("dram_ld_tx", "dram_st_tx"):
        a = getattr(ana, side)
        lo = min(getattr(det_l2, side), getattr(det_small, side))
        hi = max(getattr(det_l2, side), getattr(det_small, side))
        assert 0.55 * lo <= a <= 1.8 * hi, (side, a, lo, hi, dims, perm)
