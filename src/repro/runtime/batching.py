"""Request coalescing: single-flight plan construction.

When many clients ask for the same ``(dims, perm, elem_bytes, device)``
at once — the thundering-herd shape of a warm-up burst — only one of
them should pay the planning search.  :class:`SingleFlight` elects a
leader per key; followers block on the leader's result.  Combined with
the :class:`~repro.core.cache.PlanCache` (which serves *later* arrivals
from memory) this gives exactly-once plan construction per key.
"""

from __future__ import annotations

from concurrent.futures import Future
from threading import Lock
from typing import Callable, Dict, Hashable, Tuple, TypeVar

T = TypeVar("T")


class SingleFlight:
    """Per-key duplicate-call suppression for concurrent callers."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._flights: Dict[Hashable, Future] = {}
        #: Calls that were absorbed into another caller's in-flight work.
        self.coalesced = 0

    def do(self, key: Hashable, fn: Callable[[], T]) -> Tuple[T, bool]:
        """Run ``fn`` once per key among concurrent callers.

        Returns ``(value, leader)`` where ``leader`` is True for the one
        caller that actually executed ``fn``.  If the leader raises, all
        concurrent followers see the same exception; the flight is then
        retired so a later call may retry.
        """
        with self._lock:
            fut = self._flights.get(key)
            if fut is None:
                fut = Future()
                self._flights[key] = fut
                leader = True
            else:
                leader = False
                self.coalesced += 1
        if not leader:
            return fut.result(), False
        try:
            value = fn()
        except BaseException as exc:
            fut.set_exception(exc)
            raise
        else:
            fut.set_result(value)
            return value, True
        finally:
            with self._lock:
                self._flights.pop(key, None)

    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)
