"""TTGT contraction planning and execution.

The planner enumerates GEMM-ready layouts for A (``[M,K]`` or ``[K,M]``),
B (``[K,N]`` or ``[N,K]``), and intra-group index orderings, querying the
TTLG performance model (:func:`repro.core.api.predict_time`) for each
required transposition plus a roofline GEMM cost; the cheapest total
wins.  This is precisely the "higher level optimizer" use case the
paper's abstract sells the prediction interface for.

Identity transposes (the tensor is already in the target layout) cost
nothing and are skipped at execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import predict_time
from repro.core.permutation import Permutation
from repro.core.plan import make_plan
from repro.errors import ContractionError
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.ttgt.spec import ContractionSpec, parse_contraction

#: K40c double-precision peak (1.43 TFLOP/s) derated like bandwidth.
GEMM_PEAK_FLOPS = 1.43e12
GEMM_EFFICIENCY = 0.75


def gemm_time(spec: ContractionSpec, device: DeviceSpec) -> float:
    """Roofline GEMM estimate: max of compute and memory time."""
    m = spec.volume(spec.m_labels)
    n = spec.volume(spec.n_labels)
    k = spec.volume(spec.k_labels)
    flops = 2.0 * m * n * k
    bytes_moved = 8.0 * (m * k + k * n + m * n)
    t_compute = flops / (GEMM_PEAK_FLOPS * GEMM_EFFICIENCY)
    t_memory = bytes_moved / device.effective_bandwidth
    return device.launch_overhead_s + max(t_compute, t_memory)


def _perm_to(labels: Sequence[str], target: Sequence[str]) -> Tuple[int, ...]:
    """Permutation taking ``labels`` order to ``target`` order
    (``p[i] = position of target[i] in labels``)."""
    pos = {l: i for i, l in enumerate(labels)}
    return tuple(pos[t] for t in target)


def _transpose_cost(
    labels: Sequence[str],
    target: Sequence[str],
    extents: Dict[str, int],
    device: DeviceSpec,
) -> float:
    perm = _perm_to(labels, target)
    if perm == tuple(range(len(perm))):
        return 0.0
    dims = tuple(extents[l] for l in labels)
    est = predict_time(dims, perm, elem_bytes=8, spec=device)
    return est.kernel_time


@dataclass(frozen=True)
class TTGTPlan:
    """A chosen TTGT strategy with per-step cost breakdown."""

    spec: ContractionSpec
    a_target: Tuple[str, ...]
    b_target: Tuple[str, ...]
    c_intermediate: Tuple[str, ...]
    a_transposed_first: bool  # GEMM consumes A as [K, M] when True
    b_transposed_first: bool  # GEMM consumes B as [N, K] when True
    transpose_a_time: float
    transpose_b_time: float
    gemm_time: float
    transpose_c_time: float

    @property
    def total_time(self) -> float:
        return (
            self.transpose_a_time
            + self.transpose_b_time
            + self.gemm_time
            + self.transpose_c_time
        )

    def describe(self) -> str:
        def j(ls):
            return "".join(ls)

        return (
            f"A[{j(self.spec.a_labels)}] -> [{j(self.a_target)}]"
            f" ({self.transpose_a_time * 1e6:.0f} us), "
            f"B[{j(self.spec.b_labels)}] -> [{j(self.b_target)}]"
            f" ({self.transpose_b_time * 1e6:.0f} us), "
            f"GEMM ({self.gemm_time * 1e6:.0f} us), "
            f"C[{j(self.c_intermediate)}] -> [{j(self.spec.c_labels)}]"
            f" ({self.transpose_c_time * 1e6:.0f} us); "
            f"total {self.total_time * 1e6:.0f} us"
        )


def _orderings(labels: Tuple[str, ...], references: List[Sequence[str]]):
    """Candidate intra-group orderings: as they appear in each reference
    tensor (deduplicated).  Keeps the search small and meaningful."""
    seen = set()
    out = []
    for ref in references:
        ordered = tuple(l for l in ref if l in labels)
        if len(ordered) == len(labels) and ordered not in seen:
            seen.add(ordered)
            out.append(ordered)
    if not out:
        out.append(labels)
    return out


def plan_contraction(
    expr: str,
    extents: Dict[str, int],
    device: DeviceSpec = KEPLER_K40C,
) -> TTGTPlan:
    """Choose the cheapest TTGT strategy by querying the TTLG model."""
    spec = parse_contraction(expr, extents)
    m, n, k = spec.m_labels, spec.n_labels, spec.k_labels
    best: Optional[TTGTPlan] = None
    gemm_t = gemm_time(spec, device)
    for m_ord in _orderings(m, [spec.a_labels, spec.c_labels]):
        for n_ord in _orderings(n, [spec.b_labels, spec.c_labels]):
            for k_ord in _orderings(k, [spec.a_labels, spec.b_labels]):
                for a_first_k in (False, True):
                    a_target = (
                        tuple(k_ord) + tuple(m_ord)
                        if a_first_k
                        else tuple(m_ord) + tuple(k_ord)
                    )
                    t_a = _transpose_cost(
                        spec.a_labels, a_target, spec.extents, device
                    )
                    for b_first_n in (False, True):
                        b_target = (
                            tuple(n_ord) + tuple(k_ord)
                            if b_first_n
                            else tuple(k_ord) + tuple(n_ord)
                        )
                        t_b = _transpose_cost(
                            spec.b_labels, b_target, spec.extents, device
                        )
                        c_mid = tuple(m_ord) + tuple(n_ord)
                        t_c = _transpose_cost(
                            c_mid, spec.c_labels, spec.extents, device
                        )
                        cand = TTGTPlan(
                            spec=spec,
                            a_target=a_target,
                            b_target=b_target,
                            c_intermediate=c_mid,
                            a_transposed_first=a_first_k,
                            b_transposed_first=b_first_n,
                            transpose_a_time=t_a,
                            transpose_b_time=t_b,
                            gemm_time=gemm_t,
                            transpose_c_time=t_c,
                        )
                        if best is None or cand.total_time < best.total_time:
                            best = cand
    assert best is not None
    return best


def _apply_transpose(
    flat: np.ndarray,
    labels: Sequence[str],
    target: Sequence[str],
    extents: Dict[str, int],
    device: DeviceSpec,
) -> np.ndarray:
    perm = _perm_to(labels, target)
    if perm == tuple(range(len(perm))):
        return flat
    plan = make_plan(
        tuple(extents[l] for l in labels), perm, elem_bytes=8, spec=device
    )
    return plan.execute(flat)


def _apply_transpose_batch(
    flats: Sequence[np.ndarray],
    labels: Sequence[str],
    target: Sequence[str],
    extents: Dict[str, int],
    device: DeviceSpec,
) -> np.ndarray:
    """Batched :func:`_apply_transpose`: one plan, one fused
    ``run_batch`` over the stacked operands.  Returns ``(B, volume)``."""
    perm = _perm_to(labels, target)
    if perm == tuple(range(len(perm))):
        return np.stack([np.asarray(f).reshape(-1) for f in flats])
    plan = make_plan(
        tuple(extents[l] for l in labels), perm, elem_bytes=8, spec=device
    )
    return plan.executor().run_batch(
        [plan.kernel.check_input(f) for f in flats]
    )


def contract(
    expr: str,
    a: np.ndarray,
    b: np.ndarray,
    extents: Dict[str, int],
    device: DeviceSpec = KEPLER_K40C,
    plan: Optional[TTGTPlan] = None,
) -> np.ndarray:
    """Execute a contraction via TTGT using TTLG transposes.

    ``a`` and ``b`` are *linearized* arrays in the label order of the
    expression (first label fastest).  Returns the linearized C.
    Element-exact against the ``np.einsum`` reference (tested).
    """
    if plan is None:
        plan = plan_contraction(expr, extents, device)
    spec = plan.spec
    if a.size != spec.volume(spec.a_labels):
        raise ContractionError(
            f"A has {a.size} elements, spec says {spec.volume(spec.a_labels)}"
        )
    if b.size != spec.volume(spec.b_labels):
        raise ContractionError(
            f"B has {b.size} elements, spec says {spec.volume(spec.b_labels)}"
        )
    ext = spec.extents
    a_t = _apply_transpose(a, spec.a_labels, plan.a_target, ext, device)
    b_t = _apply_transpose(b, spec.b_labels, plan.b_target, ext, device)
    mv = spec.volume(spec.m_labels)
    nv = spec.volume(spec.n_labels)
    kv = spec.volume(spec.k_labels)
    # Our linearization (dim 0 fastest) viewed as a NumPy matrix: a flat
    # [X, Y] layout (X fastest) is a C-order array of shape (Y, X).
    if plan.a_transposed_first:  # A is [K, M] -> numpy (M, K)
        a2d = a_t.reshape(mv, kv).T  # (K, M)
    else:  # A is [M, K] -> numpy (K, M)
        a2d = a_t.reshape(kv, mv)
    if plan.b_transposed_first:  # B is [N, K] -> numpy (K, N)
        b2d = b_t.reshape(kv, nv).T  # (N, K)
    else:  # B is [K, N] -> numpy (N, K)
        b2d = b_t.reshape(nv, kv)
    c2d = b2d @ a2d  # (N, M) == C as [M, N] with M fastest
    c_mid = np.ascontiguousarray(c2d).reshape(-1)
    return _apply_transpose(c_mid, plan.c_intermediate, spec.c_labels, ext, device)


def contract_many(
    expr: str,
    a_batch: Sequence[np.ndarray],
    b_batch: Sequence[np.ndarray],
    extents: Dict[str, int],
    device: DeviceSpec = KEPLER_K40C,
    plan: Optional[TTGTPlan] = None,
) -> List[np.ndarray]:
    """Execute the same contraction over ``B`` operand pairs, batched.

    The chain is planned **once** and every stage is fused across the
    batch: each required transposition moves all operands as one
    :meth:`~repro.kernels.executor.ExecutorProgram.run_batch` call, and
    the GEMM runs as a single batched ``np.matmul`` over a stacked
    leading axis.  Element-exact against per-pair :func:`contract`
    (tested).  Returns one linearized C per operand pair.
    """
    if len(a_batch) != len(b_batch):
        raise ContractionError(
            f"operand batches disagree: {len(a_batch)} A vs {len(b_batch)} B"
        )
    if not len(a_batch):
        return []
    if plan is None:
        plan = plan_contraction(expr, extents, device)
    spec = plan.spec
    av, bv = spec.volume(spec.a_labels), spec.volume(spec.b_labels)
    for i, (a, b) in enumerate(zip(a_batch, b_batch)):
        if a.size != av:
            raise ContractionError(
                f"A[{i}] has {a.size} elements, spec says {av}"
            )
        if b.size != bv:
            raise ContractionError(
                f"B[{i}] has {b.size} elements, spec says {bv}"
            )
    ext = spec.extents
    rows = len(a_batch)
    a_tb = _apply_transpose_batch(a_batch, spec.a_labels, plan.a_target, ext, device)
    b_tb = _apply_transpose_batch(b_batch, spec.b_labels, plan.b_target, ext, device)
    mv = spec.volume(spec.m_labels)
    nv = spec.volume(spec.n_labels)
    kv = spec.volume(spec.k_labels)
    # Same matrix views as contract(), lifted over the leading batch axis.
    if plan.a_transposed_first:  # A is [K, M] -> numpy (B, M, K)
        a3 = a_tb.reshape(rows, mv, kv).transpose(0, 2, 1)  # (B, K, M)
    else:  # A is [M, K] -> numpy (B, K, M)
        a3 = a_tb.reshape(rows, kv, mv)
    if plan.b_transposed_first:  # B is [N, K] -> numpy (B, K, N)
        b3 = b_tb.reshape(rows, kv, nv).transpose(0, 2, 1)  # (B, N, K)
    else:  # B is [K, N] -> numpy (B, N, K)
        b3 = b_tb.reshape(rows, nv, kv)
    c3 = b3 @ a3  # (B, N, M) == each C as [M, N] with M fastest
    c_mid = np.ascontiguousarray(c3).reshape(rows, -1)
    c_out = _apply_transpose_batch(
        c_mid, plan.c_intermediate, spec.c_labels, ext, device
    )
    return [c_out[i] for i in range(rows)]
