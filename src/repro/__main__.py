"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
plan DIMS PERM [--dtype f32|f64] [--device k40c|p100]
    Plan a transposition and print the chosen schema, parameters,
    predicted/simulated time, and bandwidth.

compare DIMS PERM [--device ...]
    Plan the same problem with TTLG, cuTT (both modes), and TTC and
    print a comparison table (repeated and single use).

predict DIMS PERM [--dtype f32|f64]
    The queryable model: estimated time/bandwidth without executing.

device [k40c|p100]
    Print the simulated device configuration (Table III analogue).

serve [--requests N] [--clients C] [--streams S] [--payload]
      [--batch-window S] [--backend thread|process|codegen|auto]
      [--proc-workers N] [--retrain-every N] [--retrain-every-s SEC]
      [--state-dir DIR]
    Run a workload through the concurrent transpose-serving runtime
    (persistent plan store + metrics); ``--payload`` moves real data
    through the compiled executors.  With ``--batch-window`` (seconds,
    requires ``--payload``) concurrent same-problem requests coalesce
    into fused batched runs.  ``--backend`` selects the execution tier
    for eligible jobs (see docs/execution-tiers.md): the thread pool,
    the out-of-GIL shared-memory process pool, generated cache-blocked
    loop nests (docs/codegen.md), or calibrated auto routing.  See
    docs/runtime.md.

serve --listen HOST:PORT [--replicas R] [--streams S]
      [--router hash|random|round_robin] [--max-inflight N]
      [--tenant-rate R/S] [--max-queue-depth N] [--program-cache N]
      [--max-requests N] [--state-dir DIR]
    Run the network serving front end (docs/serving.md): R sharded
    TransposeService replicas behind the length-prefixed wire protocol,
    routed by plan content key over a consistent-hash ring, with
    admission control and graceful drain on Ctrl-C (or after
    ``--max-requests`` requests).  The serving snapshot is written to
    ``<state-dir>/metrics.json`` on exit.

stats [--state-dir DIR] [--json] [--connect HOST:PORT]
    Print the metrics snapshot written by the last ``serve`` session,
    including batch-coalescing counters, the auto-tuner's calibrated
    throughput table, and the ``serving.*`` block when the snapshot
    came from a network front end.  ``--connect`` queries a live
    server over the wire instead of reading the file.

``DIMS`` and ``PERM`` are comma-separated, dim 0 fastest, permutation in
the paper convention (``perm[i] = j``: output dim i is input dim j).

Example::

    python -m repro plan 16,16,16,16,16,16 5,4,3,2,1,0
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Tuple

from repro.core.api import plan_transpose, predict_time
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100

DEVICES = {"k40c": KEPLER_K40C, "p100": PASCAL_P100}

DTYPES = {"f32": 4, "f64": 8}

#: Where ``serve``/``stats`` keep the plan store and metrics snapshot.
DEFAULT_STATE_DIR = os.environ.get(
    "REPRO_RUNTIME_DIR", os.path.join("~", ".cache", "repro-runtime")
)


def _ints(text: str) -> Tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from exc


def _elem_bytes(dtype: str) -> int:
    try:
        return DTYPES[dtype]
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unsupported dtype {dtype!r}; supported dtypes: "
            + ", ".join(sorted(DTYPES))
        ) from None


def _dtype(text: str) -> str:
    _elem_bytes(text)  # validate with the supported-dtype message
    return text


def _problem(text: str) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Parse ``DIMS:PERM`` (e.g. ``16,16,16:2,1,0``) for ``serve``."""
    dims_text, sep, perm_text = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected DIMS:PERM (e.g. 16,16,16:2,1,0), got {text!r}"
        )
    return _ints(dims_text), _ints(perm_text)


def _addr(text: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` for ``serve --listen`` / ``stats --connect``."""
    host, sep, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        sep = ""
        port = -1
    if not sep or not host or not (0 <= port < 65536):
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT (e.g. 127.0.0.1:8731), got {text!r}"
        )
    return host, port


def cmd_plan(args) -> int:
    plan = plan_transpose(
        args.dims, args.perm, _elem_bytes(args.dtype), DEVICES[args.device]
    )
    k = plan.kernel
    print(f"dims            : {plan.layout.dims} (dim 0 fastest)")
    print(f"perm            : {plan.perm.mapping}")
    print(f"fused           : dims {plan.fused.layout.dims} "
          f"perm {plan.fused.perm.mapping} (scaled rank "
          f"{plan.fused.scaled_rank})")
    print(f"schema          : {plan.schema.value}")
    if hasattr(k, "A"):
        print(f"slice           : A={k.A} B={k.B}")
    geom = k.launch_geometry
    print(f"launch          : {geom.num_blocks} blocks x "
          f"{geom.threads_per_block} threads, "
          f"{geom.shared_mem_per_block} B smem")
    print(f"candidates      : {plan.num_candidates}")
    print(f"predicted time  : {plan.predicted_time * 1e3:.4f} ms")
    print(f"simulated time  : {plan.simulated_time() * 1e3:.4f} ms")
    print(f"plan overhead   : {plan.plan_time * 1e3:.4f} ms")
    print(f"bandwidth       : {plan.bandwidth_gbps():.1f} GB/s (repeated) / "
          f"{plan.bandwidth_gbps(include_plan=True):.1f} GB/s (single)")
    if plan.coarsening:
        print(f"coarsening      : dim {plan.coarsening[0]} "
              f"x{plan.coarsening[1]}")
    return 0


def cmd_compare(args) -> int:
    from repro.baselines import ALL_LIBRARIES

    spec = DEVICES[args.device]
    print(
        f"{'library':<16s} {'kernel':<22s} {'repeated GB/s':>14s} "
        f"{'single GB/s':>12s} {'plan ms':>9s}"
    )
    for lib_cls in ALL_LIBRARIES:
        lib = lib_cls(spec=spec)
        plan = lib.plan(args.dims, args.perm, _elem_bytes(args.dtype))
        print(
            f"{lib.name:<16s} {plan.kernel.schema.value:<22s} "
            f"{plan.bandwidth_gbps():>14.1f} "
            f"{plan.bandwidth_gbps(include_plan=True):>12.1f} "
            f"{plan.plan_time * 1e3:>9.3f}"
        )
    return 0


def cmd_predict(args) -> int:
    est = predict_time(
        args.dims, args.perm, _elem_bytes(args.dtype), DEVICES[args.device]
    )
    print(f"schema          : {est.schema.value}")
    print(f"kernel time     : {est.kernel_time * 1e3:.4f} ms")
    print(f"plan time       : {est.plan_time * 1e3:.4f} ms")
    print(f"bandwidth       : {est.bandwidth_gbps:.1f} GB/s")
    return 0


def cmd_device(args) -> int:
    print(DEVICES[args.device].describe())
    return 0


def _serve_problems(args):
    if args.problem:
        return list(args.problem)
    from repro.bench.suites import six_d_suite

    cases = six_d_suite(args.extent)
    step = max(1, len(cases) // args.unique)
    return [(c.dims, c.perm) for c in cases[::step]][: args.unique]


def _cmd_serve_listen(args) -> int:
    """The network front end: bind, serve, drain, snapshot."""
    import asyncio

    from repro.serving import ServingServer

    host, port = args.listen
    state_dir = Path(args.state_dir).expanduser()
    state_dir.mkdir(parents=True, exist_ok=True)

    async def run() -> dict:
        server = ServingServer(
            replicas=args.replicas,
            host=host,
            port=port,
            spec=DEVICES[args.device],
            store_path=state_dir / "plans.json",
            num_streams=args.streams,
            program_cache_size=args.program_cache,
            max_inflight=args.max_inflight,
            tenant_rate=args.tenant_rate,
            max_queue_depth=args.max_queue_depth,
            router=args.router,
            zero_copy=not args.copying_codec,
        )
        await server.start()
        print(
            f"serving on {server.address}: {args.replicas} replicas x "
            f"{args.streams} streams, router={args.router}, "
            f"max_inflight={args.max_inflight}, "
            f"data path={'copying' if args.copying_codec else 'zero-copy'}"
            + (
                f", stopping after {args.max_requests} requests"
                if args.max_requests
                else " (Ctrl-C to drain)"
            ),
            flush=True,
        )
        try:
            while True:
                await asyncio.sleep(0.05)
                if (
                    args.max_requests
                    and server.serving_snapshot()["counters"].get(
                        "serving.requests", 0
                    )
                    >= args.max_requests
                ):
                    break
        except asyncio.CancelledError:
            pass
        finally:
            drained = await server.drain()
            snapshot = server.serving_snapshot()
            await server.close()
            data_path = snapshot.get("data_path") or {}
            print(
                f"drained: {'clean' if drained else 'TIMED OUT'}, "
                f"{snapshot['counters'].get('serving.requests', 0)} requests "
                f"served, tensor bytes "
                f"{data_path.get('tensor_bytes_zero_copy', 0) / 1e6:.1f} MB "
                f"zero-copy / "
                f"{data_path.get('tensor_bytes_copied', 0) / 1e6:.1f} MB copied"
            )
        return snapshot

    try:
        snapshot = asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted before drain finished", file=sys.stderr)
        return 130
    (state_dir / "metrics.json").write_text(
        json.dumps({"serving": snapshot}, indent=2, sort_keys=True) + "\n"
    )
    print(f"state: {state_dir} (plans.json, metrics.json)")
    return 0


def cmd_serve(args) -> int:
    import queue
    import threading

    from repro.runtime import TransposeService

    if args.listen is not None:
        return _cmd_serve_listen(args)
    if args.batch_window > 0 and not args.payload:
        print(
            "error: --batch-window coalesces executions and requires "
            "--payload",
            file=sys.stderr,
        )
        return 2
    if (
        args.retrain_every is not None or args.retrain_every_s is not None
    ) and not args.feedback:
        print(
            "error: --retrain-every/--retrain-every-s schedule model "
            "retraining and require --feedback",
            file=sys.stderr,
        )
        return 2
    problems = _serve_problems(args)
    elem_bytes = _elem_bytes(args.dtype)
    state_dir = Path(args.state_dir).expanduser()
    state_dir.mkdir(parents=True, exist_ok=True)

    jobs: "queue.Queue" = queue.Queue()
    for i in range(args.requests):
        jobs.put(problems[i % len(problems)])

    service = TransposeService(
        spec=DEVICES[args.device],
        store_path=state_dir / "plans.json",
        num_streams=args.streams,
        store_autoflush=False,
        batch_window_s=args.batch_window,
        backend=args.backend,
        proc_workers=args.proc_workers,
        codegen_refine=args.codegen_refine,
        feedback=args.feedback,
        shadow_fraction=args.shadow_fraction,
        retrain_every=args.retrain_every,
        retrain_every_s=args.retrain_every_s,
    )
    errors = []

    payloads = {}
    if args.payload:
        import math

        import numpy as np

        rng = np.random.default_rng(0)
        dtype = np.float32 if elem_bytes == 4 else np.float64
        for dims, _ in problems:
            if dims not in payloads:
                payloads[dims] = rng.standard_normal(math.prod(dims)).astype(
                    dtype
                )

    def client() -> None:
        while True:
            try:
                dims, perm = jobs.get_nowait()
            except queue.Empty:
                return
            try:
                if args.batch_window > 0:
                    report = service.execute_batched(
                        dims, perm, elem_bytes, payloads[dims]
                    )
                elif args.payload and args.backend != "thread":
                    # The partitioned path is the one the backend router
                    # sees; forced index-map compilation makes the job
                    # process-pool-eligible when it is large enough.
                    report = service.execute_partitioned(
                        dims, perm, elem_bytes, payloads[dims],
                        lowering=False,
                    )
                else:
                    report = service.execute(
                        dims, perm, elem_bytes, payloads.get(dims)
                    )
                # The workload discards outputs: hand the buffer back so
                # the arena's free lists actually warm up.
                report.release()
            except Exception as exc:  # surface, don't hang the pool
                errors.append(exc)

    # The context manager guarantees the orderly teardown even when a
    # client raises: micro-batch windows drain, streams retire their
    # queues, process-pool workers join, and the plan store flushes.
    with service:
        started = time.perf_counter()
        clients = [
            threading.Thread(target=client, name=f"client-{i}", daemon=True)
            for i in range(args.clients)
        ]
        for t in clients:
            t.start()
        for t in clients:
            t.join()
        wall = time.perf_counter() - started
        if args.feedback and not errors:
            # Fold this run's telemetry into a candidate model before
            # snapshotting, so `repro stats` shows it shadowed.
            service.retrain_model()
        # Snapshot while the pool workers are still alive so their
        # warm-up counters make it into the metrics file.
        stats = service.stats()

    if errors:
        print(f"error: {errors[0]}", file=sys.stderr)
        return 1
    (state_dir / "metrics.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n"
    )

    counters = stats["metrics"]["counters"]
    built = counters.get("plans_built", 0)
    restored = counters.get("plans_restored", 0)
    hits = counters.get("cache_hits", 0)
    print(
        f"served {args.requests} requests ({len(problems)} distinct problems) "
        f"from {args.clients} clients over {args.streams} streams "
        f"in {wall:.3f} s ({args.requests / wall:.1f} req/s)"
    )
    print(
        f"plans: {built} built, {restored} restored from store, "
        f"{hits} cache hits "
        f"({stats['cache']['hit_rate'] * 100:.1f}% hit rate)"
    )
    sim = sum(stats["scheduler"]["sim_clock_s"])
    print(f"simulated GPU time: {sim * 1e3:.3f} ms across streams")
    if args.payload:
        ex = stats["executor"]
        print(
            f"executor programs: {ex['entries']} compiled, "
            f"{ex['hits']} hits / {ex['misses']} misses "
            f"({ex['hit_rate'] * 100:.1f}% warm)"
        )
    if args.batch_window > 0:
        b = stats["batching"]
        print(
            f"batching: {b['requests']} requests -> {b['flushes']} fused "
            f"runs, {b['coalesced']} coalesced "
            f"(window {b['window_s'] * 1e3:.1f} ms, "
            f"max batch {b['max_batch']})"
        )
    sched = stats["scheduler"]
    arena = sched.get("arena")
    if args.payload and arena:
        print(
            f"arena: {arena['reuses']} buffer reuses / "
            f"{arena['allocations']} allocations, "
            f"{arena['free_bytes'] / (1 << 20):.1f} MiB pooled"
        )
    pool = sched.get("procpool")
    if pool:
        print(
            f"procpool ({sched['backend']}): {pool['num_workers']} workers "
            f"({pool['start_method']}), {pool['jobs_dispatched']} jobs, "
            f"{pool['programs_built']} programs built / "
            f"{pool['program_hits']} hits, "
            f"{pool['pipe_rehydrations']} pipe + "
            f"{pool['store_rehydrations']} store rehydrations"
        )
    cg = stats.get("codegen")
    if cg and (cg.get("programs_generated") or cg.get("fallbacks")):
        print(
            f"codegen ({cg['backend']}): "
            f"{cg['programs_generated']} kernels generated, "
            f"{cg['fallbacks']} fallbacks, "
            f"artifact cache {cg['artifact_hits']} hits / "
            f"{cg['artifact_misses']} misses "
            f"({cg['search_s_saved'] * 1e3:.1f} ms search saved)"
        )
        native = cg.get("native") or {}
        if native.get("available") or cg.get("native_attached"):
            print(
                f"native ({native.get('cc') or 'no toolchain'}): "
                f"{cg.get('native_compiled', 0)} compiled, "
                f"{cg.get('native_so_cache_hits', 0)} .so cache hits, "
                f"{cg.get('native_attached', 0)} attached, "
                f"fallbacks {cg.get('native_compile_failures', 0)} compile / "
                f"{cg.get('native_load_failures', 0)} load / "
                f"{cg.get('native_call_failures', 0)} call"
            )
    model = stats.get("model")
    if model:
        active = (model.get("versions") or {}).get(model["active"]) or {}
        err = active.get("mean_err_pct")
        print(
            f"model: active {model['active']}"
            + (f" ({err:.1f}% shadow error)" if err is not None else "")
            + f", candidate {model['candidate'] or 'none'}, "
            f"{model['observed']} shadowed observations, "
            f"{model['promotions']} promotions"
        )
    print(
        f"state: {state_dir} "
        f"(plans.json: {stats['store']['entries']} entries "
        f"+ {stats['store'].get('artifacts', 0)} artifacts, metrics.json)"
    )
    return 0


def _print_histogram_lines(histograms: dict) -> None:
    for name in sorted(histograms):
        h = histograms[name]
        print(
            f"  {name:<28s} count {h['count']:>6d}  "
            f"mean {h['mean_s'] * 1e3:9.4f} ms  "
            f"max {h['max_s'] * 1e3:9.4f} ms"
        )


def _print_serving_block(serving: dict) -> None:
    """Pretty-print one ``serving_snapshot()`` payload."""
    print(
        f"serving: protocol v{serving.get('protocol_version', '?')}, "
        f"{serving.get('replicas', '?')} replicas, "
        f"router={serving.get('router', '?')}, "
        f"data path={'zero-copy' if serving.get('zero_copy') else 'copying'}"
        + (" (draining)" if serving.get("draining") else "")
    )
    data_path = serving.get("data_path")
    if data_path:
        copied = data_path.get("tensor_bytes_copied", 0)
        zero = data_path.get("tensor_bytes_zero_copy", 0)
        arena = serving.get("arena") or {}
        print(
            f"data path: {zero / 1e6:.1f} MB zero-copy, "
            f"{copied / 1e6:.1f} MB copied; arena "
            f"{arena.get('reuses', 0)} lease reuses / "
            f"{arena.get('allocations', 0)} allocations, "
            f"{arena.get('active_blocks', 0)} active, "
            f"{arena.get('leaked', 0)} leaked"
        )
    counters = serving.get("counters") or {}
    if counters:
        for name in sorted(counters):
            print(f"  {name:<36s} {counters[name]}")
    else:
        print("  counters: n/a")
    admission = serving.get("admission")
    if admission:
        quota = (
            f"{admission['tenant_rate']:g}/s "
            f"(burst {admission['tenant_burst']:g})"
            if admission.get("tenant_rate") is not None
            else "off"
        )
        print(
            f"admission: {admission.get('inflight', 0)}/"
            f"{admission.get('max_inflight', '?')} inflight, "
            f"{admission.get('admitted', 0)} admitted, "
            f"shed {admission.get('shed_overloaded', 0)} overloaded / "
            f"{admission.get('shed_quota', 0)} quota, "
            f"tenants {admission.get('tenants', 0)}, quota {quota}"
        )
    else:
        print("admission: n/a")
    for rep in serving.get("per_replica") or []:
        executor = rep.get("executor") or {}
        plan_cache = rep.get("plan_cache") or {}
        hit_rate = executor.get("hit_rate")
        programs = (
            f"programs {executor.get('entries', 0)}/"
            f"{executor.get('maxsize', '?')} "
            f"({hit_rate * 100:.1f}% hits, "
            f"{executor.get('evictions', 0)} evicted)"
            if hit_rate is not None
            else "programs n/a"
        )
        print(
            f"  replica {rep.get('replica', '?')}: "
            f"routed {rep.get('routed', 0)}, "
            f"queue {rep.get('queue_depth', 0)}, "
            f"inflight {rep.get('inflight', 0)}, {programs}, "
            f"plans {plan_cache.get('resident', 0)} "
            f"({plan_cache.get('hit_rate', 0.0) * 100:.1f}% hits)"
        )
    store = serving.get("store")
    if store:
        print(
            f"store: {store['entries']} entries at {store['path']} "
            f"(v{store['store_version']})"
        )


def _stats_connect(args) -> int:
    """Live ``stats`` query against a running serving front end."""
    import asyncio

    from repro.serving import ServingClient

    host, port = args.connect

    async def fetch() -> dict:
        async with ServingClient(host, port, pool_size=1) as client:
            return await client.stats()

    try:
        serving = asyncio.run(fetch())
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"serving": serving}, indent=2, sort_keys=True))
        return 0
    print(f"serving stats — live from {host}:{port}")
    _print_serving_block(serving)
    runtime = serving.get("runtime_counters") or {}
    if runtime:
        print("runtime counters (all replicas):")
        for name in sorted(runtime):
            print(f"  {name:<28s} {runtime[name]}")
    return 0


def cmd_stats(args) -> int:
    if args.connect is not None:
        return _stats_connect(args)
    state_dir = Path(args.state_dir).expanduser()
    path = state_dir / "metrics.json"
    if not path.exists():
        print(
            f"no metrics snapshot at {path}; "
            "run `python -m repro serve` first",
            file=sys.stderr,
        )
        return 1
    payload = json.loads(path.read_text())
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"runtime stats — device: {payload.get('device', 'n/a')}")
    metrics = payload.get("metrics")
    if metrics:
        counters = metrics.get("counters") or {}
        print("counters:")
        for name in sorted(counters):
            print(f"  {name:<28s} {counters[name]}")
        gauges = metrics.get("gauges") or {}
        if gauges:
            print("gauges:")
            for name in sorted(gauges):
                print(f"  {name:<28s} {gauges[name]}")
        print("latency histograms:")
        _print_histogram_lines(metrics.get("histograms") or {})
    else:
        print("metrics: n/a")
    cache = payload.get("cache")
    if cache:
        print(
            f"cache: {cache['resident_plans']}/{cache['capacity']} plans, "
            f"{cache['hits']} hits / {cache['misses']} misses "
            f"({cache['hit_rate'] * 100:.1f}%), "
            f"{cache['store_hits']} store hits"
        )
    else:
        print("cache: n/a")
    executor = payload.get("executor")
    if executor:
        print(
            f"executor: {executor['entries']}/{executor['maxsize']} programs "
            f"({executor['bytes'] / 1024:.0f} KiB of index maps), "
            f"{executor['hits']} hits / {executor['misses']} misses "
            f"({executor['hit_rate'] * 100:.1f}%), "
            f"{executor['evictions']} evicted"
        )
    sched = payload.get("scheduler")
    if sched:
        clocks = " ".join(f"{c * 1e3:.3f}" for c in sched["sim_clock_s"])
        print(
            f"streams: {sched['num_streams']} on "
            f"{', '.join(sched['devices'])}; "
            f"sim clocks (ms): {clocks}; jobs {sched['jobs_done']}"
        )
    else:
        sched = {}
        print("scheduler: n/a")
    arena = sched.get("arena")
    if arena:
        print(
            f"arena: {arena['reuses']} reuses / {arena['allocations']} "
            f"allocations ({arena['trimmed']} trimmed, "
            f"{arena['leaked']} leaked, "
            f"{arena['auto_reclaimed']} auto-reclaimed), "
            f"{arena['free_blocks']} free blocks / "
            f"{arena['free_bytes'] / (1 << 20):.1f} MiB pooled"
        )
    pool = sched.get("procpool")
    if pool:
        print(
            f"procpool: backend={sched.get('backend', '?')}, "
            f"{pool['num_workers']} workers ({pool['start_method']}), "
            f"{pool['jobs_dispatched']} jobs "
            f"({pool['jobs_failed']} failed), "
            f"{pool['tasks']} tasks, "
            f"{pool['programs_built']} programs built / "
            f"{pool['program_hits']} hits, "
            f"rehydrated {pool['pipe_rehydrations']} via pipe / "
            f"{pool['store_rehydrations']} via store"
        )
    batching = payload.get("batching")
    if batching:
        print(
            f"batching: {batching['requests']} requests -> "
            f"{batching['flushes']} fused runs, "
            f"{batching['coalesced']} coalesced "
            f"(window {batching['window_s'] * 1e3:.1f} ms, "
            f"max batch {batching['max_batch']})"
        )
        per_key = batching.get("per_key") or {}
        for key in sorted(per_key):
            pk = per_key[key]
            print(
                f"  {key:<40s} {pk['requests']:>5d} req  "
                f"{pk['flushes']:>4d} runs  "
                f"coalesced {pk['coalesced']:>4d}  "
                f"largest {pk['max_batch']}"
            )
    autotune = payload.get("autotune")
    if autotune and autotune.get("cells"):
        print(
            f"autotune: pool {autotune['pool_size']}, "
            f"candidates {autotune['candidates']} "
            f"(min {autotune['min_samples']} samples each)"
        )
        for key in sorted(autotune["cells"]):
            cell = autotune["cells"][key]
            row = "  ".join(
                f"p={p}: {s['mean_ms']:.3f} ms / {s['gbps']:.2f} GB/s "
                f"(n={s['count']})"
                for p, s in cell["parts"].items()
            )
            best = cell["best_parts"]
            marker = f"best parts={best}" if best else "exploring"
            print(f"  {key:<16s} {marker:<16s} {row}")
    codegen = payload.get("codegen")
    if codegen:
        saved_ms = codegen.get("search_s_saved", 0.0) * 1e3
        print(
            f"codegen: backend={codegen.get('backend', '?')}, "
            f"{codegen.get('programs_generated', 0)} kernels generated / "
            f"{codegen.get('fallbacks', 0)} fallbacks, "
            f"{codegen.get('searches', 0)} searches "
            f"({codegen.get('search_s', 0.0) * 1e3:.1f} ms), "
            f"artifact cache {codegen.get('artifact_hits', 0)} hits / "
            f"{codegen.get('artifact_misses', 0)} misses "
            f"({saved_ms:.1f} ms search saved)"
        )
        native = codegen.get("native") or {}
        if native.get("available") or codegen.get("native_attached"):
            cc = native.get("cc") or "no toolchain"
            version = native.get("cc_version") or ""
            print(
                f"  native: cc={cc}"
                + (f" ({version})" if version else "")
                + f", {codegen.get('native_compiled', 0)} compiled / "
                f"{codegen.get('native_so_cache_hits', 0)} .so cache hits, "
                f"{codegen.get('native_attached', 0)} attached, "
                f"fallbacks {codegen.get('native_compile_failures', 0)} "
                f"compile / {codegen.get('native_load_failures', 0)} load / "
                f"{codegen.get('native_call_failures', 0)} call"
            )
        wins = codegen.get("backend_wins") or {}
        for kind in sorted(wins):
            row = "  ".join(
                f"{backend}: {count}"
                for backend, count in sorted(wins[kind].items())
            )
            print(f"  {kind:<16s} cells won  {row}")
    model = payload.get("model")
    if model:
        print(
            f"model: active {model.get('active', 'offline')}, "
            f"candidate {model.get('candidate') or 'none'}, "
            f"shadow fraction {model.get('shadow_fraction', 0):g}, "
            f"{model.get('observed', 0)} observations, "
            f"{model.get('promotions', 0)} promotions"
        )
        for version in sorted(model.get("versions") or {}):
            v = model["versions"][version]
            err = v.get("mean_err_pct")
            marker = " (active)" if version == model.get("active") else (
                " (candidate)" if version == model.get("candidate") else ""
            )
            print(
                f"  {version:<10s}{marker:<12s} "
                f"shadow n={v.get('shadow_count', 0):<5d} "
                + (f"err {err:6.1f}%  " if err is not None else
                   "err    n/a  ")
                + " ".join(
                    f"{schema}: {s['mean_err_pct']:.1f}% (n={s['count']})"
                    for schema, s in sorted(
                        (v.get("schemas") or {}).items()
                    )
                )
            )
        # Backend routing lives in the same decision loop: what the
        # calibrator measured beats what any model predicted.
        wins = (payload.get("codegen") or {}).get("backend_wins") or {}
        if wins:
            row = "  ".join(
                f"{kind}: " + "/".join(
                    f"{b}={c}" for b, c in sorted(wins[kind].items())
                )
                for kind in sorted(wins)
            )
            print(f"  backend wins  {row}")
    store = payload.get("store")
    if store:
        print(
            f"store: {store['entries']} entries "
            f"+ {store.get('artifacts', 0)} artifacts at {store['path']} "
            f"(v{store['store_version']}, "
            f"{store['corrupt_entries_dropped']} corrupt dropped)"
        )
    serving = payload.get("serving")
    if serving:
        _print_serving_block(serving)
    return 0


def cmd_profile(args) -> int:
    from repro.gpusim.profile import profile_kernel

    plan = plan_transpose(
        args.dims, args.perm, _elem_bytes(args.dtype), DEVICES[args.device]
    )
    print(profile_kernel(plan.kernel).format_report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TTLG reproduction CLI (simulated GPU)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_problem(p):
        p.add_argument("dims", type=_ints, help="extents, dim 0 fastest")
        p.add_argument("perm", type=_ints, help="permutation, paper convention")
        p.add_argument(
            "--dtype",
            type=_dtype,
            default="f64",
            metavar="{" + ",".join(sorted(DTYPES)) + "}",
        )
        p.add_argument("--device", choices=tuple(DEVICES), default="k40c")

    p = sub.add_parser("plan", help="plan one transposition")
    add_problem(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("compare", help="compare all libraries")
    add_problem(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("predict", help="query the performance model")
    add_problem(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("profile", help="nvprof-style report for a plan")
    add_problem(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("device", help="print the simulated device spec")
    p.add_argument("device", nargs="?", choices=tuple(DEVICES), default="k40c")
    p.set_defaults(func=cmd_device)

    p = sub.add_parser(
        "serve", help="run a workload through the serving runtime"
    )
    p.add_argument(
        "--problem",
        type=_problem,
        action="append",
        metavar="DIMS:PERM",
        help="explicit problem (repeatable); default: a 6D suite sample",
    )
    p.add_argument("--extent", type=int, default=8,
                   help="extent of the default 6D problems (default 8)")
    p.add_argument("--unique", type=int, default=8,
                   help="number of distinct default problems (default 8)")
    p.add_argument("--requests", type=int, default=64,
                   help="total requests to serve (default 64)")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent client threads (default 4)")
    p.add_argument("--streams", type=int, default=4,
                   help="simulated execution streams (default 4)")
    p.add_argument("--payload", action="store_true",
                   help="move real data (exercises the compiled executors)")
    p.add_argument(
        "--batch-window", type=float, default=0.0, metavar="S",
        help="micro-batching window in seconds: coalesce concurrent "
             "same-problem requests into fused batched runs "
             "(requires --payload; default 0 = off)",
    )
    p.add_argument(
        "--backend", choices=("thread", "process", "codegen", "auto"),
        default="thread",
        help="execution tier for eligible jobs: the in-process thread "
             "pool, the out-of-GIL shared-memory process pool, "
             "generated cache-blocked loop nests (codegen), or "
             "calibrated auto routing (default %(default)s)",
    )
    p.add_argument(
        "--proc-workers", type=int, default=None, metavar="N",
        help="process-pool worker count (default: os.cpu_count(); "
             "only used with --backend process/auto)",
    )
    p.add_argument(
        "--codegen-refine", type=int, default=0, metavar="K",
        help="keep the top-K analytic nest configs and let a timed "
             "micro-probe on this host pick the winner (persisted as a "
             "plan-store artifact; default 0 = analytic winner only)",
    )
    p.add_argument(
        "--feedback", action="store_true",
        help="attach the model feedback loop: sample executions into "
             "per-schema reservoirs, shadow-score model versions, and "
             "retrain a candidate from this run's telemetry "
             "(state persists as models.json in --state-dir)",
    )
    p.add_argument(
        "--shadow-fraction", type=float, default=None, metavar="F",
        help="fraction of executions shadow-predicted under every "
             "model version (default 0.25; requires --feedback)",
    )
    p.add_argument(
        "--retrain-every", type=int, default=None, metavar="N",
        help="retrain a candidate model every N resolved requests from "
             "a background tick (requires --feedback)",
    )
    p.add_argument(
        "--retrain-every-s", type=float, default=None, metavar="SEC",
        help="retrain a candidate model every SEC seconds from a "
             "background tick (requires --feedback; combinable with "
             "--retrain-every)",
    )
    p.add_argument(
        "--dtype",
        type=_dtype,
        default="f64",
        metavar="{" + ",".join(sorted(DTYPES)) + "}",
    )
    p.add_argument("--device", choices=tuple(DEVICES), default="k40c")
    p.add_argument("--state-dir", default=DEFAULT_STATE_DIR,
                   help="plan store + metrics location (default %(default)s)")
    net = p.add_argument_group(
        "network mode", "serve over TCP instead of the in-process workload"
    )
    net.add_argument(
        "--listen", type=_addr, default=None, metavar="HOST:PORT",
        help="bind the asyncio serving front end here (port 0 = ephemeral); "
             "when set the workload options above are ignored",
    )
    net.add_argument("--replicas", type=int, default=2,
                     help="TransposeService shards (default %(default)s)")
    net.add_argument(
        "--router", choices=("hash", "random", "round_robin"), default="hash",
        help="plan-key routing policy (default %(default)s)",
    )
    net.add_argument("--max-inflight", type=int, default=256,
                     help="admitted-request cap before OVERLOADED "
                          "(default %(default)s)")
    net.add_argument(
        "--tenant-rate", type=float, default=None, metavar="R",
        help="per-tenant quota in requests/s (default: no quotas)",
    )
    net.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="shed when the routed replica's backlog exceeds N",
    )
    net.add_argument(
        "--program-cache", type=int, default=None, metavar="N",
        help="per-replica compiled-program cache entries",
    )
    net.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="drain and exit after N requests (default: run until Ctrl-C)",
    )
    net.add_argument(
        "--copying-codec", action="store_true",
        help="disable the zero-copy data path (the comparison baseline: "
             "contiguous frames out, owned array copies in)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "stats", help="print the metrics snapshot of the last serve run"
    )
    p.add_argument("--state-dir", default=DEFAULT_STATE_DIR,
                   help="state location written by serve (default %(default)s)")
    p.add_argument("--json", action="store_true", help="raw JSON output")
    p.add_argument(
        "--connect", type=_addr, default=None, metavar="HOST:PORT",
        help="query a live serving front end instead of reading the "
             "metrics.json snapshot",
    )
    p.set_defaults(func=cmd_stats)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
