"""Tests for the performance-model stack (features, regression, dataset,
trainer, store, pretrained)."""

import json

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.taxonomy import Schema
from repro.errors import ModelError
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel
from repro.model.dataset import (
    ORDERINGS,
    TransposeCase,
    base_extent_for_volume,
    generate_cases,
    ordered_extents,
    train_test_split,
)
from repro.model.features import FEATURE_NAMES, feature_matrix, feature_vector
from repro.model.pretrained import (
    load_pretrained,
    model_predictor,
    oracle_predictor,
    pretrained_predictor,
)
from repro.model.regression import LinearRegression
from repro.model.store import load_models, models_from_dict, models_to_dict, save_models
from repro.model.trainer import candidate_kernels_for_case, train


def od_kernel(dims=(64, 3, 64), perm=(2, 1, 0)):
    return OrthogonalDistinctKernel(
        TensorLayout(dims), Permutation(perm), 1, 1, 1, 1
    )


class TestFeatures:
    def test_feature_vector_order_is_stable(self):
        k = od_kernel()
        v = feature_vector(k)
        names = FEATURE_NAMES[Schema.ORTHOGONAL_DISTINCT]
        assert len(v) == len(names)
        assert v[names.index("volume")] == k.volume

    def test_feature_matrix(self):
        ks = [od_kernel(), od_kernel((32, 5, 32))]
        X = feature_matrix(ks)
        assert X.shape == (2, 5)

    def test_feature_matrix_mixed_schema_rejected(self):
        from repro.kernels.naive import NaiveKernel

        nk = NaiveKernel(TensorLayout((32, 32)), Permutation((1, 0)))
        with pytest.raises(ValueError):
            feature_matrix([od_kernel(), nk])

    def test_table2_feature_sets(self):
        """Feature names reproduce Table II rows."""
        assert FEATURE_NAMES[Schema.ORTHOGONAL_DISTINCT] == [
            "volume", "num_blocks", "input_slice", "output_slice", "cycles",
        ]
        assert FEATURE_NAMES[Schema.ORTHOGONAL_ARBITRARY] == [
            "volume", "num_threads", "total_slice", "input_stride",
            "output_stride", "special_instr", "cycles",
        ]


class TestRegression:
    def test_recovers_linear_relationship(self, rng):
        X = rng.uniform(1, 100, size=(500, 3))
        true = np.array([2.0, -0.5, 1.5])
        y = X @ true + 7.0
        m = LinearRegression().fit(X, y, ["a", "b", "c"], weighting="none")
        np.testing.assert_allclose(m.coef, true, rtol=1e-8)
        assert m.intercept == pytest.approx(7.0)

    def test_relative_weighting_fits_small_points(self, rng):
        """With targets spanning decades, relative weighting keeps small
        points accurate where plain OLS sacrifices them."""
        X = np.concatenate(
            [rng.uniform(1, 2, (300, 1)), rng.uniform(1e3, 1e4, (30, 1))]
        )
        y = (3.0 * X[:, 0] + 0.5) * np.exp(rng.normal(0, 0.05, len(X)))
        rel = LinearRegression().fit(X, y, ["x"], weighting="relative")
        ols = LinearRegression().fit(X, y, ["x"], weighting="none")
        assert rel.precision_error_pct(X, y) <= ols.precision_error_pct(X, y)

    def test_summary_statistics(self, rng):
        X = rng.uniform(1, 10, (200, 2))
        y = X @ np.array([1.0, 2.0]) + rng.normal(0, 0.01, 200) + 5
        m = LinearRegression().fit(X, y, ["f1", "f2"], weighting="none")
        s = m.summary
        assert s.r_squared > 0.99
        assert all(r.p_value < 0.05 for r in s.rows)
        assert "f1" in s.format_table()

    def test_precision_metric_definition(self):
        m = LinearRegression().fit(
            np.arange(10, dtype=float)[:, None] + 1,
            np.arange(10, dtype=float) + 1,
            ["x"],
        )
        # perfect fit -> ~0 % error
        assert m.precision_error_pct(
            np.arange(10, dtype=float)[:, None] + 1,
            np.arange(10, dtype=float) + 1,
        ) < 1e-6

    def test_too_few_samples(self):
        with pytest.raises(ModelError):
            LinearRegression().fit(np.ones((3, 3)), np.ones(3), list("abc"))

    def test_unknown_weighting(self):
        with pytest.raises(ModelError):
            LinearRegression().fit(
                np.ones((10, 1)), np.ones(10), ["x"], weighting="huh"
            )

    def test_predict_shape_check(self):
        m = LinearRegression().fit(
            np.random.default_rng(0).uniform(1, 2, (20, 2)),
            np.ones(20),
            ["a", "b"],
        )
        with pytest.raises(ModelError):
            m.predict(np.ones((5, 3)))


class TestDataset:
    def test_orderings_shapes(self):
        for o in ORDERINGS:
            dims = ordered_extents(5, 16, o)
            assert len(dims) == 5
            assert all(d >= 2 for d in dims)

    def test_increasing_monotone(self):
        dims = ordered_extents(4, 20, "increasing")
        assert list(dims) == sorted(dims)

    def test_decreasing_monotone(self):
        dims = ordered_extents(4, 20, "decreasing")
        assert list(dims) == sorted(dims, reverse=True)

    def test_peak_shape(self):
        dims = ordered_extents(5, 20, "peak")
        mid = max(range(5), key=lambda i: dims[i])
        assert 0 < mid < 4

    def test_base_extent(self):
        assert base_extent_for_volume(3, 27_000) == 30

    def test_generate_cases_counts(self):
        cases = generate_cases(
            ranks=(3,), volumes=(1000,), max_perms_per_rank=4
        )
        # Ordering grid plus the forced FVI-match and small-FVI cases.
        assert len(cases) >= len(ORDERINGS) * 4
        assert all(isinstance(c, TransposeCase) for c in cases)
        assert any(c.perm[0] == 0 for c in cases)  # FVI coverage forced
        assert any(c.dims[0] < 32 for c in cases)

    def test_identity_excluded(self):
        cases = generate_cases(ranks=(3,), volumes=(1000,))
        assert all(c.perm != tuple(range(3)) for c in cases)

    def test_split_fractions(self):
        tr, te = train_test_split(list(range(100)), 0.8)
        assert len(tr) == 80 and len(te) == 20
        assert sorted(tr + te) == list(range(100))

    def test_split_deterministic(self):
        a = train_test_split(list(range(50)), seed=3)
        b = train_test_split(list(range(50)), seed=3)
        assert a == b


class TestTrainer:
    @pytest.fixture(scope="class")
    def report(self):
        cases = generate_cases(
            ranks=(3, 4), volumes=(2 * 1024**2,), max_perms_per_rank=5
        )
        return train(cases)

    def test_models_for_main_schemas(self, report):
        assert Schema.ORTHOGONAL_DISTINCT in report.models
        assert Schema.ORTHOGONAL_ARBITRARY in report.models

    def test_precision_in_paper_band(self, report):
        """Paper: OD ~4.2 %, OA ~11 %. Allow a loose band."""
        assert report.test_error_pct[Schema.ORTHOGONAL_DISTINCT] < 15.0
        assert report.test_error_pct[Schema.ORTHOGONAL_ARBITRARY] < 25.0

    def test_train_test_errors_similar(self, report):
        for s in (Schema.ORTHOGONAL_DISTINCT, Schema.ORTHOGONAL_ARBITRARY):
            assert (
                abs(report.train_error_pct[s] - report.test_error_pct[s])
                < 10.0
            )

    def test_summary_renders(self, report):
        text = report.format_summary()
        assert "precision error" in text

    def test_candidates_cover_fvi_schemas(self):
        case = TransposeCase(dims=(8, 16, 16, 16), perm=(0, 3, 2, 1))
        from repro.gpusim.spec import KEPLER_K40C

        ks = candidate_kernels_for_case(case, KEPLER_K40C)
        schemas = {k.schema for k in ks}
        assert Schema.FVI_MATCH_SMALL in schemas
        assert Schema.FVI_MATCH_LARGE in schemas


class TestStore:
    def test_roundtrip(self, tmp_path, rng):
        X = rng.uniform(1, 10, (50, 5))
        y = X @ rng.uniform(0.1, 1, 5) + 2
        m = LinearRegression().fit(
            X, y, FEATURE_NAMES[Schema.ORTHOGONAL_DISTINCT]
        )
        path = tmp_path / "m.json"
        save_models({Schema.ORTHOGONAL_DISTINCT: m}, path)
        loaded = load_models(path)
        np.testing.assert_allclose(
            loaded[Schema.ORTHOGONAL_DISTINCT].coef, m.coef
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_models(tmp_path / "nope.json")

    def test_bad_version(self):
        with pytest.raises(ModelError):
            models_from_dict({"format_version": 99, "models": {}})

    def test_bad_schema_name(self):
        with pytest.raises(ModelError):
            models_from_dict(
                {
                    "format_version": 1,
                    "models": {
                        "bogus": {
                            "feature_names": ["x"],
                            "coef": [1.0],
                            "intercept": 0.0,
                        }
                    },
                }
            )


class TestPretrained:
    def test_shipped_models_load(self):
        models = load_pretrained()
        assert Schema.ORTHOGONAL_DISTINCT in models
        assert Schema.ORTHOGONAL_ARBITRARY in models

    def test_predictor_positive_times(self):
        pred = pretrained_predictor()
        assert pred(od_kernel()) > 0

    def test_predictor_fallback_for_missing_schema(self):
        from repro.gpusim.cost import CostModel
        from repro.kernels.naive import NaiveKernel

        pred = model_predictor({}, fallback=CostModel())
        nk = NaiveKernel(TensorLayout((32, 32)), Permutation((1, 0)))
        assert pred(nk) > 0

    def test_predictor_without_fallback_raises(self):
        pred = model_predictor({})
        with pytest.raises(ModelError):
            pred(od_kernel())

    def test_oracle_equals_simulated_time(self):
        k = od_kernel()
        assert oracle_predictor()(k) == pytest.approx(k.simulated_time())
