"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
plan DIMS PERM [--dtype f32|f64] [--device k40c|p100]
    Plan a transposition and print the chosen schema, parameters,
    predicted/simulated time, and bandwidth.

compare DIMS PERM [--device ...]
    Plan the same problem with TTLG, cuTT (both modes), and TTC and
    print a comparison table (repeated and single use).

predict DIMS PERM
    The queryable model: estimated time/bandwidth without executing.

device [k40c|p100]
    Print the simulated device configuration (Table III analogue).

``DIMS`` and ``PERM`` are comma-separated, dim 0 fastest, permutation in
the paper convention (``perm[i] = j``: output dim i is input dim j).

Example::

    python -m repro plan 16,16,16,16,16,16 5,4,3,2,1,0
"""

from __future__ import annotations

import argparse
import sys
from typing import Tuple

from repro.core.api import plan_transpose, predict_time
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100

DEVICES = {"k40c": KEPLER_K40C, "p100": PASCAL_P100}


def _ints(text: str) -> Tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from exc


def _elem_bytes(dtype: str) -> int:
    return {"f32": 4, "f64": 8}[dtype]


def cmd_plan(args) -> int:
    plan = plan_transpose(
        args.dims, args.perm, _elem_bytes(args.dtype), DEVICES[args.device]
    )
    k = plan.kernel
    print(f"dims            : {plan.layout.dims} (dim 0 fastest)")
    print(f"perm            : {plan.perm.mapping}")
    print(f"fused           : dims {plan.fused.layout.dims} "
          f"perm {plan.fused.perm.mapping} (scaled rank "
          f"{plan.fused.scaled_rank})")
    print(f"schema          : {plan.schema.value}")
    if hasattr(k, "A"):
        print(f"slice           : A={k.A} B={k.B}")
    geom = k.launch_geometry
    print(f"launch          : {geom.num_blocks} blocks x "
          f"{geom.threads_per_block} threads, "
          f"{geom.shared_mem_per_block} B smem")
    print(f"candidates      : {plan.num_candidates}")
    print(f"predicted time  : {plan.predicted_time * 1e3:.4f} ms")
    print(f"simulated time  : {plan.simulated_time() * 1e3:.4f} ms")
    print(f"plan overhead   : {plan.plan_time * 1e3:.4f} ms")
    print(f"bandwidth       : {plan.bandwidth_gbps():.1f} GB/s (repeated) / "
          f"{plan.bandwidth_gbps(include_plan=True):.1f} GB/s (single)")
    if plan.coarsening:
        print(f"coarsening      : dim {plan.coarsening[0]} "
              f"x{plan.coarsening[1]}")
    return 0


def cmd_compare(args) -> int:
    from repro.baselines import ALL_LIBRARIES

    spec = DEVICES[args.device]
    print(
        f"{'library':<16s} {'kernel':<22s} {'repeated GB/s':>14s} "
        f"{'single GB/s':>12s} {'plan ms':>9s}"
    )
    for lib_cls in ALL_LIBRARIES:
        lib = lib_cls(spec=spec)
        plan = lib.plan(args.dims, args.perm, _elem_bytes(args.dtype))
        print(
            f"{lib.name:<16s} {plan.kernel.schema.value:<22s} "
            f"{plan.bandwidth_gbps():>14.1f} "
            f"{plan.bandwidth_gbps(include_plan=True):>12.1f} "
            f"{plan.plan_time * 1e3:>9.3f}"
        )
    return 0


def cmd_predict(args) -> int:
    est = predict_time(
        args.dims, args.perm, _elem_bytes(args.dtype), DEVICES[args.device]
    )
    print(f"schema          : {est.schema.value}")
    print(f"kernel time     : {est.kernel_time * 1e3:.4f} ms")
    print(f"plan time       : {est.plan_time * 1e3:.4f} ms")
    print(f"bandwidth       : {est.bandwidth_gbps:.1f} GB/s")
    return 0


def cmd_device(args) -> int:
    print(DEVICES[args.device].describe())
    return 0


def cmd_profile(args) -> int:
    from repro.gpusim.profile import profile_kernel

    plan = plan_transpose(
        args.dims, args.perm, _elem_bytes(args.dtype), DEVICES[args.device]
    )
    print(profile_kernel(plan.kernel).format_report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TTLG reproduction CLI (simulated GPU)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_problem(p):
        p.add_argument("dims", type=_ints, help="extents, dim 0 fastest")
        p.add_argument("perm", type=_ints, help="permutation, paper convention")
        p.add_argument("--dtype", choices=("f32", "f64"), default="f64")
        p.add_argument("--device", choices=tuple(DEVICES), default="k40c")

    p = sub.add_parser("plan", help="plan one transposition")
    add_problem(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("compare", help="compare all libraries")
    add_problem(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("predict", help="query the performance model")
    add_problem(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("profile", help="nvprof-style report for a plan")
    add_problem(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("device", help="print the simulated device spec")
    p.add_argument("device", nargs="?", choices=tuple(DEVICES), default="k40c")
    p.set_defaults(func=cmd_device)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
