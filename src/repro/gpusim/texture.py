"""Texture-cache model for the offset arrays.

TTLG maps the precomputed offset arrays (Alg. 4) to texture memory because
they are read-only, shared by every thread block, and heavily reused; the
paper reports cache hit rates "generally greater than 99 %" (Sec. IV).

The model here is deliberately simple: the first pass over an offset
array misses (one transaction per cache line), every subsequent access
hits with probability :data:`HIT_RATE`.  Kernels only need the aggregate
miss-transaction count; latency hiding is the cost model's job.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Steady-state texture-cache hit rate (paper: > 99 %).
HIT_RATE = 0.995

#: Texture cache line size in bytes (Kepler: 32 B sectors, 128 B lines;
#: we use the 128 B line to stay consistent with DRAM transactions).
LINE_BYTES = 128


@dataclass(frozen=True)
class TextureTraffic:
    """Aggregate texture activity for a kernel launch."""

    accesses: int
    miss_tx: int

    def __post_init__(self) -> None:
        if self.accesses < 0 or self.miss_tx < 0:
            raise ValueError("texture traffic counts must be >= 0")
        if self.miss_tx > max(self.accesses, 0):
            raise ValueError("miss_tx cannot exceed accesses")


def offset_array_traffic(
    array_bytes: int,
    warp_accesses: int,
    hit_rate: float = HIT_RATE,
    line_bytes: int = LINE_BYTES,
) -> TextureTraffic:
    """Traffic for one offset array.

    Parameters
    ----------
    array_bytes:
        Size of the offset array in bytes.
    warp_accesses:
        Total warp-level reads of the array across the launch.
    hit_rate:
        Steady-state hit probability for accesses beyond the compulsory
        first pass.

    Returns
    -------
    TextureTraffic
        ``accesses`` echoes the input; ``miss_tx`` is the compulsory
        misses (one per line) plus the steady-state miss fraction of the
        remaining accesses, never exceeding total accesses.
    """
    if array_bytes < 0:
        raise ValueError(f"array_bytes must be >= 0, got {array_bytes}")
    if warp_accesses < 0:
        raise ValueError(f"warp_accesses must be >= 0, got {warp_accesses}")
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
    compulsory = -(-array_bytes // line_bytes) if array_bytes else 0
    steady = max(warp_accesses - compulsory, 0)
    misses = compulsory + int(round(steady * (1.0 - hit_rate)))
    misses = min(misses, warp_accesses)
    return TextureTraffic(accesses=warp_accesses, miss_tx=misses)
