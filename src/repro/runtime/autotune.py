"""Online throughput calibration for partitioned/batched execution.

``submit_partitioned`` historically required the caller to guess
``parts=`` — how many disjoint tasks to fan one program across the
worker pool.  The right answer depends on the program kind (a view
chain's strided copies release the GIL very differently from a fused
gather), on the problem size (small moves are dominated by task
dispatch, large ones by bandwidth), and on the host — none of which a
caller can know.  cuTT ships heuristics tuned offline for exactly this
choice; here the heuristic is *measured online*: the first runs of each
``(kind, size-class)`` cell round-robin through a small candidate set
of part counts, the observed wall-clock throughput is recorded, and
every later run exploits the measured argmax.

The calibration table persists as JSON next to the plan store
(``autotune.json``), so a restarted process starts exploited, not
exploring — the same across-restart amortization the plan store gives
planning.

With the process-pool execution tier the table gained a **backend
axis**: cells are keyed ``backend:kind|2^cls`` and
:meth:`ThroughputCalibrator.choose_backend` picks between the thread
pool and the process pool for the cells where the router has a real
choice (large indexed/chunked programs — see
:mod:`repro.runtime.procpool`), by the same explore-then-exploit rule
``choose`` uses for ``parts``.

The codegen tier (:mod:`repro.kernels.codegen`) adds a third routable
backend, ``codegen`` — the same thread pool, but running a generated
cache-blocked loop nest instead of the index-map program — and with it
the wrinkle that a backend can turn out not to *exist* for a cell: the
nest search may judge a geometry unprofitable and fall back.  The
scheduler reports that with :meth:`ThroughputCalibrator
.mark_unavailable`, which pins the cell off that backend so
``choose_backend`` never explores it again (otherwise the explore rule
would retry the doomed backend forever).  Unavailability persists with
the measurements.

The v3 table turns exploitation **Bayesian**: each candidate keeps a
Welford running mean/variance of its per-run throughput, and once the
fixed minimum-sample explore pass finishes, :meth:`choose` and
:meth:`choose_backend` pick the **UCB** argmax — measured throughput
plus ``ucb_beta`` standard errors — so a candidate whose few samples
were noisy keeps earning re-measurement while consistently-measured
cells lock in.  With zero observed variance UCB degenerates to the old
plain argmax, so low-noise hosts behave exactly as before.  v2 tables
migrate in place (aggregate throughput becomes the mean, variance
starts at zero); v1 and corrupt tables are still discarded.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from threading import Lock
from typing import Dict, List, Optional, Sequence, Set, Union

#: Version 2 added the backend axis to the cell keys (v1 files would
#: alias thread and process measurements, so they are discarded on
#: load).  Version 3 added per-candidate Welford mean/variance of the
#: per-run throughput for UCB exploit; v2 files migrate losslessly.
AUTOTUNE_VERSION = 3

#: The cell-key backend prefix used when the caller does not say —
#: the in-process thread pool, the only backend before the process tier.
DEFAULT_BACKEND = "thread"

#: Measurements per (cell, candidate) before the calibrator stops
#: exploring that candidate.
DEFAULT_MIN_SAMPLES = 2

#: Standard-error multiplier on the UCB exploration bonus.  2.0 keeps a
#: noisy candidate in contention until its mean is pinned down to about
#: two standard errors; 0.0 recovers the pre-v3 plain argmax.
DEFAULT_UCB_BETA = 2.0


def parts_candidates(pool_size: int) -> List[int]:
    """Candidate part counts: powers of two up to the pool, plus the
    pool size itself — a tiny grid that still brackets the optimum."""
    out = {1, max(1, pool_size)}
    p = 2
    while p < pool_size:
        out.add(p)
        p *= 2
    return sorted(out)


class ThroughputCalibrator:
    """Measured-throughput table choosing ``parts`` per program kind.

    Cells are keyed by ``(backend, program kind, log2 size class of the
    moved payload bytes)``.  :meth:`choose` returns the first
    under-sampled candidate (exploration, in ascending order) until
    every candidate of the cell has ``min_samples`` measurements, then
    the candidate with the highest **upper confidence bound** on the
    measured bytes/second — throughput plus ``ucb_beta`` standard
    errors of its per-run samples (Bayesian exploitation: noisy
    candidates stay in contention, stable ones lock in);
    :meth:`choose_backend` applies the same rule across the
    ``backends`` the scheduler runs.  :meth:`record` feeds a finished
    run back in.  Thread-safe; state optionally persists to ``path``
    (atomic JSON, corruption-tolerant, v2 tables migrate in place).
    """

    def __init__(
        self,
        pool_size: int,
        path: Optional[Union[str, Path]] = None,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        autoflush: bool = False,
        backends: Sequence[str] = (DEFAULT_BACKEND,),
        ucb_beta: float = DEFAULT_UCB_BETA,
    ):
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        if not backends:
            raise ValueError("at least one backend is required")
        if ucb_beta < 0:
            raise ValueError(f"ucb_beta must be >= 0, got {ucb_beta}")
        self.pool_size = pool_size
        self.candidates = parts_candidates(pool_size)
        self.backends = tuple(backends)
        self.min_samples = max(1, min_samples)
        self.ucb_beta = float(ucb_beta)
        self.path = Path(path) if path is not None else None
        self.autoflush = autoflush
        self._lock = Lock()
        #: cell key -> {str(parts): {"count": int, "total_s": float,
        #:   "total_bytes": float, "mean_bps": float, "m2_bps": float}}
        #: where mean/m2 are the Welford running moments of per-run
        #: bytes/second (m2 = sum of squared deviations).
        self._cells: Dict[str, Dict[str, dict]] = {}
        #: Cell keys whose backend declined the work (codegen fallback):
        #: choose_backend skips these instead of exploring them forever.
        self._unavailable: Set[str] = set()
        self._dirty = False
        if self.path is not None:
            self._load()

    # ---- keying ------------------------------------------------------
    @staticmethod
    def size_class(total_bytes: int) -> int:
        """Log2 bucket of the payload size (0 for <= 1 byte)."""
        return max(0, int(total_bytes) - 1).bit_length()

    def _key(
        self, kind: str, total_bytes: int, backend: str = DEFAULT_BACKEND
    ) -> str:
        return f"{backend}:{kind}|2^{self.size_class(total_bytes)}"

    # ---- scoring -----------------------------------------------------
    @staticmethod
    def _bps(stats: dict) -> float:
        """Aggregate measured throughput of one candidate's samples."""
        return stats["total_bytes"] / max(stats["total_s"], 1e-12)

    def _ucb(self, stats: dict) -> float:
        """Upper confidence bound on a candidate's throughput.

        Aggregate bytes/second plus ``ucb_beta`` standard errors of the
        per-run throughput samples.  One sample (or zero variance)
        contributes no bonus, so deterministic measurements reduce to
        the plain argmax the pre-v3 table used.
        """
        n = stats["count"]
        bonus = 0.0
        if n > 1 and self.ucb_beta > 0:
            var = max(stats.get("m2_bps", 0.0), 0.0) / (n - 1)
            bonus = self.ucb_beta * math.sqrt(var / n)
        return self._bps(stats) + bonus

    # ---- choose / record --------------------------------------------
    def choose(
        self, kind: str, total_bytes: int, backend: str = DEFAULT_BACKEND
    ) -> int:
        """The ``parts`` to run with: explore until calibrated, then
        the UCB argmax over the measured candidates."""
        key = self._key(kind, total_bytes, backend)
        with self._lock:
            cell = self._cells.get(key, {})
            for p in self.candidates:
                stats = cell.get(str(p))
                if stats is None or stats["count"] < self.min_samples:
                    return p
            return max(self.candidates, key=lambda p: self._ucb(cell[str(p)]))

    def _best_bps(self, cell: Dict[str, dict]) -> float:
        """Highest calibrated measured throughput in a cell (lock held)."""
        best = -1.0
        for s in cell.values():
            if s["count"] >= self.min_samples:
                best = max(best, self._bps(s))
        return best

    def _best_ucb(self, cell: Dict[str, dict]) -> float:
        """Highest calibrated UCB score in a cell (lock held)."""
        best = -1.0
        for s in cell.values():
            if s["count"] >= self.min_samples:
                best = max(best, self._ucb(s))
        return best

    def choose_backend(
        self,
        kind: str,
        total_bytes: int,
        among: Optional[Sequence[str]] = None,
    ) -> str:
        """The execution backend to run with, among ``self.backends``.

        Same explore-then-exploit shape as :meth:`choose`, one level
        up: while any backend's cell is still exploring ``parts``, that
        backend runs next (so both sides of the crossover get measured);
        once every backend is calibrated, the one whose best candidate
        measured the highest bytes/second wins.  ``among`` restricts
        the contest to the backends the caller's routing rules left
        eligible for this job (the scheduler excludes, e.g., the
        process pool for payloads below its dispatch floor); backends a
        fallback declared unavailable for the cell are always skipped.
        """
        backends = [
            b for b in self.backends if among is None or b in among
        ]
        if not backends:
            backends = [self.backends[0]]
        if len(backends) == 1:
            return backends[0]
        with self._lock:
            scored = []
            for backend in backends:
                key = self._key(kind, total_bytes, backend)
                if key in self._unavailable:
                    continue
                cell = self._cells.get(key, {})
                for p in self.candidates:
                    stats = cell.get(str(p))
                    if stats is None or stats["count"] < self.min_samples:
                        return backend
                scored.append((self._best_ucb(cell), backend))
            if not scored:
                return backends[0]
            return max(scored)[1]

    def mark_unavailable(
        self, kind: str, total_bytes: int, backend: str
    ) -> None:
        """Pin a cell off a backend that declined the work.

        The codegen router calls this when the nest search judges a
        geometry unprofitable: the job silently ran on the thread
        backend instead, so leaving the ``codegen`` cell unmeasured
        would make :meth:`choose_backend` re-explore it on every later
        request.  Persisted alongside the measurements.
        """
        key = self._key(kind, total_bytes, backend)
        with self._lock:
            if key not in self._unavailable:
                self._unavailable.add(key)
                self._dirty = True
        if self.autoflush:
            self.flush()

    def backend_wins(self) -> Dict[str, Dict[str, int]]:
        """Per program kind, how many calibrated cells each backend wins.

        The CLI's codegen-vs-indexed scoreboard: a cell counts for the
        backend whose best calibrated candidate measured the highest
        throughput among all backends sharing that ``kind|2^cls`` cell
        (cells still exploring, or with a single contender, are
        skipped).
        """
        with self._lock:
            grouped: Dict[str, Dict[str, float]] = {}
            for key, cell in self._cells.items():
                backend, _, rest = key.partition(":")
                best = self._best_bps(cell)
                if best < 0:
                    continue
                grouped.setdefault(rest, {})[backend] = best
            wins: Dict[str, Dict[str, int]] = {}
            for rest, per_backend in grouped.items():
                if len(per_backend) < 2:
                    continue
                kind = rest.split("|", 1)[0]
                winner = max(per_backend.items(), key=lambda kv: kv[1])[0]
                wins.setdefault(kind, {})
                wins[kind][winner] = wins[kind].get(winner, 0) + 1
            return wins

    def record(
        self,
        kind: str,
        total_bytes: int,
        parts: int,
        seconds: float,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        """Feed one finished run's wall time back into the table."""
        if seconds <= 0 or parts <= 0:
            return
        key = self._key(kind, total_bytes, backend)
        run_bps = float(total_bytes) / float(seconds)
        with self._lock:
            cell = self._cells.setdefault(key, {})
            stats = cell.setdefault(
                str(parts),
                {
                    "count": 0,
                    "total_s": 0.0,
                    "total_bytes": 0.0,
                    "mean_bps": 0.0,
                    "m2_bps": 0.0,
                },
            )
            stats["count"] += 1
            stats["total_s"] += float(seconds)
            stats["total_bytes"] += float(total_bytes)
            # Welford update of the per-run throughput moments.
            delta = run_bps - stats.get("mean_bps", 0.0)
            stats["mean_bps"] = stats.get("mean_bps", 0.0) + delta / stats["count"]
            stats["m2_bps"] = stats.get("m2_bps", 0.0) + delta * (
                run_bps - stats["mean_bps"]
            )
            self._dirty = True
        if self.autoflush:
            self.flush()

    def calibrated(
        self, kind: str, total_bytes: int, backend: str = DEFAULT_BACKEND
    ) -> bool:
        """Whether :meth:`choose` has left exploration for this cell."""
        key = self._key(kind, total_bytes, backend)
        with self._lock:
            cell = self._cells.get(key, {})
            return all(
                cell.get(str(p), {"count": 0})["count"] >= self.min_samples
                for p in self.candidates
            )

    # ---- introspection ----------------------------------------------
    def table(self) -> dict:
        """JSON-friendly snapshot: per cell, per-candidate mean time and
        measured throughput, plus the current winner."""
        with self._lock:
            cells = {}
            for key, cell in sorted(self._cells.items()):
                rows = {}
                best, best_bps = None, -1.0
                for p_str, s in sorted(cell.items(), key=lambda kv: int(kv[0])):
                    bps = s["total_bytes"] / max(s["total_s"], 1e-12)
                    rows[p_str] = {
                        "count": s["count"],
                        "mean_ms": round(s["total_s"] / s["count"] * 1e3, 4),
                        "gbps": round(bps / 1e9, 3),
                    }
                    if s["count"] >= self.min_samples and bps > best_bps:
                        best, best_bps = int(p_str), bps
                cells[key] = {"parts": rows, "best_parts": best}
            return {
                "pool_size": self.pool_size,
                "candidates": self.candidates,
                "backends": list(self.backends),
                "min_samples": self.min_samples,
                "ucb_beta": self.ucb_beta,
                "path": str(self.path) if self.path else None,
                "unavailable": sorted(self._unavailable),
                "cells": cells,
            }

    def reset(self) -> None:
        with self._lock:
            self._cells.clear()
            self._unavailable.clear()
            self._dirty = True

    # ---- persistence -------------------------------------------------
    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("autotune_version") not in (2, AUTOTUNE_VERSION)
            or payload.get("pool_size") != self.pool_size
        ):
            # A foreign pool shape measured different candidates; its
            # numbers would mislead choose().  v1 tables (no backend
            # prefix) would alias thread/process cells.  Start fresh.
            return
        cells = payload.get("cells")
        if not isinstance(cells, dict):
            return
        for key, cell in cells.items():
            if not isinstance(cell, dict):
                continue
            clean = {}
            for p_str, s in cell.items():
                try:
                    count = int(s["count"])
                    total_s = float(s["total_s"])
                    total_bytes = float(s["total_bytes"])
                    # v2 cells (and hand-trimmed v3 files) carry no
                    # throughput moments: seed the mean from the
                    # aggregate and the variance from zero, which is
                    # exactly the lossless "no spread observed yet"
                    # migration — UCB then equals the old argmax until
                    # fresh runs land.
                    mean_bps = float(
                        s.get("mean_bps", total_bytes / max(total_s, 1e-12))
                    )
                    m2_bps = max(float(s.get("m2_bps", 0.0)), 0.0)
                    clean[str(int(p_str))] = {
                        "count": count,
                        "total_s": total_s,
                        "total_bytes": total_bytes,
                        "mean_bps": mean_bps,
                        "m2_bps": m2_bps,
                    }
                except (KeyError, TypeError, ValueError):
                    continue
            if clean:
                self._cells[key] = clean
        unavailable = payload.get("unavailable", [])
        if isinstance(unavailable, list):
            self._unavailable.update(
                k for k in unavailable if isinstance(k, str)
            )
        if payload.get("autotune_version") != AUTOTUNE_VERSION:
            self._dirty = True  # rewrite migrated tables in v3 form

    def flush(self) -> None:
        """Atomically persist the table (no-op without a path)."""
        if self.path is None:
            return
        with self._lock:
            payload = {
                "autotune_version": AUTOTUNE_VERSION,
                "pool_size": self.pool_size,
                "unavailable": sorted(self._unavailable),
                "cells": {
                    k: {p: dict(s) for p, s in v.items()}
                    for k, v in self._cells.items()
                },
            }
            self._dirty = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def close(self) -> None:
        if self.path is not None and self._dirty:
            self.flush()
