"""Cost model: counters + launch geometry -> seconds.

Tensor transposition is bandwidth-bound, so the dominant term is DRAM
traffic divided by *achievable* bandwidth.  Achievable bandwidth is
derated by three effects the paper's evaluation exposes:

1. **Lane efficiency** — warps with idle lanes (partial tiles, extents
   like 15/17) issue fewer concurrent memory requests, reducing
   memory-level parallelism.  Derating uses
   ``lane_efficiency ** lane_efficiency_gamma``.
2. **Occupancy / grid size** — a launch must expose enough resident
   warps to saturate DRAM (``saturation_warps_per_sm``); tiny grids
   (Fig. 13's KB-scale tensors) are latency-bound.
3. **Tail waves** — a grid slightly larger than a multiple of the block
   slots leaves SMs idle in the last wave (why Alg. 3 bounds the slice
   volume and why coarsening is restricted to > 2 MB tensors).

Secondary terms — shared-memory serialization (with bank-conflict
cycles), LD/ST issue throughput, special-function (mod/div) throughput,
and texture misses — are combined with the DRAM term by ``max`` since a
GPU overlaps them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.noise import measurement_jitter
from repro.gpusim.occupancy import Occupancy, occupancy_for
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec


@dataclass(frozen=True)
class CostBreakdown:
    """Per-resource time components of a simulated launch (seconds)."""

    dram_s: float
    smem_s: float
    issue_s: float
    special_s: float
    tex_s: float
    tail_factor: float
    launch_s: float
    total_s: float

    @property
    def bound_resource(self) -> str:
        parts = {
            "dram": self.dram_s,
            "smem": self.smem_s,
            "issue": self.issue_s,
            "special": self.special_s,
            "tex": self.tex_s,
        }
        return max(parts, key=parts.get)


@dataclass
class CostModel:
    """Converts :class:`KernelCounters` into simulated execution time.

    Parameters
    ----------
    spec:
        The simulated device.
    jitter_scale:
        Relative magnitude of the deterministic measurement jitter.
        ``0`` gives exactly repeatable analytic times (the default for
        planning); the trainer enables jitter so regression precision is
        honest.
    """

    spec: DeviceSpec = field(default_factory=lambda: KEPLER_K40C)
    jitter_scale: float = 0.0

    # ------------------------------------------------------------------
    def _achievable_bandwidth(
        self, counters: KernelCounters, occ: Occupancy, geom: LaunchGeometry
    ) -> float:
        spec = self.spec
        bw = spec.effective_bandwidth
        # Memory-level parallelism from resident warps across the grid.
        sms_used = min(geom.num_blocks, spec.num_sms * occ.blocks_per_sm)
        sms_used = min(sms_used, spec.num_sms) if occ.blocks_per_sm else 0
        resident = occ.resident_warps_per_sm * max(sms_used, 1)
        # Warps actually available may be fewer than residency allows.
        total_warps = geom.num_blocks * geom.warps_per_block(spec.warp_size)
        resident = min(resident, total_warps)
        needed = spec.saturation_warps_per_sm * spec.num_sms
        mlp = min(1.0, resident / needed) if needed > 0 else 1.0
        bw *= mlp
        # Idle lanes reduce outstanding requests per warp.
        bw *= counters.lane_efficiency**spec.lane_efficiency_gamma
        return max(bw, 1.0)

    def breakdown(
        self,
        counters: KernelCounters,
        geom: LaunchGeometry,
        jitter_key: Optional[Hashable] = None,
    ) -> CostBreakdown:
        """Full per-resource decomposition of the launch time."""
        spec = self.spec
        counters.validate()
        occ = occupancy_for(spec, geom)

        bw = self._achievable_bandwidth(counters, occ, geom)
        dram_bytes = counters.dram_bytes_moved + counters.tex_miss_tx * 128
        dram_s = dram_bytes / bw

        # Shared memory: each warp access costs one cycle plus conflict
        # cycles, serviced by one smem unit per SM.
        sms_used = max(1, min(geom.num_blocks, spec.num_sms))
        smem_cycles = counters.smem_accesses + counters.smem_conflict_cycles
        smem_s = smem_cycles / (sms_used * spec.clock_hz)

        # LD/ST issue: every global/texture warp access occupies an LSU slot.
        issue_cycles = (
            counters.warp_global_accesses
            + counters.tex_accesses
            + counters.smem_accesses
        ) / spec.lsu_issue_per_cycle
        issue_s = issue_cycles / (sms_used * spec.clock_hz)

        # Special (MUFU-converted mod/div) throughput.
        special_s = counters.special_ops / max(
            sms_used * spec.sfu_per_sm * spec.clock_hz, 1.0
        )

        # Texture hits are nearly free; misses were already added to DRAM.
        # Keep a small constant latency term per miss for visibility.
        tex_s = counters.tex_miss_tx * 4 / spec.clock_hz

        tail = 1.0 / occ.wave_efficiency if occ.wave_efficiency > 0 else 1.0
        exec_s = max(dram_s, smem_s, issue_s, special_s, tex_s) * tail
        total = spec.launch_overhead_s + max(exec_s, spec.min_kernel_time_s)
        if jitter_key is not None and self.jitter_scale > 0:
            total *= measurement_jitter(jitter_key, self.jitter_scale)
        return CostBreakdown(
            dram_s=dram_s,
            smem_s=smem_s,
            issue_s=issue_s,
            special_s=special_s,
            tex_s=tex_s,
            tail_factor=tail,
            launch_s=spec.launch_overhead_s,
            total_s=total,
        )

    def kernel_time(
        self,
        counters: KernelCounters,
        geom: LaunchGeometry,
        jitter_key: Optional[Hashable] = None,
    ) -> float:
        """Simulated wall time of one kernel launch, in seconds."""
        return self.breakdown(counters, geom, jitter_key).total_s

    def kernel_time_batch(
        self,
        counters_list: Sequence[KernelCounters],
        geoms: Sequence[LaunchGeometry],
        jitter_keys: Optional[Sequence[Hashable]] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`kernel_time` over many candidate launches.

        Counter fields are stacked into arrays and every cost term is
        evaluated once over the whole batch; occupancy (a handful of
        integer divisions per geometry) stays scalar.  Term-for-term the
        arithmetic mirrors :meth:`breakdown`, so results match the
        scalar path bit for bit.
        """
        spec = self.spec
        n = len(counters_list)
        if len(geoms) != n:
            raise ValueError(
                f"{n} counter sets for {len(geoms)} launch geometries"
            )
        if jitter_keys is not None and len(jitter_keys) != n:
            raise ValueError(
                f"{n} counter sets for {len(jitter_keys)} jitter keys"
            )
        if n == 0:
            return np.empty(0, dtype=np.float64)
        for c in counters_list:
            c.validate()
        occs = [occupancy_for(spec, g) for g in geoms]

        def farr(values):
            return np.asarray(list(values), dtype=np.float64)

        num_blocks = farr(g.num_blocks for g in geoms)
        total_warps = farr(
            g.num_blocks * g.warps_per_block(spec.warp_size) for g in geoms
        )
        blocks_per_sm = farr(o.blocks_per_sm for o in occs)
        resident_per_sm = farr(o.resident_warps_per_sm for o in occs)
        wave_eff = farr(o.wave_efficiency for o in occs)
        lane_eff = farr(c.lane_efficiency for c in counters_list)
        dram_bytes = farr(
            c.dram_bytes_moved + c.tex_miss_tx * 128 for c in counters_list
        )
        smem_accesses = farr(c.smem_accesses for c in counters_list)
        smem_cycles = farr(
            c.smem_accesses + c.smem_conflict_cycles for c in counters_list
        )
        global_accesses = farr(c.warp_global_accesses for c in counters_list)
        tex_accesses = farr(c.tex_accesses for c in counters_list)
        tex_miss_tx = farr(c.tex_miss_tx for c in counters_list)
        special_ops = farr(c.special_ops for c in counters_list)

        # _achievable_bandwidth, vectorized.
        sms_used = np.minimum(num_blocks, spec.num_sms * blocks_per_sm)
        sms_used = np.where(
            blocks_per_sm > 0, np.minimum(sms_used, spec.num_sms), 0.0
        )
        resident = np.minimum(
            resident_per_sm * np.maximum(sms_used, 1.0), total_warps
        )
        needed = spec.saturation_warps_per_sm * spec.num_sms
        mlp = np.minimum(1.0, resident / needed) if needed > 0 else 1.0
        bw = spec.effective_bandwidth * mlp
        bw = bw * lane_eff**spec.lane_efficiency_gamma
        bw = np.maximum(bw, 1.0)
        dram_s = dram_bytes / bw

        exec_sms = np.maximum(1.0, np.minimum(num_blocks, spec.num_sms))
        smem_s = smem_cycles / (exec_sms * spec.clock_hz)
        issue_cycles = (
            global_accesses + tex_accesses + smem_accesses
        ) / spec.lsu_issue_per_cycle
        issue_s = issue_cycles / (exec_sms * spec.clock_hz)
        special_s = special_ops / np.maximum(
            exec_sms * spec.sfu_per_sm * spec.clock_hz, 1.0
        )
        tex_s = tex_miss_tx * 4 / spec.clock_hz

        tail = np.where(wave_eff > 0, 1.0 / np.where(wave_eff > 0, wave_eff, 1.0), 1.0)
        exec_s = (
            np.max(np.stack([dram_s, smem_s, issue_s, special_s, tex_s]), axis=0)
            * tail
        )
        total = spec.launch_overhead_s + np.maximum(
            exec_s, spec.min_kernel_time_s
        )
        if jitter_keys is not None and self.jitter_scale > 0:
            total = total * farr(
                measurement_jitter(k, self.jitter_scale) for k in jitter_keys
            )
        return total

    # ------------------------------------------------------------------
    def plan_time(self, num_candidates: int) -> float:
        """Host-side planning cost for a model-driven planner.

        One allocation, fixed setup (taxonomy + offset arrays), plus one
        regression evaluation per candidate configuration considered.
        """
        if num_candidates < 0:
            raise ValueError("num_candidates must be >= 0")
        return (
            self.spec.alloc_overhead_s
            + self.spec.plan_fixed_cost_s
            + num_candidates * self.spec.plan_eval_cost_s
        )

    def bandwidth_gbps(self, volume: int, elem_bytes: int, time_s: float) -> float:
        """The paper's reported metric: ``2 * volume * elem_bytes / time``
        in GB/s (each element is read once and written once)."""
        if time_s <= 0:
            raise ValueError(f"time must be positive, got {time_s}")
        return (2.0 * volume * elem_bytes) / (time_s * 1e9)
