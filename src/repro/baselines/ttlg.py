"""TTLG wrapped in the common library interface for the benchmarks."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.library import LibraryPlan, TransposeLibrary
from repro.core.plan import Predictor, make_plan
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec


class TTLG(TransposeLibrary):
    """The library under evaluation: model-driven kernel + slice choice.

    Plan cost model: one allocation + taxonomy/offset setup + one
    regression evaluation per candidate (cheap — this is TTLG's
    single-use advantage over cuTT-measure).
    """

    name = "TTLG"

    def __init__(
        self,
        spec: DeviceSpec = KEPLER_K40C,
        predictor: Optional[Predictor] = None,
    ):
        super().__init__(spec)
        if predictor is None:
            from repro.model.pretrained import pretrained_predictor

            predictor = pretrained_predictor(spec)
        self.predictor = predictor

    def plan(
        self, dims: Sequence[int], perm: Sequence[int], elem_bytes: int = 8
    ) -> LibraryPlan:
        p = make_plan(dims, perm, elem_bytes, self.spec, self.predictor)
        return LibraryPlan(
            library=self.name,
            kernel=p.kernel,
            plan_time=p.plan_time,
            num_candidates=p.num_candidates,
        )
