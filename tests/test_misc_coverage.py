"""Edge-path tests: harness failure handling, degenerate ranks, misc."""

import numpy as np
import pytest

import repro
from repro.baselines.library import LibraryPlan, TransposeLibrary
from repro.bench.harness import run_case
from repro.bench.suites import BenchCase
from repro.core.api import axes_to_perm
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.errors import PlanError
from repro.gpusim.cost import CostModel
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.model.pretrained import oracle_predictor

ORACLE = oracle_predictor()


class FailingLibrary(TransposeLibrary):
    name = "Broken"

    def plan(self, dims, perm, elem_bytes=8):
        raise PlanError("nope")


class TestHarnessEdges:
    def test_failing_library_omitted_not_fatal(self):
        from repro.baselines import TTLG

        case = BenchCase(dims=(8, 8), perm=(1, 0), scaled_rank=2)
        res = run_case(case, [TTLG(predictor=ORACLE), FailingLibrary()])
        assert "TTLG" in res.bandwidth
        assert "Broken" not in res.bandwidth

    def test_library_plan_carries_schema(self):
        from repro.baselines import TTLG

        plan = TTLG(predictor=ORACLE).plan((8, 8, 8), (2, 1, 0))
        assert isinstance(plan, LibraryPlan)
        assert plan.kernel.schema is not None
        assert plan.time_for(repeats=3) == pytest.approx(
            3 * plan.kernel_time()
        )


class TestDegenerateShapes:
    def test_rank_one(self, rng):
        a = rng.standard_normal(37)
        np.testing.assert_array_equal(repro.transpose(a, (0,)), a)

    def test_axes_to_perm_rank_one(self):
        assert axes_to_perm((0,)) == (0,)

    def test_single_element_tensor(self):
        a = np.array([[3.0]])
        np.testing.assert_array_equal(repro.transpose(a, (1, 0)), a)

    def test_reversal_rank_one(self):
        assert Permutation.reversal(1).mapping == (0,)

    def test_extent_one_everywhere(self, rng):
        a = rng.standard_normal((1, 5, 1))
        np.testing.assert_array_equal(
            repro.transpose(a, (2, 1, 0)), np.transpose(a, (2, 1, 0))
        )

    def test_prime_extents(self, rng):
        a = rng.standard_normal((13, 11, 7))
        np.testing.assert_array_equal(
            repro.transpose(a, (2, 0, 1)), np.transpose(a, (2, 0, 1))
        )


class TestCostModelEdges:
    def test_zero_counters_min_time(self):
        cm = CostModel()
        t = cm.kernel_time(KernelCounters(), LaunchGeometry(1, 32))
        assert t == pytest.approx(
            cm.spec.launch_overhead_s + cm.spec.min_kernel_time_s
        )

    def test_jitter_key_types(self):
        cm = CostModel(jitter_scale=0.02)
        c = KernelCounters(dram_ld_tx=100, dram_st_tx=100)
        g = LaunchGeometry(10, 256)
        for key in ("str", 42, (1, "a"), frozenset({1})):
            assert cm.kernel_time(c, g, jitter_key=key) > 0

    def test_breakdown_total_consistent(self):
        cm = CostModel()
        c = KernelCounters(
            dram_ld_tx=10**5,
            dram_st_tx=10**5,
            dram_ld_useful_bytes=10**5 * 128,
            dram_st_useful_bytes=10**5 * 128,
        )
        g = LaunchGeometry(1000, 256)
        bd = cm.breakdown(c, g)
        assert bd.total_s >= max(
            bd.dram_s, bd.smem_s, bd.issue_s, bd.special_s
        )


class TestProfileOnEveryKernel:
    @pytest.mark.parametrize(
        "dims,perm",
        [
            ((64, 6, 5), (0, 2, 1)),        # FVI large
            ((8, 12, 10), (0, 2, 1)),       # FVI small
            ((40, 7, 36), (2, 1, 0)),       # OD
            ((8, 2, 8, 8), (2, 1, 3, 0)),   # OA
        ],
    )
    def test_profile_renders(self, dims, perm):
        from repro.gpusim.profile import profile_kernel

        plan = repro.make_plan(dims, perm, predictor=ORACLE)
        report = profile_kernel(plan.kernel).format_report()
        assert "kernel time" in report
