"""Ablation: device sensitivity (simulated K40c vs simulated P100).

The library's decisions are parameterized by the device spec, not
hard-coded; replanning the same problems on a Pascal-class device must
track its higher bandwidth while preserving the TTLG-vs-baseline
ordering.  (The paper only evaluates on the K40c; this is an extension
exercising the spec plumbing.)
"""

import numpy as np

from conftest import write_result

from repro.baselines import CuttHeuristic, TTLG
from repro.gpusim.spec import KEPLER_K40C, PASCAL_P100

CASES = [
    ((16,) * 6, (5, 4, 3, 2, 1, 0)),
    ((15,) * 6, (4, 1, 2, 5, 3, 0)),
    ((27,) * 5, (4, 1, 2, 0, 3)),
]


def test_ablation_device(benchmark):
    lines = [
        "Ablation — device sensitivity (same problems, two device specs)",
        f"{'case':<36s} {'K40c GB/s':>10s} {'P100 GB/s':>10s} "
        f"{'speedup':>8s}",
    ]
    speedups = []
    libs = {
        "K40c": TTLG(spec=KEPLER_K40C),
        "P100": TTLG(spec=PASCAL_P100),
    }
    cutt = {
        "K40c": CuttHeuristic(spec=KEPLER_K40C),
        "P100": CuttHeuristic(spec=PASCAL_P100),
    }
    for dims, perm in CASES:
        bw_k = libs["K40c"].plan(dims, perm).bandwidth_gbps()
        bw_p = libs["P100"].plan(dims, perm).bandwidth_gbps()
        speedups.append(bw_p / bw_k)
        lines.append(
            f"{str(dims) + ' ' + str(perm):<36s} {bw_k:>10.1f} "
            f"{bw_p:>10.1f} {bw_p / bw_k:>8.2f}x"
        )
        # Library ordering preserved on the new device.
        assert bw_p >= cutt["P100"].plan(dims, perm).bandwidth_gbps() * 0.99
    ratio = PASCAL_P100.peak_bandwidth / KEPLER_K40C.peak_bandwidth
    lines.append(
        f"\npeak-bandwidth ratio {ratio:.2f}x; achieved speedups "
        f"{min(speedups):.2f}-{max(speedups):.2f}x"
    )
    text = "\n".join(lines)
    print(text)
    write_result("ablation_device", text)

    assert all(1.5 < s < ratio * 1.2 for s in speedups)

    benchmark(lambda: libs["P100"].plan(*CASES[0]))
