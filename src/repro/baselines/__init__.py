"""Comparator libraries reimplemented on the gpusim substrate.

The paper evaluates TTLG against cuTT (heuristic and measure plan modes)
and TTC (an offline code generator).  Both are rebuilt here as planners
over the same simulated device so performance differences arise from
their *structural* choices (kernel families, plan selection policy, plan
overhead), not from hand-tuned constants.  See DESIGN.md section 2.
"""

from repro.baselines.library import LibraryPlan, TransposeLibrary
from repro.baselines.cutt import CuttHeuristic, CuttMeasure
from repro.baselines.ttc import TTC
from repro.baselines.ttlg import TTLG
from repro.baselines.naive_lib import NaiveLibrary

ALL_LIBRARIES = (TTLG, CuttHeuristic, CuttMeasure, TTC)

__all__ = [
    "LibraryPlan",
    "TransposeLibrary",
    "TTLG",
    "CuttHeuristic",
    "CuttMeasure",
    "TTC",
    "NaiveLibrary",
    "ALL_LIBRARIES",
]
