"""Wall-clock planning latency across the four schemas.

Times ``make_plan`` itself — the host-side cost Alg. 3 charges against
first-call bandwidth (Figs. 7/9/11) and the serving runtime's cold-start
bottleneck — for one representative problem per schema, cold (process-
wide geometry caches cleared) and warm (caches populated), under both
the two-phase search and the eager reference path.

Run directly::

    PYTHONPATH=src python benchmarks/bench_plan_latency.py

writes a JSON summary to ``results/plan_latency.json``.  CI runs
``--smoke``: fewer repeats, no file output, and a hard failure when any
warm two-phase plan exceeds a generous latency threshold — so a future
change cannot silently re-eagerize the search.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

from conftest import bench_parser, gate, pick_repeats
from repro.core.plan import clear_plan_caches, make_plan

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "plan_latency.json"

#: One representative problem per schema (the 6D OA case is the issue's
#: acceptance benchmark; the 27^5 OD case is the paper's Fig. 5 example).
CASES = [
    ("orthogonal-arbitrary-6d", [16, 8, 4, 8, 4, 16], [5, 4, 3, 2, 1, 0]),
    ("orthogonal-distinct-27^5", [27, 27, 27, 27, 27], [4, 1, 2, 0, 3]),
    ("fvi-match-large-4d", [64, 16, 16, 16], [0, 3, 2, 1]),
    ("fvi-match-small-4d", [8, 16, 16, 16], [0, 3, 2, 1]),
]

#: Smoke thresholds (generous: ~10x the observed dev-machine latency, so
#: slow CI runners pass but a re-eagerized search does not).
SMOKE_WARM_MS = 100.0
SMOKE_COLD_MS = 2000.0


def _time_once(dims, perm, search):
    t0 = time.perf_counter()
    plan = make_plan(dims, perm, search=search)
    return (time.perf_counter() - t0) * 1e3, plan


def bench_case(dims, perm, search, repeats):
    """Cold + warm latency (ms) of one planning problem."""
    clear_plan_caches()
    cold_ms, plan = _time_once(dims, perm, search)
    warm = [_time_once(dims, perm, search)[0] for _ in range(repeats)]
    warm_ms = min(warm)
    return {
        "schema": plan.schema.value,
        "num_candidates": plan.num_candidates,
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(warm_ms, 3),
        "warm_median_ms": round(statistics.median(warm), 3),
        "plans_per_sec": round(1e3 / warm_ms, 1),
    }


def run(repeats):
    # One throwaway plan per path first: pulls in imports and the shipped
    # model coefficients so the first case's cold number measures
    # planning, not process start.
    for search in ("two_phase", "eager"):
        make_plan([4, 4], [1, 0], search=search)
    cases = {}
    for name, dims, perm in CASES:
        two = bench_case(dims, perm, "two_phase", repeats)
        eager = bench_case(dims, perm, "eager", repeats)
        assert two["schema"] == eager["schema"], name
        cases[name] = {
            "dims": dims,
            "perm": perm,
            "two_phase": two,
            "eager": eager,
            "speedup_warm": round(eager["warm_ms"] / two["warm_ms"], 2),
            "speedup_cold": round(eager["cold_ms"] / two["cold_ms"], 2),
        }
    return cases


def main(argv=None):
    ap = bench_parser(__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = ap.parse_args(argv)

    repeats = pick_repeats(args, full=9)
    cases = run(repeats)

    header = f"{'case':<26s} {'search':<10s} {'cold ms':>9s} {'warm ms':>9s} {'plans/s':>9s}"
    print(header)
    for name, row in cases.items():
        for search in ("two_phase", "eager"):
            r = row[search]
            print(
                f"{name:<26s} {search:<10s} {r['cold_ms']:>9.2f} "
                f"{r['warm_ms']:>9.2f} {r['plans_per_sec']:>9.1f}"
            )
        print(f"{'':<26s} speedup: {row['speedup_warm']}x warm, {row['speedup_cold']}x cold")

    if args.smoke:
        failures = []
        for name, row in cases.items():
            two = row["two_phase"]
            if two["warm_ms"] > SMOKE_WARM_MS:
                failures.append(
                    f"{name}: warm {two['warm_ms']:.1f} ms > {SMOKE_WARM_MS} ms"
                )
            if two["cold_ms"] > SMOKE_COLD_MS:
                failures.append(
                    f"{name}: cold {two['cold_ms']:.1f} ms > {SMOKE_COLD_MS} ms"
                )
        return gate("PLAN LATENCY REGRESSION", failures, smoke=True)

    summary = {"repeats": repeats, "cases": cases}
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
