"""Benchmark runner: plan each case with each library, report GB/s.

The reported metric is the paper's achieved bandwidth
``2 * volume * elem_bytes / time`` in GB/s, under either usage scenario:

- ``scenario="repeated"`` — kernel time only (plan excluded), Figs. 6/8/10;
- ``scenario="single"``   — plan + one execution, Figs. 7/9/11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.library import TransposeLibrary
from repro.bench.suites import BenchCase
from repro.errors import ReproError


@dataclass
class CaseResult:
    """Bandwidths (GB/s) of every library on one case."""

    case: BenchCase
    bandwidth: Dict[str, float] = field(default_factory=dict)
    kernel_time: Dict[str, float] = field(default_factory=dict)
    schema: Dict[str, str] = field(default_factory=dict)

    def winner(self) -> str:
        return max(self.bandwidth, key=self.bandwidth.get)


def run_case(
    case: BenchCase,
    libraries: Sequence[TransposeLibrary],
    scenario: str = "repeated",
    elem_bytes: int = 8,
    repeats: int = 1,
) -> CaseResult:
    """Plan + cost one case under every library.

    ``repeats`` amortizes the plan over several calls when the scenario
    includes planning (Fig. 12's sweep over call counts).
    """
    if scenario not in ("repeated", "single"):
        raise ValueError(f"unknown scenario {scenario!r}")
    include_plan = scenario == "single"
    result = CaseResult(case=case)
    for lib in libraries:
        try:
            plan = lib.plan(case.dims, case.perm, elem_bytes)
        except ReproError:
            continue  # library cannot handle this case; leave it out
        result.bandwidth[lib.name] = plan.bandwidth_gbps(
            repeats=repeats, include_plan=include_plan
        )
        result.kernel_time[lib.name] = plan.kernel_time()
        result.schema[lib.name] = plan.kernel.schema.value
    return result


def run_suite(
    cases: Sequence[BenchCase],
    libraries: Sequence[TransposeLibrary],
    scenario: str = "repeated",
    elem_bytes: int = 8,
    limit: Optional[int] = None,
) -> List[CaseResult]:
    """Run every case; ``limit`` subsamples evenly for quick runs."""
    chosen = list(cases)
    if limit is not None and limit < len(chosen):
        step = len(chosen) / limit
        chosen = [chosen[int(i * step)] for i in range(limit)]
    return [run_case(c, libraries, scenario, elem_bytes) for c in chosen]
