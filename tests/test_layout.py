"""Unit tests for repro.core.layout."""

import numpy as np
import pytest

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.errors import InvalidLayoutError


class TestConstruction:
    def test_basic(self):
        l = TensorLayout((4, 5, 6))
        assert l.rank == 3
        assert l.volume == 120
        assert l.dims == (4, 5, 6)

    def test_strides_fastest_first(self):
        assert TensorLayout((4, 5, 6)).strides == (1, 4, 20)

    def test_stride_method(self):
        l = TensorLayout((4, 5, 6))
        assert [l.stride(k) for k in range(3)] == [1, 4, 20]

    def test_rank_one(self):
        l = TensorLayout((7,))
        assert l.strides == (1,)
        assert l.volume == 7

    def test_nbytes(self):
        assert TensorLayout((10, 10)).nbytes(8) == 800

    @pytest.mark.parametrize("bad", [(), (0,), (-1, 3), (3, 0, 2)])
    def test_invalid(self, bad):
        with pytest.raises(InvalidLayoutError):
            TensorLayout(bad)


class TestLinearize:
    def test_roundtrip_all_offsets(self):
        l = TensorLayout((3, 4, 2))
        for off in range(l.volume):
            assert l.linearize(l.delinearize(off)) == off

    def test_known_offsets(self):
        l = TensorLayout((4, 5))
        assert l.linearize((0, 0)) == 0
        assert l.linearize((3, 0)) == 3
        assert l.linearize((0, 1)) == 4
        assert l.linearize((3, 4)) == 19

    def test_out_of_range_index(self):
        with pytest.raises(InvalidLayoutError):
            TensorLayout((3, 3)).linearize((3, 0))

    def test_negative_index(self):
        with pytest.raises(InvalidLayoutError):
            TensorLayout((3, 3)).linearize((-1, 0))

    def test_rank_mismatch(self):
        with pytest.raises(InvalidLayoutError):
            TensorLayout((3, 3)).linearize((0,))

    def test_offset_out_of_range(self):
        with pytest.raises(InvalidLayoutError):
            TensorLayout((3, 3)).delinearize(9)

    def test_vectorized_matches_scalar(self):
        l = TensorLayout((3, 5, 4))
        offs = np.arange(l.volume)
        coords = l.delinearize_many(offs)
        for off in range(l.volume):
            assert tuple(coords[off]) == l.delinearize(off)
        back = l.linearize_many(coords)
        np.testing.assert_array_equal(back, offs)


class TestDerived:
    def test_permuted_extents(self):
        l = TensorLayout((4, 5, 6))
        assert l.permuted(Permutation((2, 0, 1))).dims == (6, 4, 5)

    def test_permuted_preserves_volume(self):
        l = TensorLayout((4, 5, 6))
        assert l.permuted(Permutation((1, 2, 0))).volume == l.volume

    def test_prefix_volume(self):
        l = TensorLayout((4, 5, 6))
        assert [l.prefix_volume(k) for k in range(4)] == [1, 4, 20, 120]

    def test_numpy_shape_is_reversed(self):
        assert TensorLayout((4, 5, 6)).as_numpy_shape() == (6, 5, 4)

    def test_linearization_matches_numpy_c_order(self):
        """Our dim-0-fastest linearization equals C order on the
        reversed shape — the bridge the whole library relies on."""
        l = TensorLayout((3, 4, 5))
        arr = np.arange(l.volume).reshape(l.as_numpy_shape())
        for off in range(0, l.volume, 7):
            idx = l.delinearize(off)
            assert arr[tuple(reversed(idx))] == off
