"""Compact length-prefixed wire codec for the serving protocol.

msgpack-style framing over raw sockets, dependency-free: every message
is one **frame** — a 4-byte big-endian unsigned body length followed by
the body — and the body is a tag-prefixed binary encoding of one
JSON-like value (None, bools, 64-bit ints, doubles, UTF-8 strings,
bytes, lists, string-keyed dicts) extended with a native ``numpy``
array tag so tensor payloads cross the wire as raw dtype bytes instead
of per-element boxing.

The decoder is strict: every length is bounds-checked against the
remaining buffer, unknown tags and trailing garbage raise
:class:`~repro.errors.ProtocolError`, and nesting depth is capped.  A
declared frame longer than ``max_frame_bytes`` raises
:class:`FrameTooLargeError` *before* the body is read, so a hostile or
buggy peer cannot make the server buffer an arbitrary amount.

Frame layout (see ``docs/serving.md`` for the verb schemas)::

    +----------------+----------------------------------+
    | u32 big-endian |  body: one encoded value         |
    | body length    |  (tagged, recursively encoded)   |
    +----------------+----------------------------------+

Tags (one byte each, lengths big-endian)::

    0xc0 None    0xc2 False   0xc3 True
    0xd3 int     (i64)        0xcb float (f64)
    0xdb str     (u32 len + UTF-8)
    0xc6 bytes   (u32 len + raw)
    0xdd list    (u32 count + items)
    0xdf dict    (u32 count + str-key/value pairs)
    0xc7 ndarray (u8 dtype-str len + dtype + u8 ndim +
                  ndim * u32 extents + raw C-order data)
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, List, Tuple

import numpy as np

from repro.errors import ProtocolError

#: Default cap on one frame's body, bytes.  Large enough for a ~200 MB
#: TTC-suite operand is deliberately NOT the default — servers that
#: want to accept tensor payloads that big opt in explicitly.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Nesting depth cap of the decoder (requests are depth <= 3).
MAX_DEPTH = 32

_LEN = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_T_NONE = 0xC0
_T_FALSE = 0xC2
_T_TRUE = 0xC3
_T_INT = 0xD3
_T_FLOAT = 0xCB
_T_STR = 0xDB
_T_BYTES = 0xC6
_T_LIST = 0xDD
_T_DICT = 0xDF
_T_NDARRAY = 0xC7


class FrameTooLargeError(ProtocolError):
    """A frame declared a body longer than the negotiated maximum."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _encode_into(obj: Any, out: List[bytes], depth: int) -> None:
    if depth > MAX_DEPTH:
        raise ProtocolError(f"encode nesting deeper than {MAX_DEPTH}")
    if obj is None:
        out.append(bytes((_T_NONE,)))
    elif obj is True:
        out.append(bytes((_T_TRUE,)))
    elif obj is False:
        out.append(bytes((_T_FALSE,)))
    elif isinstance(obj, (int, np.integer)):
        out.append(bytes((_T_INT,)) + _I64.pack(int(obj)))
    elif isinstance(obj, (float, np.floating)):
        out.append(bytes((_T_FLOAT,)) + _F64.pack(float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(bytes((_T_STR,)) + _LEN.pack(len(raw)))
        out.append(raw)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out.append(bytes((_T_BYTES,)) + _LEN.pack(len(raw)))
        out.append(raw)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        dt = arr.dtype.str.encode("ascii")
        if len(dt) > 255 or arr.ndim > 255:
            raise ProtocolError("unencodable ndarray (dtype/ndim too wide)")
        head = bytes((_T_NDARRAY, len(dt))) + dt + bytes((arr.ndim,))
        head += b"".join(_LEN.pack(int(d)) for d in arr.shape)
        out.append(head)
        out.append(arr.tobytes())
    elif isinstance(obj, (list, tuple)):
        out.append(bytes((_T_LIST,)) + _LEN.pack(len(obj)))
        for item in obj:
            _encode_into(item, out, depth + 1)
    elif isinstance(obj, dict):
        out.append(bytes((_T_DICT,)) + _LEN.pack(len(obj)))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out.append(_LEN.pack(len(raw)))
            out.append(raw)
            _encode_into(value, out, depth + 1)
    else:
        raise ProtocolError(f"unencodable type {type(obj).__name__}")


def encode(obj: Any) -> bytes:
    """Encode one value to its body bytes (no length prefix)."""
    out: List[bytes] = []
    _encode_into(obj, out, 0)
    return b"".join(out)


def pack_frame(obj: Any, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """One full wire frame: length prefix + encoded body."""
    body = encode(obj)
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte cap"
        )
    return _LEN.pack(len(body)) + body


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _need(buf: bytes, pos: int, n: int) -> None:
    if pos + n > len(buf):
        raise ProtocolError(
            f"truncated body: need {n} bytes at offset {pos}, "
            f"have {len(buf) - pos}"
        )


def _decode_at(buf: bytes, pos: int, depth: int) -> Tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise ProtocolError(f"decode nesting deeper than {MAX_DEPTH}")
    _need(buf, pos, 1)
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        _need(buf, pos, 8)
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_FLOAT:
        _need(buf, pos, 8)
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_STR:
        _need(buf, pos, 4)
        n = _LEN.unpack_from(buf, pos)[0]
        pos += 4
        _need(buf, pos, n)
        try:
            return buf[pos : pos + n].decode("utf-8"), pos + n
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in string: {exc}") from None
    if tag == _T_BYTES:
        _need(buf, pos, 4)
        n = _LEN.unpack_from(buf, pos)[0]
        pos += 4
        _need(buf, pos, n)
        return buf[pos : pos + n], pos + n
    if tag == _T_NDARRAY:
        _need(buf, pos, 1)
        dt_len = buf[pos]
        pos += 1
        _need(buf, pos, dt_len)
        try:
            dtype = np.dtype(buf[pos : pos + dt_len].decode("ascii"))
        except (UnicodeDecodeError, TypeError) as exc:
            raise ProtocolError(f"invalid ndarray dtype: {exc}") from None
        pos += dt_len
        _need(buf, pos, 1)
        ndim = buf[pos]
        pos += 1
        shape = []
        for _ in range(ndim):
            _need(buf, pos, 4)
            shape.append(_LEN.unpack_from(buf, pos)[0])
            pos += 4
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        _need(buf, pos, nbytes)
        arr = np.frombuffer(
            buf, dtype=dtype, count=nbytes // dtype.itemsize, offset=pos
        ).reshape(shape)
        # The frame buffer is short-lived; give callers a writable copy.
        return arr.copy(), pos + nbytes
    if tag == _T_LIST:
        _need(buf, pos, 4)
        n = _LEN.unpack_from(buf, pos)[0]
        pos += 4
        # Every item needs >= 1 byte: reject absurd declared counts
        # before looping (a 4-byte count can claim 4 G items).
        _need(buf, pos, n)
        items = []
        for _ in range(n):
            item, pos = _decode_at(buf, pos, depth + 1)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        _need(buf, pos, 4)
        n = _LEN.unpack_from(buf, pos)[0]
        pos += 4
        _need(buf, pos, n)  # >= 1 byte per entry, same guard as lists
        obj = {}
        for _ in range(n):
            _need(buf, pos, 4)
            key_len = _LEN.unpack_from(buf, pos)[0]
            pos += 4
            _need(buf, pos, key_len)
            try:
                key = buf[pos : pos + key_len].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"invalid UTF-8 in key: {exc}") from None
            pos += key_len
            obj[key], pos = _decode_at(buf, pos, depth + 1)
        return obj, pos
    raise ProtocolError(f"unknown wire tag 0x{tag:02x}")


def decode(body: bytes) -> Any:
    """Decode one body; raises :class:`ProtocolError` on any violation."""
    value, pos = _decode_at(bytes(body), 0, 0)
    if pos != len(body):
        raise ProtocolError(
            f"{len(body) - pos} trailing bytes after the encoded value"
        )
    return value


def decode_frame(
    frame: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Any:
    """Decode one full frame (prefix + body) from a byte string."""
    if len(frame) < 4:
        raise ProtocolError(f"truncated frame header ({len(frame)} bytes)")
    n = _LEN.unpack_from(frame, 0)[0]
    if n > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame declares a {n}-byte body (cap {max_frame_bytes})"
        )
    if len(frame) != 4 + n:
        raise ProtocolError(
            f"frame declares {n} body bytes but carries {len(frame) - 4}"
        )
    return decode(frame[4:])


# ----------------------------------------------------------------------
# asyncio stream helpers
# ----------------------------------------------------------------------


async def read_frame(
    reader: "asyncio.StreamReader",
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
):
    """Read and decode one frame from a stream.

    Returns the decoded value.  Raises :class:`EOFError` on a clean
    connection close (EOF exactly between frames), :class:`ProtocolError`
    on a mid-frame truncation, and :class:`FrameTooLargeError` as soon
    as an oversized length prefix arrives — without reading the body.
    """
    try:
        head = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed between frames") from None
        raise ProtocolError(
            f"connection closed inside a frame header "
            f"({len(exc.partial)}/4 bytes)"
        ) from None
    n = _LEN.unpack(head)[0]
    if n > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame declares a {n}-byte body (cap {max_frame_bytes})"
        )
    try:
        body = await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed inside a frame body "
            f"({len(exc.partial)}/{n} bytes)"
        ) from None
    return decode(body)
