"""Result aggregation and table rendering for the figure benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.bench.harness import CaseResult


@dataclass
class SuiteResult:
    """A finished suite with helpers to print paper-style summaries."""

    title: str
    results: List[CaseResult]

    def libraries(self) -> List[str]:
        names: List[str] = []
        for r in self.results:
            for n in r.bandwidth:
                if n not in names:
                    names.append(n)
        return names

    def series(self, library: str) -> np.ndarray:
        return np.array(
            [r.bandwidth.get(library, np.nan) for r in self.results]
        )

    # ------------------------------------------------------------------
    def format_table(self, max_rows: int = 0) -> str:
        libs = self.libraries()
        header = f"{'case':<28s} {'rank':>4s} " + " ".join(
            f"{n:>15s}" for n in libs
        )
        lines = [self.title, header, "-" * len(header)]
        rows = self.results if not max_rows else self.results[:max_rows]
        for r in rows:
            label = r.case.label or " ".join(map(str, r.case.perm))
            cells = " ".join(
                f"{r.bandwidth.get(n, float('nan')):>15.1f}" for n in libs
            )
            lines.append(f"{label:<28s} {r.case.scaled_rank:>4d} {cells}")
        return "\n".join(lines)

    def format_summary(self) -> str:
        """Mean GB/s per library plus win counts — the chart's takeaway."""
        libs = self.libraries()
        lines = [f"{self.title}: {len(self.results)} cases"]
        wins = {n: 0 for n in libs}
        for r in self.results:
            if r.bandwidth:
                wins[r.winner()] += 1
        for n in libs:
            s = self.series(n)
            ok = s[~np.isnan(s)]
            lines.append(
                f"  {n:<16s} mean {np.mean(ok):7.1f}  median {np.median(ok):7.1f}"
                f"  peak {np.max(ok):7.1f} GB/s   wins {wins[n]:d}"
            )
        return "\n".join(lines)


def summarize_by_group(
    suite: SuiteResult, key=lambda r: r.case.scaled_rank
) -> Dict[object, Dict[str, float]]:
    """Mean bandwidth per library within groups (e.g. per scaled rank)."""
    groups: Dict[object, List[CaseResult]] = {}
    for r in suite.results:
        groups.setdefault(key(r), []).append(r)
    out: Dict[object, Dict[str, float]] = {}
    for g, rs in sorted(groups.items()):
        out[g] = {}
        for lib in suite.libraries():
            vals = [r.bandwidth[lib] for r in rs if lib in r.bandwidth]
            if vals:
                out[g][lib] = float(np.mean(vals))
    return out


def format_group_table(
    title: str, groups: Dict[object, Dict[str, float]]
) -> str:
    """Render the per-scaled-rank staircase as a table."""
    libs: List[str] = []
    for row in groups.values():
        for n in row:
            if n not in libs:
                libs.append(n)
    header = f"{'group':>6s} " + " ".join(f"{n:>15s}" for n in libs)
    lines = [title, header, "-" * len(header)]
    for g, row in groups.items():
        cells = " ".join(f"{row.get(n, float('nan')):>15.1f}" for n in libs)
        lines.append(f"{str(g):>6s} {cells}")
    return "\n".join(lines)
