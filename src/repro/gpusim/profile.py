"""Kernel profiling reports (an ``nvprof``-style view of a plan).

Turns a kernel's counters, launch geometry, occupancy, and cost
breakdown into the efficiency metrics a GPU profiler would show —
global load/store efficiency, warp execution efficiency, shared-memory
bank-conflict rate, achieved occupancy, and the bound resource — so a
user can see *why* a plan performs the way it does, not just how fast
it is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpusim.cost import CostBreakdown, CostModel
from repro.gpusim.counters import KernelCounters, LaunchGeometry
from repro.gpusim.occupancy import Occupancy, occupancy_for
from repro.kernels.base import TransposeKernel


@dataclass(frozen=True)
class KernelProfile:
    """Profiler-style metrics for one kernel launch."""

    kernel_name: str
    schema: str
    geometry: LaunchGeometry
    counters: KernelCounters
    occupancy: Occupancy
    breakdown: CostBreakdown
    bandwidth_gbps: float

    # -- derived metrics -------------------------------------------------
    @property
    def gld_efficiency(self) -> float:
        """Useful bytes per byte fetched on loads (nvprof gld_efficiency)."""
        moved = self.counters.dram_ld_tx * 128
        if moved == 0:
            return 1.0
        return min(1.0, self.counters.dram_ld_useful_bytes / moved)

    @property
    def gst_efficiency(self) -> float:
        moved = self.counters.dram_st_tx * 128
        if moved == 0:
            return 1.0
        return min(1.0, self.counters.dram_st_useful_bytes / moved)

    @property
    def warp_execution_efficiency(self) -> float:
        return self.counters.lane_efficiency

    @property
    def bank_conflict_rate(self) -> float:
        """Extra serialized cycles per shared-memory access."""
        acc = self.counters.smem_accesses
        if acc == 0:
            return 0.0
        return self.counters.smem_conflict_cycles / acc

    @property
    def tex_hit_rate(self) -> float:
        acc = self.counters.tex_accesses
        if acc == 0:
            return 1.0
        return 1.0 - self.counters.tex_miss_tx / acc

    def format_report(self) -> str:
        c, bd = self.counters, self.breakdown
        lines = [
            f"== {self.kernel_name} ({self.schema}) ==",
            f"grid              : {self.geometry.num_blocks} blocks x "
            f"{self.geometry.threads_per_block} threads, "
            f"{self.geometry.shared_mem_per_block} B smem/block",
            f"occupancy         : {self.occupancy.occupancy:.2f} "
            f"({self.occupancy.resident_warps_per_sm} warps/SM, "
            f"{self.occupancy.blocks_per_sm} blocks/SM, "
            f"{self.occupancy.waves} waves)",
            f"dram transactions : {c.dram_ld_tx:,} ld + {c.dram_st_tx:,} st "
            f"({c.dram_bytes_moved / 1e6:.1f} MB moved)",
            f"gld/gst efficiency: {self.gld_efficiency * 100:.1f} % / "
            f"{self.gst_efficiency * 100:.1f} %",
            f"warp exec eff     : {self.warp_execution_efficiency * 100:.1f} %",
            f"smem accesses     : {c.smem_accesses:,} "
            f"(conflict rate {self.bank_conflict_rate:.2f} extra cyc/access)",
            f"texture           : {c.tex_accesses:,} accesses, "
            f"hit rate {self.tex_hit_rate * 100:.1f} %",
            f"time breakdown    : dram {bd.dram_s * 1e3:.3f} ms, smem "
            f"{bd.smem_s * 1e3:.3f} ms, issue {bd.issue_s * 1e3:.3f} ms, "
            f"special {bd.special_s * 1e3:.3f} ms (tail x{bd.tail_factor:.2f})",
            f"bound resource    : {bd.bound_resource}",
            f"kernel time       : {bd.total_s * 1e3:.4f} ms "
            f"({self.bandwidth_gbps:.1f} GB/s achieved)",
        ]
        return "\n".join(lines)


def profile_kernel(
    kernel: TransposeKernel, cost_model: Optional[CostModel] = None
) -> KernelProfile:
    """Profile one kernel instance on its device."""
    cm = cost_model if cost_model is not None else CostModel(kernel.spec)
    counters = kernel.counters()
    geom = kernel.launch_geometry
    bd = cm.breakdown(counters, geom)
    return KernelProfile(
        kernel_name=type(kernel).__name__,
        schema=kernel.schema.value,
        geometry=geom,
        counters=counters,
        occupancy=occupancy_for(kernel.spec, geom),
        breakdown=bd,
        bandwidth_gbps=cm.bandwidth_gbps(
            kernel.volume, kernel.elem_bytes, bd.total_s
        ),
    )
