"""Million-request load generator for the serving subsystem.

Replays zipf-weighted request streams against an in-process
:class:`~repro.serving.server.ServingServer` over real TCP sockets —
the full path: codec frames, consistent-hash routing, admission
control, per-replica schedulers, typed error replies, client
retry-with-backoff.  Plan keys are the 57 fig14 TTC-suite cases with
extents scaled down to ~4 K elements each, so a million requests
exercise serving mechanics rather than raw element throughput.

Five phases, each on a fresh server:

**routing** — the same zipf stream through ``hash`` and ``random``
routers with per-replica compiled-program caches sized *below* the
distinct-key count.  The acceptance gate of ISSUE 6: consistent
hashing must beat random routing on aggregate program-cache hit rate,
because each replica sees a stable ~1/N slice of the key space instead
of the whole thing.

**latency** — closed-loop replay at fixed concurrency; reports
p50/p99/p999 request latency and saturation throughput.

**overload** — twice the saturation concurrency against a server whose
inflight permit pool equals the saturation concurrency: the server
must shed with typed ``OVERLOADED`` replies (never queue unboundedly)
and retrying clients must absorb every shed — zero failed requests,
degraded latency.

**drain** — graceful shutdown with admitted payload-carrying requests
in flight: every one must complete (zero dropped), post-drain requests
must be refused with ``DRAINING``, and the serving arena must report
zero outstanding leases once the inflight replies land.

**data path** — the ISSUE 10 acceptance gate: >= 1 MiB f64 operands
with real payloads and returned outputs through the zero-copy server
(readinto wire ingress, arena-leased decode, ``out=`` execution,
scatter-gather egress) vs the copying-codec baseline, bit-exact
outputs asserted between them.  Capacity is measured closed-loop;
latency is measured open-loop with both modes offered the identical
arrival rate (midway between the two capacities).  Full-mode gates: >= 1.5x
closed-loop throughput and >= 2x lower open-loop p99 per operand
class, with ``tensor_bytes_copied == 0`` on both ends of the
zero-copy path (asserted in smoke too, so CI catches any change that
silently reintroduces a copy).

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving_load.py

writes ``results/serving_load.json`` (>= 1 M requests across 8
tenants).  CI runs ``--smoke``: a few hundred requests, gates only.
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import time
from pathlib import Path

import numpy as np

from conftest import bench_parser, env_stamp, gate
from repro.bench.suites import ttc_benchmark_suite
from repro.errors import DrainingError
from repro.model.pretrained import oracle_predictor
from repro.serving import ServingClient, ServingServer

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "results" / "serving_load.json"
)

#: Zipf exponent of the key popularity distribution.
ZIPF_S = 1.1

#: The >= 8 tenants the ISSUE requires.
TENANTS = [f"tenant{i}" for i in range(8)]

#: Full-mode routing gate: hash-routed aggregate program-cache hit
#: rate must beat random routing by at least this margin.
MIN_HIT_RATE_GAP = 0.10

ORACLE = oracle_predictor()

#: The >= 1 MiB f64 operand classes of the data-path phase.  2 MiB is
#: the smallest class whose codec-copy cost stands clear of the fixed
#: per-request overhead (at 1 MiB the closed-loop gap sits inside
#: run-to-run noise of the gate).
DATA_PATH_CASES = (
    ("2MiB", (64, 64, 64), (2, 1, 0)),
    ("4MiB", (64, 128, 64), (2, 1, 0)),
)

#: Full-mode data-path gates (zero-copy vs the copying baseline).
#: Throughput compares closed-loop capacity; p99 compares the open-loop
#: runs, where both modes receive the identical offered arrival rate.
MIN_DATA_PATH_SPEEDUP = 1.5
MIN_DATA_PATH_P99_RATIO = 2.0



# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------


def scaled_ttc_keys(target_volume: int = 4096):
    """The fig14 TTC suite with extents shrunk to ~``target_volume``.

    Every case keeps its permutation (the TTC suite's whole point) and
    its rank; the variant index nudges the first extent so all 57
    cases stay distinct content keys after scaling.
    """
    keys = []
    seen = set()
    for case in ttc_benchmark_suite():
        rank = len(case.dims)
        extent = max(2, round(target_volume ** (1.0 / rank)))
        variant = int(case.label.split("v")[1].split(" ")[0])
        dims = (extent + variant,) + (extent,) * (rank - 1)
        key = (dims, case.perm)
        assert key not in seen, f"duplicate scaled case {key}"
        seen.add(key)
        keys.append(key)
    return keys


def zipf_schedule(n_keys: int, n_requests: int, seed: int) -> np.ndarray:
    """Key index per request, zipf-weighted over a shuffled key order."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_keys)
    weights = 1.0 / (np.arange(1, n_keys + 1) ** ZIPF_S)
    weights /= weights.sum()
    ranks = rng.choice(n_keys, size=n_requests, p=weights)
    return order[ranks]


# ----------------------------------------------------------------------
# replay harness
# ----------------------------------------------------------------------


async def replay(
    server,
    keys,
    schedule,
    *,
    workers: int,
    max_retries: int = 8,
    record_latency: bool = False,
):
    """Closed-loop replay: ``workers`` concurrent request loops sharing
    one pooled pipelined client.  Returns (wall_s, latencies, client)."""
    client = ServingClient(
        server.host,
        server.port,
        pool_size=min(workers, 16),
        max_retries=max_retries,
        rng=random.Random(1234),
    )
    await client.connect()
    latencies = [] if record_latency else None
    loop = asyncio.get_running_loop()

    async def worker(indices):
        for i in indices:
            dims, perm = keys[schedule[i]]
            tenant = TENANTS[i % len(TENANTS)]
            t0 = loop.time()
            await client.execute(dims, perm, 8, synth=True, tenant=tenant)
            if latencies is not None:
                latencies.append(loop.time() - t0)

    t0 = time.perf_counter()
    await asyncio.gather(
        *(
            worker(range(w, len(schedule), workers))
            for w in range(workers)
        )
    )
    wall = time.perf_counter() - t0
    await client.close()
    return wall, latencies, client


def aggregate_hit_rate(snapshot: dict) -> float:
    hits = misses = 0
    for rep in snapshot["per_replica"]:
        stats = rep["executor"] or {}
        hits += stats.get("hits", 0)
        misses += stats.get("misses", 0)
    return hits / max(1, hits + misses)


def per_replica_summary(snapshot: dict):
    return [
        {
            "replica": rep["replica"],
            "routed": rep["routed"],
            "program_cache_hit_rate": (rep["executor"] or {}).get(
                "hit_rate", 0.0
            ),
            "programs_resident": (rep["executor"] or {}).get("entries", 0),
            "evictions": (rep["executor"] or {}).get("evictions", 0),
        }
        for rep in snapshot["per_replica"]
    ]


# ----------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------


def phase_routing(args, keys, router: str) -> dict:
    """One zipf replay through ``router``; returns cache effectiveness."""

    async def main():
        server = ServingServer(
            replicas=args.replicas,
            num_streams=args.streams,
            predictor=ORACLE,
            program_cache_size=args.program_cache,
            router=router,
            router_seed=7,
        )
        await server.start()
        schedule = zipf_schedule(len(keys), args.requests_routing, seed=42)
        wall, _, _ = await replay(
            server, keys, schedule, workers=args.workers
        )
        snap = server.serving_snapshot()
        await server.close()
        return {
            "router": router,
            "requests": len(schedule),
            "wall_s": round(wall, 3),
            "throughput_rps": round(len(schedule) / wall, 1),
            "program_cache_hit_rate": round(aggregate_hit_rate(snap), 4),
            "per_replica": per_replica_summary(snap),
        }

    return asyncio.run(main())


def phase_latency(args, keys) -> dict:
    """Closed-loop latency percentiles and saturation throughput."""

    async def main():
        server = ServingServer(
            replicas=args.replicas,
            num_streams=args.streams,
            predictor=ORACLE,
            program_cache_size=args.program_cache,
        )
        await server.start()
        # Warm every key once so compulsory planning/compilation misses
        # don't smear the tail percentiles.
        warm = np.arange(len(keys), dtype=np.int64)
        await replay(server, keys, warm, workers=args.workers)
        schedule = zipf_schedule(len(keys), args.requests_latency, seed=43)
        wall, lat, _ = await replay(
            server,
            keys,
            schedule,
            workers=args.workers,
            record_latency=True,
        )
        snap = server.serving_snapshot()
        await server.close()
        lat_ms = np.asarray(lat) * 1e3
        return {
            "requests": len(schedule),
            "workers": args.workers,
            "wall_s": round(wall, 3),
            "saturation_rps": round(len(schedule) / wall, 1),
            "latency_ms": {
                "p50": round(float(np.percentile(lat_ms, 50)), 3),
                "p99": round(float(np.percentile(lat_ms, 99)), 3),
                "p999": round(float(np.percentile(lat_ms, 99.9)), 3),
                "max": round(float(lat_ms.max()), 3),
            },
            "program_cache_hit_rate": round(aggregate_hit_rate(snap), 4),
        }

    return asyncio.run(main())


def phase_overload(args, keys, saturation_rps: float) -> dict:
    """2x saturation concurrency vs a permit pool sized below it.

    The pool is half the 1x closed-loop concurrency: the zero-copy
    transport holds each permit for so little wall time that a pool
    sized *at* 1x never fills even under 2x offered concurrency — the
    shed/backoff machinery this phase exists to exercise would sit
    idle.
    """

    async def main():
        server = ServingServer(
            replicas=args.replicas,
            num_streams=args.streams,
            predictor=ORACLE,
            program_cache_size=args.program_cache,
            max_inflight=max(2, args.workers // 2),
            max_queue_depth=4 * args.workers,
        )
        await server.start()
        schedule = zipf_schedule(len(keys), args.requests_overload, seed=44)
        wall, lat, client = await replay(
            server,
            keys,
            schedule,
            workers=2 * args.workers,
            max_retries=100,
            record_latency=True,
        )
        snap = server.serving_snapshot()
        depths = [rep["queue_depth"] for rep in snap["per_replica"]]
        await server.close()
        admission = snap["admission"]
        offered = admission["admitted"] + admission["shed_overloaded"]
        lat_ms = np.asarray(lat) * 1e3
        return {
            "requests": len(schedule),
            "workers": 2 * args.workers,
            "max_inflight": max(2, args.workers // 2),
            "wall_s": round(wall, 3),
            "goodput_rps": round(len(schedule) / wall, 1),
            "saturation_rps": round(saturation_rps, 1),
            "shed_overloaded": admission["shed_overloaded"],
            "shed_rate": round(
                admission["shed_overloaded"] / max(1, offered), 4
            ),
            "client_retries": client.retries,
            "failed_requests": 0,  # replay raises on any non-retried error
            "max_queue_depth_seen": max(depths) if depths else 0,
            "latency_ms": {
                "p50": round(float(np.percentile(lat_ms, 50)), 3),
                "p99": round(float(np.percentile(lat_ms, 99)), 3),
                "p999": round(float(np.percentile(lat_ms, 99.9)), 3),
            },
        }

    return asyncio.run(main())


def phase_drain(args, keys) -> dict:
    """Drain with admitted payload-carrying requests in flight: zero may
    be dropped, and zero arena leases may outlive their replies."""

    async def main():
        server = ServingServer(
            replicas=args.replicas,
            num_streams=args.streams,
            predictor=ORACLE,
            program_cache_size=args.program_cache,
            max_inflight=1024,
        )
        await server.start()
        inflight = min(128, args.requests_drain)
        client = ServingClient(
            server.host, server.port, pool_size=8, max_retries=0
        )
        await client.connect()
        schedule = zipf_schedule(len(keys), inflight, seed=45)
        # Real tensors on the wire so ingress/egress leases are live
        # across the drain (the lease leak check below is the point).
        rng = np.random.default_rng(45)
        payloads = {
            key: rng.standard_normal(int(np.prod(key[0])))
            for key in {keys[k] for k in schedule}
        }
        tasks = [
            asyncio.create_task(
                client.execute(
                    *keys[schedule[i]],
                    8,
                    payload=payloads[keys[schedule[i]]],
                    tenant=TENANTS[i % len(TENANTS)],
                )
            )
            for i in range(inflight)
        ]
        # Every request must be *admitted* before the drain begins —
        # the gate is about inflight work, not racing the doorman.
        while server.admission.admitted < inflight:
            await asyncio.sleep(0.001)
        t0 = time.perf_counter()
        drained = await server.drain(timeout=60.0)
        drain_s = time.perf_counter() - t0
        results = await asyncio.gather(*tasks, return_exceptions=True)
        dropped = [r for r in results if isinstance(r, BaseException)]
        refused_with_draining = False
        try:
            await client.execute(*keys[0], 8, synth=True)
        except DrainingError:
            refused_with_draining = True
        except ConnectionError:
            refused_with_draining = True  # listener already closed
        await client.close()
        arena = server.arena.stats()
        await server.close()
        return {
            "inflight_at_drain": inflight,
            "drained_clean": bool(drained),
            "drain_s": round(drain_s, 3),
            "dropped": len(dropped),
            "post_drain_refused": refused_with_draining,
            "arena_active_after_drain": arena["active_blocks"],
            "arena_leaked": server.arena.stats()["leaked"],
        }

    return asyncio.run(main())


def phase_data_path(args, keys) -> dict:
    """Zero-copy vs copying codec on >= 1 MiB payload-carrying requests.

    Two measurements per operand class, each on fresh servers with real
    f64 payloads and outputs returned, bit-exact between modes:

    **closed loop** (capacity) — fixed concurrency, replies drive the
    next request.  Yields saturation throughput; the >= 1.5x speedup
    gate compares these.

    **open loop** (latency SLO) — both modes receive the *identical*
    fixed arrival schedule, offered halfway between the two measured
    capacities, and latency is taken from each request's scheduled
    arrival.  This is the operationally honest p99 comparison: at a
    load the zero-copy path absorbs with headroom, the copying path —
    whose capacity is lower — queues, so its tail reflects the backlog
    a real deployment would see.  The >= 2x p99 gate compares these.

    The zero-copy side must report ``tensor_bytes_copied == 0`` on both
    ends of both runs, plus a clean arena after every drain.
    """
    workers = min(args.workers, 8)

    def make_server(zero_copy):
        # Fixed small topology regardless of the load-phase sizing: the
        # comparison is codec vs codec on one data path, and extra idle
        # replica threads only add scheduling noise to both sides.
        return ServingServer(
            replicas=min(args.replicas, 2),
            num_streams=args.streams,
            predictor=ORACLE,
            program_cache_size=args.program_cache,
            zero_copy=zero_copy,
        )

    async def run_mode(zero_copy, dims, perm, payload, requests, rate=None):
        """One fresh-server run; closed loop when ``rate`` is None, else
        an open loop offering ``rate`` requests/s."""
        server = make_server(zero_copy)
        await server.start()
        client = ServingClient(
            server.host,
            server.port,
            pool_size=min(workers, 4),
            zero_copy=zero_copy,
            rng=random.Random(99),
        )
        await client.connect()
        loop = asyncio.get_running_loop()
        # Warm: plans, compiled programs, arena blocks, synth-free path.
        first = await client.execute(dims, perm, 8, payload=payload)
        reference = first["output"]
        latencies = []

        if rate is None:
            async def worker(n):
                for _ in range(n):
                    t0 = loop.time()
                    await client.execute(dims, perm, 8, payload=payload)
                    latencies.append(loop.time() - t0)

            # Capacity is a max-estimator — noise (GC pauses, CPU
            # contention) only ever *lowers* a closed-loop measurement.
            # Two measured passes, best sustained throughput wins.
            per_worker = requests // workers
            wall, throughput = 0.0, 0.0
            for _ in range(2):
                t0 = time.perf_counter()
                await asyncio.gather(
                    *(worker(per_worker) for _ in range(workers))
                )
                trial = time.perf_counter() - t0
                wall += trial
                throughput = max(throughput, per_worker * workers / trial)
            done = 2 * per_worker * workers
        else:
            interval = 1.0 / rate
            start = loop.time() + 0.05

            async def one(k):
                scheduled = start + k * interval
                delay = scheduled - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                await client.execute(dims, perm, 8, payload=payload)
                # Time in system from the *scheduled* arrival: client
                # queueing delay counts, exactly as an SLO would see it.
                latencies.append(loop.time() - scheduled)

            t0 = time.perf_counter()
            await asyncio.gather(*(one(k) for k in range(requests)))
            wall = time.perf_counter() - t0
            done = requests
            throughput = done / wall
        snap = server.serving_snapshot()
        await client.close()
        await server.drain(timeout=60.0)
        arena = server.arena.stats()
        await server.close()
        lat_ms = np.asarray(latencies) * 1e3
        return {
            "zero_copy": zero_copy,
            "loop": "closed" if rate is None else "open",
            "requests": done,
            "wall_s": round(wall, 3),
            "throughput_rps": round(throughput, 1),
            "offered_rps": None if rate is None else round(rate, 1),
            "latency_ms": {
                "p50": round(float(np.percentile(lat_ms, 50)), 3),
                "p99": round(float(np.percentile(lat_ms, 99)), 3),
            },
            "server_tensor_bytes_copied": snap["data_path"][
                "tensor_bytes_copied"
            ],
            "server_tensor_bytes_zero_copy": snap["data_path"][
                "tensor_bytes_zero_copy"
            ],
            "client_tensor_bytes_copied": client.codec_stats.
            tensor_bytes_copied,
            "arena_reuses": arena["reuses"],
            "arena_active_after_drain": arena["active_blocks"],
            "arena_leaked": arena["leaked"],
        }, reference

    async def main():
        cases = {}
        rng = np.random.default_rng(7)
        for label, dims, perm in DATA_PATH_CASES:
            payload = rng.standard_normal(int(np.prod(dims)))
            zc_closed, zc_out = await run_mode(
                True, dims, perm, payload, args.requests_data
            )
            cp_closed, cp_out = await run_mode(
                False, dims, perm, payload, args.requests_data
            )
            np.testing.assert_array_equal(zc_out, cp_out)
            # Equal offered load for the latency comparison: halfway
            # between the two measured capacities — inside the zero-copy
            # envelope, beyond the copying one whenever the speedup gate
            # holds, regardless of which way either measurement drifts.
            rate = (
                zc_closed["throughput_rps"] + cp_closed["throughput_rps"]
            ) / 2
            zc_open, _ = await run_mode(
                True, dims, perm, payload, args.requests_data, rate=rate
            )
            cp_open, _ = await run_mode(
                False, dims, perm, payload, args.requests_data, rate=rate
            )
            mib = payload.nbytes / 2**20
            cases[label] = {
                "dims": list(dims),
                "perm": list(perm),
                "operand_mib": round(mib, 2),
                "offered_rps": round(rate, 1),
                "zero_copy": {"closed": zc_closed, "open": zc_open},
                "copying": {"closed": cp_closed, "open": cp_open},
                "speedup": round(
                    zc_closed["throughput_rps"]
                    / max(1e-9, cp_closed["throughput_rps"]),
                    3,
                ),
                "p99_ratio": round(
                    cp_open["latency_ms"]["p99"]
                    / max(1e-9, zc_open["latency_ms"]["p99"]),
                    3,
                ),
            }
        return cases

    return asyncio.run(main())


# ----------------------------------------------------------------------
# main
# ----------------------------------------------------------------------


def main() -> int:
    ap = bench_parser("serving load generator (ISSUE 6 acceptance bench)")
    ap.add_argument("--replicas", type=int, default=None)
    ap.add_argument("--streams", type=int, default=2)
    ap.add_argument("--workers", type=int, default=None,
                    help="closed-loop concurrency (default: mode-based)")
    ap.add_argument("--program-cache", type=int, default=None,
                    help="per-replica compiled-program cache entries")
    ap.add_argument("--requests-routing", type=int, default=None,
                    help="requests per router in the routing phase")
    ap.add_argument("--requests-latency", type=int, default=None)
    ap.add_argument("--requests-overload", type=int, default=None)
    ap.add_argument("--requests-drain", type=int, default=None)
    ap.add_argument("--requests-data", type=int, default=None,
                    help="requests per operand class per codec mode in "
                         "the data-path phase")
    args = ap.parse_args()

    smoke = args.smoke
    args.replicas = args.replicas or (2 if smoke else 4)
    args.workers = args.workers or (8 if smoke else 32)
    # Sized below the distinct-key count (57) so locality is measurable:
    # a hash-routed replica's slice (~57/replicas keys) nearly fits; the
    # full key set that random routing sprays at it does not.
    args.program_cache = args.program_cache or (4 if smoke else 16)
    args.requests_routing = args.requests_routing or (
        300 if smoke else 250_000
    )
    args.requests_latency = args.requests_latency or (
        400 if smoke else 300_000
    )
    args.requests_overload = args.requests_overload or (
        300 if smoke else 200_000
    )
    args.requests_drain = args.requests_drain or (100 if smoke else 2_000)
    args.requests_data = args.requests_data or (24 if smoke else 400)

    keys = scaled_ttc_keys()
    print(
        f"{len(keys)} scaled TTC-suite keys, {len(TENANTS)} tenants, "
        f"{args.replicas} replicas x {args.streams} streams, "
        f"program cache {args.program_cache}/replica"
    )

    t_start = time.perf_counter()
    routing = {}
    for router in ("hash", "random"):
        routing[router] = phase_routing(args, keys, router)
        print(
            f"routing[{router}]: {routing[router]['requests']} requests, "
            f"{routing[router]['throughput_rps']:.0f} req/s, "
            f"program-cache hit rate "
            f"{routing[router]['program_cache_hit_rate']:.3f}"
        )

    latency = phase_latency(args, keys)
    print(
        f"latency: {latency['requests']} requests at "
        f"{latency['saturation_rps']:.0f} req/s — "
        f"p50 {latency['latency_ms']['p50']:.2f} ms, "
        f"p99 {latency['latency_ms']['p99']:.2f} ms, "
        f"p999 {latency['latency_ms']['p999']:.2f} ms"
    )

    overload = phase_overload(args, keys, latency["saturation_rps"])
    print(
        f"overload: {overload['requests']} requests at 2x concurrency — "
        f"shed {overload['shed_overloaded']} "
        f"({100 * overload['shed_rate']:.1f}%), "
        f"{overload['client_retries']} client retries, "
        f"0 failed, p99 {overload['latency_ms']['p99']:.2f} ms"
    )

    drain = phase_drain(args, keys)
    print(
        f"drain: {drain['inflight_at_drain']} inflight, "
        f"dropped {drain['dropped']}, "
        f"{'clean' if drain['drained_clean'] else 'TIMED OUT'} in "
        f"{drain['drain_s']:.2f} s, "
        f"post-drain refused: {drain['post_drain_refused']}, "
        f"leases outstanding: {drain['arena_active_after_drain']}"
    )

    data_path = phase_data_path(args, keys)
    for label, case in data_path.items():
        zc, cp = case["zero_copy"], case["copying"]
        print(
            f"data_path[{label}]: zero-copy "
            f"{zc['closed']['throughput_rps']:.0f} req/s vs copying "
            f"{cp['closed']['throughput_rps']:.0f} req/s "
            f"({case['speedup']:.2f}x); at {case['offered_rps']:.0f} req/s "
            f"offered, p99 {zc['open']['latency_ms']['p99']:.1f} ms vs "
            f"{cp['open']['latency_ms']['p99']:.1f} ms "
            f"({case['p99_ratio']:.2f}x); copied bytes: "
            f"{zc['closed']['server_tensor_bytes_copied']}"
        )

    total_requests = (
        2 * args.requests_routing
        + args.requests_latency
        + len(keys)  # latency warmup
        + args.requests_overload
        + drain["inflight_at_drain"]
        + 1
        + sum(
            run["requests"] + 1  # + warm request
            for c in data_path.values()
            for mode in (c["zero_copy"], c["copying"])
            for run in (mode["closed"], mode["open"])
        )
    )
    total_wall = time.perf_counter() - t_start
    print(f"total: {total_requests} requests in {total_wall:.1f} s")

    failures = []
    gap = (
        routing["hash"]["program_cache_hit_rate"]
        - routing["random"]["program_cache_hit_rate"]
    )
    min_gap = 0.0 if smoke else MIN_HIT_RATE_GAP
    if gap <= min_gap:
        failures.append(
            f"hash routing must beat random on program-cache hit rate by "
            f"> {min_gap:.2f} (gap {gap:+.3f})"
        )
    if overload["shed_overloaded"] == 0:
        failures.append("overload phase shed nothing at 2x saturation")
    if overload["client_retries"] == 0:
        failures.append("overload phase never engaged client backoff")
    if overload["max_queue_depth_seen"] > 4 * args.workers:
        failures.append(
            f"queue depth {overload['max_queue_depth_seen']} exceeded the "
            f"{4 * args.workers} bound"
        )
    if drain["dropped"] != 0:
        failures.append(f"drain dropped {drain['dropped']} inflight requests")
    if not drain["drained_clean"]:
        failures.append("drain timed out")
    if not drain["post_drain_refused"]:
        failures.append("post-drain request was not refused")
    if drain["arena_active_after_drain"] != 0 or drain["arena_leaked"] != 0:
        failures.append(
            f"drain left {drain['arena_active_after_drain']} active / "
            f"{drain['arena_leaked']} leaked arena leases"
        )
    for label, case in data_path.items():
        # The invariant gates run in smoke too, over both the closed-
        # and open-loop runs: any change that reintroduces a tensor
        # copy on the happy path fails CI.
        for loop_name in ("closed", "open"):
            zc = case["zero_copy"][loop_name]
            where = f"data_path[{label}].{loop_name}"
            if zc["server_tensor_bytes_copied"] != 0:
                failures.append(
                    f"{where}: server copied "
                    f"{zc['server_tensor_bytes_copied']} tensor bytes on "
                    "the zero-copy path"
                )
            if zc["client_tensor_bytes_copied"] != 0:
                failures.append(
                    f"{where}: client copied "
                    f"{zc['client_tensor_bytes_copied']} tensor bytes on "
                    "the zero-copy path"
                )
            if zc["server_tensor_bytes_zero_copy"] == 0:
                failures.append(
                    f"{where}: zero-copy byte counter never moved"
                )
            if zc["arena_active_after_drain"] != 0 or zc["arena_leaked"] != 0:
                failures.append(
                    f"{where}: {zc['arena_active_after_drain']} active / "
                    f"{zc['arena_leaked']} leaked leases after drain"
                )
        if not smoke:
            if case["speedup"] < MIN_DATA_PATH_SPEEDUP:
                failures.append(
                    f"data_path[{label}]: zero-copy throughput only "
                    f"{case['speedup']:.2f}x the copying baseline "
                    f"(need >= {MIN_DATA_PATH_SPEEDUP}x)"
                )
            if case["p99_ratio"] < MIN_DATA_PATH_P99_RATIO:
                failures.append(
                    f"data_path[{label}]: copying open-loop p99 only "
                    f"{case['p99_ratio']:.2f}x the zero-copy p99 "
                    f"(need >= {MIN_DATA_PATH_P99_RATIO}x)"
                )
    if not smoke and total_requests < 1_000_000:
        failures.append(
            f"full mode must replay >= 1M requests, got {total_requests}"
        )

    if not smoke:
        payload = {
            "bench": "serving_load",
            "total_requests": total_requests,
            "total_wall_s": round(total_wall, 1),
            "tenants": len(TENANTS),
            "distinct_keys": len(keys),
            "zipf_s": ZIPF_S,
            "config": {
                "replicas": args.replicas,
                "streams": args.streams,
                "workers": args.workers,
                "program_cache_per_replica": args.program_cache,
            },
            "routing": routing,
            "routing_hit_rate_gap": round(gap, 4),
            "latency": latency,
            "overload": overload,
            "drain": drain,
            "data_path": data_path,
            "env": env_stamp(gated=True),
        }
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULTS_PATH}")

    return gate("serving load gates", failures, smoke=smoke)


if __name__ == "__main__":
    sys.exit(main())
