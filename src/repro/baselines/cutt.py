"""cuTT reimplementation (Hynninen & Lyakh 2017) on the gpusim substrate.

cuTT plans a transposition by generating a small set of candidate
kernels from its three families and picking one:

- **Tiled**: the classic 32x32 shared-memory tile over the single
  fastest input dim and single fastest output dim (no dimension
  combining — the structural difference from TTLG that hurts cuTT when
  extents are below the warp size).
- **Packed**: the fastest dims of input and output are combined into
  flat load/store volumes staged through shared memory (our
  Orthogonal-Arbitrary kernel with warp-multiple group targets).
- **PackedSplit**: Packed with a larger combined group split across
  blocks (coarser variants in the candidate menu).

Two plan modes, as in the paper's evaluation:

- :class:`CuttHeuristic` ranks candidates with an MWP-CWP-style closed
  formula (Hong & Kim) that models bytes moved and warp-level
  parallelism but *not* transaction overfetch or idle lanes — fast, but
  systematically mis-ranks on odd extents (why the paper finds
  cuTT-measure always at least as good).
- :class:`CuttMeasure` executes every candidate (simulated, with
  measurement jitter) and keeps the best — better plans, but the plan
  itself costs the sum of all candidate executions plus per-measurement
  synchronization, which is what craters its single-use performance in
  Figs. 7/9/11.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.library import LibraryPlan, TransposeLibrary
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.errors import PlanError, SchemaError
from repro.gpusim.noise import measurement_jitter
from repro.gpusim.occupancy import occupancy_for
from repro.gpusim.spec import DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.kernels.fvi_match_large import FviMatchLargeKernel
from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel
from repro.kernels.orthogonal_distinct import OrthogonalDistinctKernel

#: Synchronization + timing overhead charged per measured candidate.
MEASURE_OVERHEAD_S = 2.0e-5



def cutt_candidates(
    layout: TensorLayout,
    perm: Permutation,
    spec: DeviceSpec,
    elem_bytes: int,
) -> List[TransposeKernel]:
    """cuTT's candidate kernel menu for one (fused) problem."""
    cands: List[TransposeKernel] = []
    ws = spec.warp_size

    if perm.fvi_matches():
        # Packed degenerate case: contiguous runs move unchanged.
        cands.append(FviMatchLargeKernel(layout, perm, elem_bytes, spec))
    else:
        # Tiled: a 32 x 32 tile over the single fastest input dim and
        # single fastest output dim (sub-dim blocking when an extent
        # exceeds the tile; the whole dim when it does not).
        try:
            cands.append(
                OrthogonalDistinctKernel(
                    layout,
                    perm,
                    in_prefix=0,
                    blockA=min(ws, layout.dims[0]),
                    out_prefix=0,
                    blockB=min(ws, layout.dims[perm[0]]),
                    elem_bytes=elem_bytes,
                    spec=spec,
                )
            )
        except SchemaError:
            pass

    # Packed / PackedSplit: combined flat groups of *whole* dimensions
    # (cuTT's Mm/Mk sets).  cuTT never blocks a dimension partially into
    # the group — fine-grained, model-driven slice sizing is exactly
    # TTLG's contribution — so the menu is whole-dim prefixes, plus
    # PackedSplit variants that halve/quarter the group's last dim.
    smem_words = spec.shared_mem_per_sm // elem_bytes
    seen = set()

    def group_options(extents):
        # The empty group: cuTT's Packed degenerates to it when the
        # other side's set already covers these dims.
        opts = [(0, 1, 1)]
        vol = 1
        for k in range(len(extents)):
            if vol * extents[k] > smem_words:
                # PackedSplit: the next dim overflows shared memory, so
                # split it into the largest chunk that fits.
                fit = smem_words // vol
                if fit > 1:
                    opts.append((k, min(fit, extents[k]), vol * min(fit, extents[k])))
                break
            vol *= extents[k]
            opts.append((k + 1, 1, vol))  # whole-dim prefix
            if extents[k] % 2 == 0:  # PackedSplit: half the last dim
                opts.append((k, extents[k] // 2, vol // 2))
            if vol >= 4 * ws:
                break  # cuTT stops growing the group past a few warps
        return opts

    out_extents = [layout.dims[d] for d in perm.mapping]
    for ip, ba, avol in group_options(list(layout.dims)):
        for op, bb, bvol in group_options(out_extents):
            if avol * bvol > smem_words:
                continue
            try:
                k = OrthogonalArbitraryKernel(
                    layout,
                    perm,
                    in_prefix=ip,
                    blockA=ba,
                    out_prefix=op,
                    blockB=bb,
                    elem_bytes=elem_bytes,
                    spec=spec,
                )
            except SchemaError:
                continue
            key = (k.in_prefix, k.blockA, k.out_prefix, k.blockB, k.b_dim)
            if key not in seen:
                seen.add(key)
                cands.append(k)
    return cands


def mwp_cwp_estimate(kernel: TransposeKernel, spec: DeviceSpec) -> float:
    """Hong & Kim-style analytic estimate used by the heuristic mode.

    Models bytes moved at peak bandwidth scaled by warp-level
    parallelism (occupancy); deliberately blind to transaction overfetch,
    idle lanes, and bank conflicts — the approximations real MWP-CWP
    makes, and the reason heuristic mode mis-ranks on odd extents.
    """
    geom = kernel.launch_geometry
    occ = occupancy_for(spec, geom)
    bytes_moved = 2 * kernel.volume * kernel.elem_bytes
    mwp = min(
        1.0, occ.resident_warps_per_sm / spec.saturation_warps_per_sm
    )
    # Grid smaller than the device also limits parallelism.
    grid = min(1.0, geom.num_blocks / spec.num_sms)
    bw = spec.effective_bandwidth * mwp * grid
    return spec.launch_overhead_s + bytes_moved / max(bw, 1.0)


class _CuttBase(TransposeLibrary):
    def _candidates(
        self, dims: Sequence[int], perm: Sequence[int], elem_bytes: int
    ) -> List[TransposeKernel]:
        fused = self.fuse(dims, perm)
        cands = cutt_candidates(fused.layout, fused.perm, self.spec, elem_bytes)
        if not cands:
            raise PlanError(
                f"cuTT found no candidate for dims={tuple(dims)} "
                f"perm={tuple(perm)}"
            )
        return cands


class CuttHeuristic(_CuttBase):
    """cuTT in heuristic plan mode (fast analytic ranking)."""

    name = "cuTT Heuristic"

    def plan(
        self, dims: Sequence[int], perm: Sequence[int], elem_bytes: int = 8
    ) -> LibraryPlan:
        cands = self._candidates(dims, perm, elem_bytes)
        best = min(cands, key=lambda k: mwp_cwp_estimate(k, self.spec))
        # Heuristic cost: allocation plus one cheap formula per candidate.
        plan_time = self.spec.alloc_overhead_s + self.spec.plan_fixed_cost_s
        return LibraryPlan(
            library=self.name,
            kernel=best,
            plan_time=plan_time,
            num_candidates=len(cands),
        )


class CuttMeasure(_CuttBase):
    """cuTT in measure plan mode (execute every candidate, keep best)."""

    name = "cuTT Measure"

    def plan(
        self, dims: Sequence[int], perm: Sequence[int], elem_bytes: int = 8
    ) -> LibraryPlan:
        cands = self._candidates(dims, perm, elem_bytes)
        best, best_t, total = None, float("inf"), 0.0
        for i, k in enumerate(cands):
            t = k.simulated_time(self.cost_model)
            measured = t * measurement_jitter(
                ("cutt-measure", tuple(dims), tuple(perm), i), 0.01
            )
            total += t + MEASURE_OVERHEAD_S
            if measured < best_t:
                best, best_t = k, measured
        assert best is not None
        plan_time = self.spec.alloc_overhead_s + total
        return LibraryPlan(
            library=self.name,
            kernel=best,
            plan_time=plan_time,
            num_candidates=len(cands),
        )
