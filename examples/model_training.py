"""Retrain the performance models and print the Table II reproduction.

Regenerates the offline dataset (ranks 3-6, five extent orderings,
16 MB-1 GB volumes), simulates every admissible kernel configuration,
fits the per-schema OLS models, prints coefficient tables with standard
errors / t values / p values exactly in the paper's format, and reports
the train/test precision metric.

Pass ``--save`` to overwrite the shipped ``pretrained.json``.

Run:  python examples/model_training.py [--save] [--quick]
"""

import sys
import time

from repro.model.dataset import generate_cases
from repro.model.pretrained import PRETRAINED_PATH
from repro.model.store import save_models
from repro.model.trainer import train


def main() -> None:
    quick = "--quick" in sys.argv
    cases = generate_cases(
        ranks=(3, 4) if quick else (3, 4, 5, 6),
        volumes=(2 * 1024**2,)
        if quick
        else (2 * 1024**2, 16 * 1024**2, 128 * 1024**2),
        max_perms_per_rank=5 if quick else 10,
    )
    print(f"dataset: {len(cases)} transpose cases")
    t0 = time.perf_counter()
    report = train(cases)
    print(f"trained in {time.perf_counter() - t0:.1f} s\n")
    print(report.format_summary())
    print(
        "\npaper reference (Table II): Orthogonal-Distinct "
        "4.161 % / 4.159 %, Orthogonal-Arbitrary 11.084 % / 10.75 %"
    )
    if "--save" in sys.argv:
        save_models(report.models, PRETRAINED_PATH)
        print(f"\nsaved models to {PRETRAINED_PATH}")


if __name__ == "__main__":
    main()
