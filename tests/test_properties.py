"""Property-based tests (hypothesis) over the core invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.api import axes_to_perm
from repro.core.fusion import fuse_indices
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.core.plan import make_plan
from repro.core.slices import derive_group
from repro.gpusim.sharedmem import conflict_degree
from repro.gpusim.transactions import (
    contiguous_run_transactions,
    warp_transactions,
)
from repro.kernels.common import (
    lattice_run_transactions,
    reference_transpose,
    tile_cycles,
)
from repro.model.pretrained import oracle_predictor

ORACLE = oracle_predictor()

# -- strategies ---------------------------------------------------------

ranks = st.integers(min_value=1, max_value=5)


@st.composite
def problems(draw, max_extent=9, min_rank=1, max_rank=5):
    rank = draw(st.integers(min_rank, max_rank))
    dims = tuple(
        draw(st.integers(1, max_extent)) for _ in range(rank)
    )
    perm = tuple(draw(st.permutations(range(rank))))
    return dims, perm


# -- permutation / layout ------------------------------------------------


@given(st.permutations(range(6)))
def test_inverse_composes_to_identity(p):
    perm = Permutation(tuple(p))
    assert perm.compose(perm.inverse()).is_identity()


@given(st.permutations(range(5)))
def test_axes_perm_conversion_involution(axes):
    assert axes_to_perm(axes_to_perm(tuple(axes))) == tuple(axes)


@given(problems())
def test_linearize_bijective(problem):
    dims, _ = problem
    layout = TensorLayout(dims)
    offs = np.arange(layout.volume)
    back = layout.linearize_many(layout.delinearize_many(offs))
    assert np.array_equal(back, offs)


# -- fusion ---------------------------------------------------------------


@given(problems())
@settings(max_examples=60)
def test_fusion_preserves_semantics(problem):
    dims, perm = problem
    layout, p = TensorLayout(dims), Permutation(perm)
    fused = fuse_indices(layout, p)
    assert fused.layout.volume == layout.volume
    src = np.arange(layout.volume, dtype=np.int64)
    assert np.array_equal(
        reference_transpose(src, layout, p),
        reference_transpose(src, fused.layout, fused.perm),
    )


@given(problems())
def test_fusion_is_idempotent(problem):
    dims, perm = problem
    fused = fuse_indices(TensorLayout(dims), Permutation(perm))
    again = fuse_indices(fused.layout, fused.perm)
    assert again.layout.dims == fused.layout.dims
    assert again.perm == fused.perm


# -- coalescing / banks ----------------------------------------------------


@given(
    st.integers(0, 4096),
    st.integers(1, 64),
    st.sampled_from([4, 8]),
)
def test_contiguous_run_bounds(start, n, eb):
    tx = contiguous_run_transactions(start * eb, n, eb)
    lower = math.ceil(n * eb / 128)
    assert lower <= tx <= lower + 1


@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=32))
def test_warp_transactions_bounds(addrs):
    tx = warp_transactions(np.array(addrs), 8)
    assert 1 <= tx <= 2 * len(set(addrs))


@given(st.integers(1, 128), st.sampled_from([4, 8]), st.sampled_from([8, 16, 32, 64, 128]))
def test_lattice_average_bounds(n, eb, lat):
    avg = lattice_run_transactions(n, eb, lat)
    lower = math.ceil(n * eb / 128)
    assert lower <= avg <= lower + 1


@given(st.lists(st.integers(0, 10**5), min_size=1, max_size=32))
def test_conflict_degree_bounds(words):
    d = conflict_degree(np.array(words))
    assert 1 <= d <= len(set(words))


# -- tile cycles -----------------------------------------------------------


@given(st.integers(1, 200), st.integers(1, 200))
def test_tile_cycles_bounds(a, b):
    """Cycles are bounded by the fully-padded tile grid and at least the
    work itself (each tile row/col contributes its active length)."""
    c = tile_cycles(a, b)
    tiles = math.ceil(a / 32) * math.ceil(b / 32)
    assert 2 <= c <= tiles * 64
    # Monotone in both arguments.
    assert tile_cycles(a + 32, b) > c
    assert tile_cycles(a, b + 32) > c


# -- Alg. 3 derive ----------------------------------------------------------


@given(
    st.lists(st.integers(2, 40), min_size=1, max_size=5),
    st.integers(1, 256),
)
def test_derive_group_minimal_above_limit(extents, limit):
    g = derive_group(extents, limit)
    vol = math.prod(extents)
    if vol < limit:
        assert g is None
    else:
        assert g.size >= limit
        # Minimal: one fewer block falls below the limit.
        prefix_vol = math.prod(extents[: g.prefix])
        assert prefix_vol * (g.block - 1) < limit
        assert 1 <= g.block <= extents[g.prefix]


# -- end-to-end planning -----------------------------------------------------


@given(problems(max_extent=7, min_rank=2, max_rank=4))
@settings(max_examples=40, deadline=None)
def test_any_problem_plans_and_executes(problem):
    """The planner must produce a correct executable plan for every
    shape/permutation, including degenerate extent-1 dims."""
    dims, perm = problem
    plan = make_plan(dims, perm, predictor=ORACLE)
    layout, p = TensorLayout(dims), Permutation(perm)
    src = np.arange(layout.volume, dtype=np.float64)
    assert np.array_equal(
        plan.execute(src), reference_transpose(src, layout, p)
    )
    assert plan.simulated_time() > 0
