"""Feature extraction for the per-kernel regression models.

Table II of the paper defines the feature sets:

- **Orthogonal-Distinct**: Volume, NumBlocks, Input slice, Output slice,
  Cycles (the warp-inefficiency count of Sec. V).
- **Orthogonal-Arbitrary**: Volume, NumThreads, Total Slice, Input
  Stride, Output Stride, Special Instr, Cycles (transaction-based).

The paper omits the FVI-match models "due to space constraints"; we use
analogous small feature sets so every schema is model-predictable.

Feature values come from each kernel's :meth:`features` dict; this
module pins the order so coefficient vectors are stable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.taxonomy import Schema
from repro.kernels.base import TransposeKernel

#: Canonical feature order per schema (intercept handled by the model).
FEATURE_NAMES: Dict[Schema, List[str]] = {
    Schema.ORTHOGONAL_DISTINCT: [
        "volume",
        "num_blocks",
        "input_slice",
        "output_slice",
        "cycles",
    ],
    Schema.ORTHOGONAL_ARBITRARY: [
        "volume",
        "num_threads",
        "total_slice",
        "input_stride",
        "output_stride",
        "special_instr",
        "cycles",
    ],
    Schema.FVI_MATCH_LARGE: [
        "volume",
        "num_blocks",
        "run_length",
    ],
    Schema.FVI_MATCH_SMALL: [
        "volume",
        "num_blocks",
        "slice_volume",
        "block_b",
        "fvi_extent",
    ],
}

#: Pretty labels used when rendering the Table II reproduction.
DISPLAY_NAMES: Dict[str, str] = {
    "volume": "Volume",
    "num_blocks": "NumBlocks",
    "num_threads": "NumThreads",
    "input_slice": "Input slice",
    "output_slice": "Output slice",
    "total_slice": "Total Slice",
    "input_stride": "Input Stride",
    "output_stride": "Output Stride",
    "special_instr": "Special Instr",
    "cycles": "Cycles",
    "run_length": "Run length",
    "slice_volume": "Slice volume",
    "block_b": "Block b",
    "fvi_extent": "FVI extent",
}


def feature_vector(kernel: TransposeKernel) -> np.ndarray:
    """Ordered feature vector for one kernel instance.

    Raises
    ------
    KeyError
        If the kernel's schema has no registered feature set, or the
        kernel's :meth:`features` dict is missing a registered feature.
    """
    names = FEATURE_NAMES[kernel.schema]
    feats = kernel.features()
    return np.array([feats[n] for n in names], dtype=np.float64)


def feature_matrix(kernels: Sequence[TransposeKernel]) -> np.ndarray:
    """Stack feature vectors for same-schema kernels into a matrix."""
    if not kernels:
        return np.empty((0, 0))
    schema = kernels[0].schema
    if any(k.schema is not schema for k in kernels):
        raise ValueError("all kernels must share one schema")
    return np.vstack([feature_vector(k) for k in kernels])
