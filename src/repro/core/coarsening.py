"""Thread-coarsening heuristic (Sec. IV-A).

Each slice requires an expensive per-block base-address computation
(mod/div decode of the block id).  Coarsening lets one thread block
process several consecutive sub-slices along one dimension, amortizing
the decode: subsequent sub-slices derive their bases by adding the
coarsened dimension's stride.

The paper's heuristic: pick the first dimension in input order (fastest
first) with extent between 4 and 32 that is not already inside the
slice, and only coarsen tensors larger than 2 MB (a high coarsening
factor on a small tensor cuts the block count enough to hurt occupancy
and cause tail effects).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.core.layout import TensorLayout

#: Extent window for a coarsenable dimension.
MIN_COARSEN_EXTENT = 4
MAX_COARSEN_EXTENT = 32

#: Minimum tensor size (bytes) before coarsening is considered.
MIN_TENSOR_BYTES = 2 * 1024 * 1024


def choose_coarsening(
    layout: TensorLayout,
    slice_dims: Iterable[int],
    elem_bytes: int = 8,
) -> Optional[Tuple[int, int]]:
    """Return ``(dim, factor)`` to coarsen, or ``None``.

    ``slice_dims`` are the dimensions already consumed by the slice
    (fully or blocked); the coarsening dimension must be a grid
    dimension.  The factor is the dimension's full extent ("the slice
    size gets multiplied by the size of the coarsening dimension").
    """
    if layout.nbytes(elem_bytes) <= MIN_TENSOR_BYTES:
        return None
    excluded = set(slice_dims)
    for d in range(layout.rank):
        if d in excluded:
            continue
        extent = layout.dims[d]
        if MIN_COARSEN_EXTENT <= extent <= MAX_COARSEN_EXTENT:
            return d, extent
    return None


def choose_coarsening_for_kernel(
    kernel, elem_bytes: int = 8
) -> Optional[Tuple[int, int]]:
    """:func:`choose_coarsening` with slice dims read off a built kernel.

    The slice dims are everything the kernel's coverage does not leave
    to the grid; kernels without a coverage (NAIVE) expose none.
    """
    layout = kernel.layout
    cov = getattr(kernel, "coverage", None)
    slice_dims: set = set()
    if cov is not None:
        slice_dims = {
            d for d in range(layout.rank) if d not in cov.outer_dims()
        }
    return choose_coarsening(layout, slice_dims, elem_bytes)
