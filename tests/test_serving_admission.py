"""Admission control: token buckets, inflight permits, backpressure."""

import pytest

from repro.serving.admission import AdmissionController, TokenBucket


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        now = 100.0
        assert all(bucket.take(now) for _ in range(3))
        assert not bucket.take(now)

    def test_lazy_refill(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.take(10.0) and bucket.take(10.0)
        assert not bucket.take(10.0)
        # 0.5 s at 2 tokens/s refills exactly one token.
        assert bucket.take(10.5)
        assert not bucket.take(10.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.take(0.0)
        assert bucket.tokens == pytest.approx(1.0)
        bucket.take(1000.0)  # a long idle period must not overfill
        assert bucket.tokens == pytest.approx(1.0)

    def test_time_going_backwards_is_harmless(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.take(10.0)
        assert not bucket.take(9.0)  # no refill from a reversed clock

    @pytest.mark.parametrize("rate,burst", [(0, 1), (1, 0), (-1, 1)])
    def test_invalid_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate, burst)


class TestAdmissionController:
    def test_inflight_cap_sheds_overloaded(self):
        ctl = AdmissionController(max_inflight=2)
        assert ctl.try_admit("a") is None
        assert ctl.try_admit("a") is None
        assert ctl.try_admit("a") == "OVERLOADED"
        assert ctl.inflight == 2 and not ctl.idle
        ctl.release()
        assert ctl.try_admit("a") is None
        ctl.release()
        ctl.release()
        assert ctl.idle
        assert ctl.shed_overloaded == 1
        assert ctl.admitted == 3

    def test_release_without_admit_is_a_bug(self):
        ctl = AdmissionController()
        with pytest.raises(RuntimeError, match="without a matching admit"):
            ctl.release()

    def test_tenant_quota_is_per_tenant(self):
        ctl = AdmissionController(tenant_rate=1.0, tenant_burst=1.0)
        now = 50.0
        assert ctl.try_admit("a", now=now) is None
        assert ctl.try_admit("a", now=now) == "QUOTA_EXCEEDED"
        # tenant b has its own bucket
        assert ctl.try_admit("b", now=now) is None
        assert ctl.shed_quota == 1
        # a's bucket refills with time
        assert ctl.try_admit("a", now=now + 1.5) is None

    def test_quota_shed_consumes_no_permit(self):
        ctl = AdmissionController(max_inflight=8, tenant_rate=1.0,
                                  tenant_burst=1.0)
        assert ctl.try_admit("a", now=0.0) is None
        assert ctl.try_admit("a", now=0.0) == "QUOTA_EXCEEDED"
        assert ctl.inflight == 1  # only the admitted request holds one

    def test_queue_depth_backpressure(self):
        ctl = AdmissionController(max_inflight=100, max_queue_depth=4)
        assert ctl.try_admit("a", queue_depth=4) is None
        assert ctl.try_admit("a", queue_depth=5) == "OVERLOADED"
        assert ctl.shed_overloaded == 1

    def test_burst_defaults_to_rate(self):
        ctl = AdmissionController(tenant_rate=3.0)
        assert ctl.tenant_burst == 3.0

    def test_invalid_max_inflight(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(max_inflight=0)

    def test_stats_shape(self):
        ctl = AdmissionController(max_inflight=4, tenant_rate=2.0,
                                  max_queue_depth=10)
        ctl.try_admit("a", now=0.0)
        stats = ctl.stats()
        assert stats["inflight"] == 1
        assert stats["max_inflight"] == 4
        assert stats["admitted"] == 1
        assert stats["tenants"] == 1
        assert stats["max_queue_depth"] == 10
