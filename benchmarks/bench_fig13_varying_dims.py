"""Fig. 13 reproduction: bandwidth vs dimension sizes.

Fixed permutation ``0 2 1 3`` over 4D tensors with all extents in
{15, 16, 31, 32, 63, 64, 127, 128}: small volumes are latency/occupancy
bound for every library; once the tensor is reasonably large TTLG
outperforms cuTT (the paper's Fig. 13 takeaway).
"""

import numpy as np

from conftest import write_result

from repro.bench.ascii_plot import multi_series
from repro.bench.suites import varying_dims_suite


def test_fig13(benchmark, libraries):
    cases = varying_dims_suite()
    names = [lib.name for lib in libraries if lib.name != "TTC"]
    series = {n: [] for n in names}
    lines = [
        "Fig. 13 — transpose performance, permutation 0 2 1 3, varying "
        "dimension sizes (repeated use)",
        f"{'dims':>18s} {'MB':>8s} " + " ".join(f"{n:>15s}" for n in names),
    ]
    for case in cases:
        row = {}
        for lib in libraries:
            if lib.name == "TTC":
                continue
            plan = lib.plan(case.dims, case.perm)
            row[lib.name] = plan.bandwidth_gbps()
            series[lib.name].append(row[lib.name])
        mb = case.volume * 8 / 1024**2
        cells = " ".join(f"{row[n]:>15.1f}" for n in names)
        lines.append(f"{case.label:>18s} {mb:>8.1f} {cells}")
    lines.append("")
    lines.append(
        multi_series(series, y_label="GB/s", x_label="dimension size")
    )
    text = "\n".join(lines)
    print(text)
    write_result("fig13_varying_dims", text)

    ttlg = np.array(series["TTLG"])
    cutt_h = np.array(series["cuTT Heuristic"])
    cutt_m = np.array(series["cuTT Measure"])
    # Paper shape: low bandwidth for small volumes across the board;
    # TTLG at/above cuTT once the volume is large.
    assert ttlg[0] < 0.5 * ttlg[-1]
    assert cutt_h[0] < 0.5 * max(cutt_h[-1], 1.0)
    big = slice(4, None)  # 63^4 and up (> 100 MB)
    assert np.all(ttlg[big] >= cutt_h[big] * 0.99)
    # Against cuTT-measure: TTLG matches on warp-aligned extents; on odd
    # extents measurement-based selection may edge the regression model
    # by a few percent when candidates sit inside its error band (a
    # documented deviation — the paper shows TTLG ahead everywhere).
    aligned = [3, 5, 7]  # 32^4, 64^4, 128^4
    assert np.all(ttlg[aligned] >= cutt_m[aligned] * 0.99)
    assert np.all(ttlg[big] >= cutt_m[big] * 0.90)
    # Warp-aligned extents beat their odd neighbours at equal scale.
    assert ttlg[3] > ttlg[2]  # 32 vs 31
    assert ttlg[5] > ttlg[4]  # 64 vs 63

    case = cases[-1]
    lib = libraries[0]
    benchmark(lambda: lib.plan(case.dims, case.perm))
