"""Admission control for the serving front end.

Three independent gates, checked in order at the server door (all of
them *before* any planning or scheduling happens, so a shed request
costs microseconds):

1. **Per-tenant token bucket** — each tenant refills at ``tenant_rate``
   requests/s up to a ``tenant_burst`` cap.  An empty bucket sheds with
   ``QUOTA_EXCEEDED`` so one chatty tenant cannot starve the rest.
2. **Bounded inflight permits** — at most ``max_inflight`` admitted
   requests may be anywhere between admission and reply.  When the
   permits are gone the server sheds with ``OVERLOADED`` instead of
   queueing unboundedly; the client's retry-with-backoff turns that
   into flow control.
3. **Queue-depth backpressure** — even with permits free, a replica
   whose scheduler backlog exceeds ``max_queue_depth`` sheds, keeping
   tail latency bounded when execution (not admission) is the
   bottleneck.

The controller is written for a single-threaded asyncio event loop:
plain counters, no locks.  ``inflight == 0`` is the drain condition —
the protocol tests assert every error path returns its permit.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError(
                f"rate and burst must be positive, got {rate}/{burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp: Optional[float] = None

    def take(self, now: Optional[float] = None, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; refills lazily."""
        if now is None:
            now = time.monotonic()
        if self._stamp is not None and now > self._stamp:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


#: Shed-reason codes (the wire error codes of ``docs/serving.md``).
OVERLOADED = "OVERLOADED"
QUOTA_EXCEEDED = "QUOTA_EXCEEDED"


class AdmissionController:
    """Inflight permits + per-tenant quotas + queue-depth shedding.

    Parameters
    ----------
    max_inflight:
        Admitted-but-unreplied request cap (the inflight semaphore).
    tenant_rate / tenant_burst:
        Token-bucket quota applied per tenant; ``None`` disables quotas.
    max_queue_depth:
        Shed when the routed replica's scheduler backlog exceeds this;
        ``None`` disables the gate.
    """

    def __init__(
        self,
        max_inflight: int = 256,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        max_queue_depth: Optional[int] = None,
    ):
        if max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self.tenant_rate = tenant_rate
        self.tenant_burst = (
            tenant_burst
            if tenant_burst is not None
            else (tenant_rate if tenant_rate is not None else None)
        )
        self.max_queue_depth = max_queue_depth
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight = 0
        #: Totals by shed reason, for the ``serving.*`` counters.
        self.admitted = 0
        self.shed_overloaded = 0
        self.shed_quota = 0

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def idle(self) -> bool:
        """True when no admitted request is awaiting its reply — the
        graceful-drain condition and the permit-leak test oracle."""
        return self._inflight == 0

    def try_admit(
        self,
        tenant: str,
        queue_depth: int = 0,
        now: Optional[float] = None,
    ) -> Optional[str]:
        """Admit one request or return the shed-reason code.

        On ``None`` (admitted) the caller holds one inflight permit and
        MUST pair it with exactly one :meth:`release`, on every path —
        success, error reply, disconnect, or deadline miss.
        """
        if self.tenant_rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.tenant_rate, self.tenant_burst
                )
            if not bucket.take(now):
                self.shed_quota += 1
                return QUOTA_EXCEEDED
        if self._inflight >= self.max_inflight:
            self.shed_overloaded += 1
            return OVERLOADED
        if (
            self.max_queue_depth is not None
            and queue_depth > self.max_queue_depth
        ):
            self.shed_overloaded += 1
            return OVERLOADED
        self._inflight += 1
        self.admitted += 1
        return None

    def release(self) -> None:
        if self._inflight <= 0:
            raise RuntimeError("release() without a matching admit")
        self._inflight -= 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "max_inflight": self.max_inflight,
            "inflight": self._inflight,
            "admitted": self.admitted,
            "shed_overloaded": self.shed_overloaded,
            "shed_quota": self.shed_quota,
            "tenant_rate": self.tenant_rate,
            "tenant_burst": self.tenant_burst,
            "max_queue_depth": self.max_queue_depth,
            "tenants": len(self._buckets),
        }
