"""Fig. 14 reproduction: the TTC benchmark suite (57 tensors).

Ranks 2-6, ~200 MB each, permutations with no fusible index pair (see
``repro.bench.suites.ttc_benchmark_suite`` for the reconstruction
notes).  Paper shape: TTLG outperforms cuTT-measure and cuTT-heuristic
for most cases; TTC performs much better here than on the 6D sweeps but
stays below TTLG and cuTT.
"""

import numpy as np

from conftest import write_result

from repro.bench.ascii_plot import multi_series
from repro.bench.suites import ttc_benchmark_suite


def test_fig14(benchmark, libraries):
    cases = ttc_benchmark_suite()
    names = [lib.name for lib in libraries]
    series = {n: [] for n in names}
    lines = [
        "Fig. 14 — TTC benchmark suite (57 tensors, repeated use)",
        f"{'case':>24s} {'rank':>5s} " + " ".join(f"{n:>15s}" for n in names),
    ]
    for case in cases:
        row = {}
        for lib in libraries:
            plan = lib.plan(case.dims, case.perm)
            row[lib.name] = plan.bandwidth_gbps()
            series[lib.name].append(row[lib.name])
        cells = " ".join(f"{row[n]:>15.1f}" for n in names)
        lines.append(f"{case.label:>24s} {case.scaled_rank:>5d} {cells}")
    lines.append("")
    for n in names:
        s = np.array(series[n])
        lines.append(
            f"{n:<16s} mean {s.mean():7.1f}  median {np.median(s):7.1f}  "
            f"min {s.min():7.1f}  peak {s.max():7.1f} GB/s"
        )
    lines.append("")
    lines.append(
        multi_series(series, y_label="GB/s", x_label="input case")
    )
    text = "\n".join(lines)
    print(text)
    write_result("fig14_ttc_suite", text)

    ttlg = np.array(series["TTLG"])
    cutt_m = np.array(series["cuTT Measure"])
    cutt_h = np.array(series["cuTT Heuristic"])
    ttc = np.array(series["TTC"])
    # Paper shape: TTLG ahead for most cases; TTC competitive here
    # (much closer than on the 6D small-extent sweeps) but still below.
    assert np.mean(ttlg >= cutt_m * 0.99) > 0.7
    assert np.mean(ttlg >= cutt_h * 0.99) > 0.9
    assert ttc.mean() < ttlg.mean()
    assert ttc.mean() > 0.55 * ttlg.mean()  # "much better for these inputs"

    case = cases[0]
    lib = libraries[3]
    benchmark(lambda: lib.plan(case.dims, case.perm))
