"""Ablation: shared-memory padding (the 32x33 buffer, Sec. III).

Without the extra pad column, every element of a tile column maps to
the same bank and the copy-out reads serialize 32-way.  The kernels'
counters are padded by construction; this bench rebuilds the unpadded
cost from the same counters plus the analytic conflict degree and
compares simulated times — the classic transpose optimization the
paper's Fig. 1 narrative leans on.
"""

from conftest import write_result

from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.gpusim.cost import CostModel
from repro.gpusim.sharedmem import column_access_degree
from repro.kernels.orthogonal_distinct import TILE, OrthogonalDistinctKernel

CASES = [
    ("128x128 matrix", (128, 128), (1, 0), 1, 1, 1, 1),
    ("1024x1024 matrix", (1024, 1024), (1, 0), 0, 32, 0, 32),
    ("6D all-16 reversal", (16,) * 6, (5, 4, 3, 2, 1, 0), 2, 1, 2, 1),
]


def unpadded_time(kernel: OrthogonalDistinctKernel, cm: CostModel) -> float:
    c = kernel.counters()
    degree = column_access_degree(
        TILE, TILE, kernel.spec.shared_mem_banks  # pitch 32: unpadded
    )
    c.smem_conflict_cycles += (degree - 1) * c.smem_ld_accesses
    return cm.kernel_time(c, kernel.launch_geometry)


def test_ablation_padding(benchmark):
    cm = CostModel()
    lines = [
        "Ablation — shared-memory padding (Orthogonal-Distinct tiles)",
        f"{'case':<22s} {'padded ms':>10s} {'unpadded ms':>12s} "
        f"{'slowdown':>9s}",
    ]
    slowdowns = []
    kernels = []
    for name, dims, perm, ip, ba, op, bb in CASES:
        k = OrthogonalDistinctKernel(
            TensorLayout(dims), Permutation(perm), ip, ba, op, bb
        )
        kernels.append(k)
        padded = k.simulated_time(cm)
        unpadded = unpadded_time(k, cm)
        slowdowns.append(unpadded / padded)
        lines.append(
            f"{name:<22s} {padded * 1e3:>10.3f} {unpadded * 1e3:>12.3f} "
            f"{unpadded / padded:>9.2f}x"
        )

    # Orthogonal-Arbitrary auto-pad (Sec. IV "solved by specialization"):
    # a power-of-two gather pattern fully serializes without the pad.
    from repro.kernels.orthogonal_arbitrary import OrthogonalArbitraryKernel

    oa_dims, oa_perm = (32, 32, 512), (1, 0, 2)
    k0 = OrthogonalArbitraryKernel(
        TensorLayout(oa_dims), Permutation(oa_perm), 1, 1, 1, 1, pad=0
    )
    ka = OrthogonalArbitraryKernel(
        TensorLayout(oa_dims), Permutation(oa_perm), 1, 1, 1, 1, pad="auto"
    )
    t0, ta = k0.simulated_time(cm), ka.simulated_time(cm)
    lines.append("")
    lines.append(
        "Orthogonal-Arbitrary auto-pad "
        f"(dims {oa_dims}, perm {oa_perm}): conflict degree "
        f"{k0.smem_read_conflict_degree():.0f} -> "
        f"{ka.smem_read_conflict_degree():.0f}, time {t0 * 1e3:.3f} -> "
        f"{ta * 1e3:.3f} ms ({t0 / ta:.2f}x)"
    )
    text = "\n".join(lines)
    print(text)
    write_result("ablation_padding", text)

    # Unpadded buffers must hurt, substantially on the big cases.
    assert all(s >= 1.0 for s in slowdowns)
    assert max(slowdowns) > 1.25
    assert ka.smem_read_conflict_degree() < k0.smem_read_conflict_degree()
    assert ta <= t0

    benchmark(lambda: unpadded_time(kernels[1], cm))
