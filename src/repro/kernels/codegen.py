"""Codegen execution tier: specialized cache-blocked loop-nest kernels.

The indexed/chunked executor programs move every element through NumPy
fancy gather/scatter, which streams a volume-sized int64 index map
*alongside* the data — roughly doubling DRAM traffic — and holds the
GIL for the whole move.  The procpool results
(``results/procpool_scaling.json``) show that path is memory-bound, not
GIL-bound, on the large cases; HPTT demonstrates that on CPUs a
cache-blocked loop nest with an explicit loop-order/blocking search
beats gather-based transposition outright.  This module is that tier
for the NumPy layer:

1. **Search** (:func:`search_nest`) — an HPTT-style enumeration over
   the two *critical* output axes (where the source's fastest axis
   lands, and the output's own fastest axis), block-size candidates
   per axis, and the tile-loop orders — scored entirely by the
   repository's analytic DRAM model (:func:`nest_cost`, built on
   :func:`~repro.kernels.common.lattice_run_transactions`), never by
   measurement.  The paper's own slice search (Alg. 3) is the shape:
   tiny candidate grid, analytic scoring, deterministic winner.
2. **Generation** (:func:`nest_source`) — the winning configuration is
   emitted as *source code*: a loop nest of NumPy slice assignments
   specialized to the exact shape, blocks, and loop order (constants
   baked in, ``exec``-compiled once).  Strided slice assignment
   releases the GIL, so nest tasks also scale on the thread pool.
3. **JIT** — when ``numba`` is installed (the ``jit`` optional
   dependency), a fully scalarized loop nest is emitted instead and
   ``numba.njit``-compiled; any numba failure falls back to the NumPy
   slice backend at runtime, bit-exactly.  :func:`compile_backend`
   reports which backend is active.
4. **Fallback** — when the model says blocking cannot beat fancy
   indexing (plus its map traffic) by :data:`PROFIT_MARGIN`, or the
   operand is below :data:`NEST_MIN_BYTES`, :func:`maybe_nest_program`
   returns ``None`` and the caller keeps the bit-exact
   :class:`~repro.kernels.executor.IndexedProgram` route.

Two measurement-era extensions (see ``docs/codegen.md``):

- The cache budget the reuse test prices against is **probed from the
  host** at import (sysfs ``cache/index*/size``, largest per-core
  level-<=2 data cache, 3/4 of it) instead of assuming 768 KiB; the
  ``REPRO_CODEGEN_CACHE_BYTES`` env knob still overrides
  (:func:`detect_cache_budget`).
- With ``refine >= 2`` the search keeps its analytic top-K shortlist
  and a **timed micro-probe** (:func:`refine_descriptor`) on the live
  host picks the winner — HPTT's measured refinement, bounded to K
  generated kernels and a handful of runs, with hysteresis so the
  refined pick is never slower than the analytic one.

Search outcomes are persisted as **artifacts** (loop order, blocks,
source hash, search time, probe outcome) in the :class:`~repro.runtime
.store.PlanStore` next to the plans, keyed by the fused geometry
(:func:`artifact_key`), so a warm restart rebuilds zero searches and
runs zero probes — :func:`codegen_stats` counts hits/misses and the
search seconds saved.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from threading import Lock
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import native as _native
from repro.kernels.common import lattice_run_transactions, strides_lattice
from repro.kernels.executor import ExecutorProgram

#: Cache-line granularity of the CPU cost model (bytes).
LINE_BYTES = 64

#: Fallback effective cache budget when the host exposes no cache
#: topology (3/4 of a typical 1 MiB L2): the reuse working set shares
#: the cache with the destination stream and everything else, so a
#: tile whose reuse distance *equals* the nominal capacity already
#: thrashes.
DEFAULT_CACHE_BUDGET = (1 << 20) * 3 // 4

#: Where Linux exposes the per-core cache hierarchy.
_SYSFS_CACHE_ROOT = "/sys/devices/system/cpu/cpu0/cache"


def parse_cache_size(text) -> Optional[int]:
    """Bytes of a sysfs cache ``size`` string (``"48K"``, ``"2M"``)."""
    if not isinstance(text, str):
        return None
    text = text.strip()
    scale = 1
    if text[-1:] in ("K", "k"):
        scale, text = 1024, text[:-1]
    elif text[-1:] in ("M", "m"):
        scale, text = 1 << 20, text[:-1]
    elif text[-1:] in ("G", "g"):
        scale, text = 1 << 30, text[:-1]
    try:
        n = int(text)
    except ValueError:
        return None
    return n * scale if n > 0 else None


def probe_cache_bytes(root: str = _SYSFS_CACHE_ROOT) -> Optional[int]:
    """The host's largest *per-core* data cache, in bytes, or ``None``.

    Walks ``cache/index*/`` under cpu0 and keeps the biggest
    non-instruction cache at level <= 2.  The shared L3 is deliberately
    excluded: the reuse test models what one worker thread can keep
    resident, and on a loaded pool the LLC belongs to everyone.
    """
    best: Optional[int] = None
    try:
        entries = sorted(os.listdir(root))
    except OSError:
        return None
    for name in entries:
        if not name.startswith("index"):
            continue
        d = os.path.join(root, name)
        try:
            with open(os.path.join(d, "type")) as f:
                ctype = f.read().strip()
            with open(os.path.join(d, "level")) as f:
                level = int(f.read().strip())
            with open(os.path.join(d, "size")) as f:
                size = parse_cache_size(f.read())
        except (OSError, ValueError):
            continue
        if ctype == "Instruction" or level > 2 or size is None:
            continue
        if best is None or size > best:
            best = size
    return best


def detect_cache_budget(env=None, root: str = _SYSFS_CACHE_ROOT) -> int:
    """The effective cache budget for the reuse test, in bytes.

    ``REPRO_CODEGEN_CACHE_BYTES`` wins verbatim when set (the PR-7
    knob, kept for foreign hosts and pinned experiments); otherwise 3/4
    of the probed per-core cache (:func:`probe_cache_bytes`); otherwise
    :data:`DEFAULT_CACHE_BUDGET`.
    """
    env = os.environ if env is None else env
    override = env.get("REPRO_CODEGEN_CACHE_BYTES")
    if override:
        try:
            return int(override)
        except ValueError:
            pass
    probed = probe_cache_bytes(root)
    if probed:
        return probed * 3 // 4
    return DEFAULT_CACHE_BUDGET


#: Effective cache budget for the source-line reuse test, resolved at
#: import: env override, else probed from sysfs, else the fallback.
#: Cost functions read it at call time (or take ``cache_budget=``), so
#: tests pin it explicitly.
CACHE_BUDGET_BYTES = detect_cache_budget()

#: Modeled per-tile interpreter overhead, in cache-line equivalents.
#: This is what makes the model reject tiny tiles (and tiny tensors):
#: each tile costs one Python-level slice-assignment dispatch.
TILE_OVERHEAD_LINES = 256

#: Block-size candidates per critical axis (the axis's full extent is
#: always added).  Powers of two bracketing one cache line of f64/f32
#: elements up to a typical L1-resident panel.
BLOCK_CANDIDATES = (8, 16, 32, 64)

#: Writing destination lines out of ascending order defeats the
#: hardware's sequential-writeback prefetch; tile-loop orders whose
#: innermost loop is not the output's fastest axis pay this factor on
#: the destination stream.
NONSEQ_DST_FACTOR = 1.05

#: Below this many payload bytes generation is never profitable: the
#: whole move is a handful of cache-resident gathers and the nest's
#: per-tile dispatch dominates anything the model could save.
NEST_MIN_BYTES = 1 << 20

#: The modeled nest must beat the modeled indexed path by this factor
#: before a generated kernel replaces the (simpler) IndexedProgram.
PROFIT_MARGIN = 1.2

#: Bumped when the search space, cost model, or generated source shape
#: changes: stale persisted artifacts are ignored, never misapplied.
CODEGEN_VERSION = 1


# ----------------------------------------------------------------------
# Optional numba backend (the `jit` extra)
# ----------------------------------------------------------------------

_NUMBA = None
if os.environ.get("REPRO_CODEGEN_JIT", "1") != "0":  # pragma: no branch
    try:  # pragma: no cover - exercised only with the jit extra installed
        import numba as _NUMBA  # type: ignore[no-redef]
    except Exception:  # ImportError, or a broken install
        _NUMBA = None


def compile_backend() -> str:
    """Which codegen compile backend is active: ``numba`` or ``numpy``."""
    return "numba" if _NUMBA is not None else "numpy"


# ----------------------------------------------------------------------
# Optional native (C) backend — repro.kernels.native
# ----------------------------------------------------------------------

#: ``REPRO_CODEGEN_NATIVE=0`` force-disables the native tier even when
#: a host toolchain exists (mirrors ``REPRO_CODEGEN_JIT`` for numba).
_NATIVE_ENABLED = os.environ.get("REPRO_CODEGEN_NATIVE", "1") != "0"


def native_enabled() -> bool:
    """Whether the native (C) backend may attach to new programs."""
    return _NATIVE_ENABLED and _native.toolchain() is not None


# ----------------------------------------------------------------------
# Module-level codegen statistics
# ----------------------------------------------------------------------

_STATS_LOCK = Lock()

#: Zero state of every counter.  Snapshot and reset both operate on the
#: whole dict under :data:`_STATS_LOCK` — one lock, whole-dict copy —
#: so concurrent schedulers can never observe a torn mix of pre- and
#: post-reset values (e.g. native wins from one epoch against python
#: wins from another).
_STATS_ZERO = {
    "searches": 0,
    "search_s": 0.0,
    "artifact_hits": 0,
    "artifact_misses": 0,
    "search_s_saved": 0.0,
    "programs_generated": 0,
    "fallbacks": 0,
    "jit_compiled": 0,
    "jit_failures": 0,
    "refinements": 0,
    "refine_switches": 0,
    "probe_s": 0.0,
    # Native (C) backend — counted by repro.kernels.native through the
    # set_counter hook, so they live under this same lock.
    "native_compiled": 0,
    "native_so_cache_hits": 0,
    "native_compile_failures": 0,
    "native_load_failures": 0,
    "native_call_failures": 0,
    "native_unsupported": 0,
    "native_toolchain_missing": 0,
    "native_attached": 0,
}

_STATS = dict(_STATS_ZERO)


def _count(name: str, value=1) -> None:
    with _STATS_LOCK:
        _STATS[name] += value


# Route the native module's counters through the same dict + lock:
# codegen_stats() is then a single consistent snapshot across the
# python, numba, and C backends.
_native.set_counter(_count)


def codegen_stats() -> dict:
    """One atomic snapshot of the search/artifact/backend counters.

    The counter dict is copied whole under the single module lock
    (never key-by-key), so a snapshot taken while other schedulers are
    counting — or while :func:`reset_codegen_stats` runs — is always
    internally consistent.  The derived ``backend``/``native`` fields
    are pure functions of process state, appended after the copy.
    """
    with _STATS_LOCK:
        snap = dict(_STATS)
    snap["backend"] = compile_backend()
    info = _native.compiler_info()
    snap["native"] = {
        "enabled": _NATIVE_ENABLED,
        "available": bool(_NATIVE_ENABLED and info["available"]),
        "cc": info["path"],
        "cc_version": info["version"],
    }
    return snap


def reset_codegen_stats() -> None:
    """Zero the counters (benchmark cold-start conditions).

    The zero state replaces the live values in one operation under the
    same lock :func:`_count` and :func:`codegen_stats` take, so a
    concurrent snapshot sees either the old epoch or the new one —
    never a mix.
    """
    with _STATS_LOCK:
        _STATS.update(_STATS_ZERO)


# ----------------------------------------------------------------------
# Analytic cost model
# ----------------------------------------------------------------------


def _strides_of(shape: Sequence[int]) -> List[int]:
    strides = [0] * len(shape)
    s = 1
    for a in range(len(shape) - 1, -1, -1):
        strides[a] = s
        s *= int(shape[a])
    return strides


def _inverse(axes: Sequence[int]) -> List[int]:
    inv = [0] * len(axes)
    for k, a in enumerate(axes):
        inv[a] = k
    return inv


def nest_cost(
    in_shape: Sequence[int],
    axes: Sequence[int],
    tiles: Sequence[int],
    elem_bytes: int,
    order: Sequence[int] = (),
    cache_budget: Optional[int] = None,
) -> float:
    """Modeled cache-line traffic of one blocked nest configuration.

    ``in_shape``/``axes`` are the NumPy input shape and transpose axes;
    ``tiles`` gives the tile extent per *output* axis (full extent =
    unblocked); ``order`` lists the blocked output axes outermost
    first.  The unit is cache lines — comparable across configurations
    and against :func:`indexed_cost`, nothing more.

    The model reuses the kernels' DRAM primitives: per tile, the
    destination touches ``tile_vol / r_dst`` contiguous runs and the
    source ``tile_vol / r_src`` (``r`` = the contiguous run length the
    tiling preserves on each side), each run costing
    :func:`~repro.kernels.common.lattice_run_transactions` lines on its
    stride lattice.  Source lines are *refetched* when the reuse
    distance between consecutive visits — everything the nest touches
    across the inner axes, twice (source + destination streams) —
    exceeds :data:`CACHE_BUDGET_BYTES`; the penalty saturates at the
    per-line element count.  A per-tile interpreter overhead term
    (:data:`TILE_OVERHEAD_LINES`) makes small tiles and small tensors
    lose, which is exactly the fallback regime.
    """
    nd = len(in_shape)
    budget = CACHE_BUDGET_BYTES if cache_budget is None else int(cache_budget)
    out_shape = [int(in_shape[a]) for a in axes]
    tiles = [min(int(t), e) for t, e in zip(tiles, out_shape)]
    src_strides = _strides_of(in_shape)
    out_strides = _strides_of(out_shape)
    moved_strides = [src_strides[axes[k]] for k in range(nd)]
    inv = _inverse(axes)
    eb = int(elem_bytes)

    tile_vol = math.prod(tiles)
    n_tiles = math.prod(
        -(-out_shape[k] // tiles[k]) for k in range(nd)
    )

    # Contiguous run lengths a tile preserves on each side: walk the
    # fastest axes inward until one is blocked below its full extent.
    r_dst = 1
    for k in range(nd - 1, -1, -1):
        r_dst *= tiles[k]
        if tiles[k] < out_shape[k]:
            break
    r_src = 1
    for a in range(nd - 1, -1, -1):
        r_src *= tiles[inv[a]]
        if tiles[inv[a]] < int(in_shape[a]):
            break

    lat_dst = strides_lattice(
        [out_strides[k] * eb for k in range(nd)], LINE_BYTES
    )
    lat_src = strides_lattice(
        [moved_strides[k] * eb for k in range(nd)], LINE_BYTES
    )
    dst_lines = (
        tile_vol / max(r_dst, 1)
        * lattice_run_transactions(r_dst, eb, lat_dst, LINE_BYTES)
    )
    src_lines = (
        tile_vol / max(r_src, 1)
        * lattice_run_transactions(r_src, eb, lat_src, LINE_BYTES)
    )

    # Source-line refetch: the source's fastest axis lands at output
    # position p.  Between consecutive values of that axis the nest
    # sweeps every inner output axis, touching source + destination
    # once each; when that working set overflows the cache budget, the
    # partially-consumed source lines are gone and each line is re-read
    # once per element it holds.
    p = inv[nd - 1]
    refetch = 1.0
    if p != nd - 1:
        reuse_elems = math.prod(tiles[k] for k in range(p + 1, nd))
        if 2 * reuse_elems * eb > budget:
            refetch = float(min(max(LINE_BYTES // eb, 1), tiles[p]))

    dst_factor = 1.0
    if order and order[-1] != nd - 1 and tiles[nd - 1] < out_shape[nd - 1]:
        dst_factor = NONSEQ_DST_FACTOR

    cost = (src_lines * refetch + dst_lines * dst_factor) * n_tiles
    cost += TILE_OVERHEAD_LINES * n_tiles
    return cost


def indexed_cost(
    in_shape: Sequence[int],
    axes: Sequence[int],
    elem_bytes: int,
    cache_budget: Optional[int] = None,
) -> float:
    """Modeled cache-line traffic of the fancy-indexing route.

    The same data movement as an unblocked nest (full-extent tiles,
    including the refetch penalty — gather iterates in output order
    exactly like the nest does), **plus** the volume-sized int64 index
    map streaming alongside (the traffic the codegen tier exists to
    remove).
    """
    out_shape = [int(in_shape[a]) for a in axes]
    volume = math.prod(out_shape) if out_shape else 0
    map_lines = volume * 8 / LINE_BYTES
    return (
        nest_cost(in_shape, axes, out_shape, elem_bytes,
                  cache_budget=cache_budget)
        + map_lines
    )


# ----------------------------------------------------------------------
# Search
# ----------------------------------------------------------------------


def critical_axes(axes: Sequence[int]) -> List[int]:
    """The output axes worth blocking, HPTT-style: where the source's
    fastest (stride-1) axis lands, and the output's own fastest axis.
    Blocking any other axis changes neither side's run structure."""
    nd = len(axes)
    if nd == 0:
        return []
    p = _inverse(axes)[nd - 1]
    return sorted({p, nd - 1})


def _axis_candidates(extent: int) -> List[int]:
    cands = {c for c in BLOCK_CANDIDATES if c < extent}
    cands.add(int(extent))
    return sorted(cands)


def _loop_orders(blocked: Sequence[int], nd: int) -> List[Tuple[int, ...]]:
    """Tile-loop order candidates: the blocked axes (axis 0 always
    leads — it is the partition axis), in each relative order."""
    inner = [a for a in blocked if a != 0]
    orders = [tuple(inner)]
    if len(inner) == 2:
        orders.append((inner[1], inner[0]))
    lead = [0] if (0 in blocked or True) else []
    return [tuple(lead) + o for o in orders]


def search_nest(
    in_shape: Sequence[int],
    axes: Sequence[int],
    elem_bytes: int,
    top_k: int = 1,
    cache_budget: Optional[int] = None,
) -> dict:
    """Exhaustive scored search over blocks x loop orders.

    Returns the winning descriptor::

        {"codegen_version", "in_shape", "axes", "elem_bytes",
         "tiles", "order", "cost", "indexed_cost", "profitable",
         "cache_budget", "search_ms"}

    ``profitable`` is the :data:`PROFIT_MARGIN` verdict against
    :func:`indexed_cost`; deterministic: ties break toward larger
    blocks (fewer tiles) and the destination-sequential loop order,
    both already encoded in the score.

    ``top_k > 1`` additionally records the ``top_k`` best-scored
    distinct configurations under ``"candidates"`` (winner first, by
    ascending modeled cost) — the analytic shortlist
    :func:`refine_descriptor` micro-probes on the live host.
    """
    started = time.perf_counter()
    nd = len(in_shape)
    budget = CACHE_BUDGET_BYTES if cache_budget is None else int(cache_budget)
    out_shape = [int(in_shape[a]) for a in axes]
    crit = critical_axes(axes)
    per_axis = [_axis_candidates(out_shape[a]) for a in crit]
    orders = _loop_orders(sorted(set(crit) | {0}), nd)

    scored: List[Tuple[float, Tuple[int, ...], Tuple[int, ...]]] = []
    combos: List[List[int]] = [[]]
    for cands in per_axis:
        combos = [c + [b] for c in combos for b in cands]
    for combo in combos:
        tiles = list(out_shape)
        for a, b in zip(crit, combo):
            tiles[a] = b
        for order in orders:
            cost = nest_cost(
                in_shape, axes, tiles, elem_bytes, order, cache_budget=budget
            )
            scored.append((cost, tuple(tiles), order))
    assert scored
    scored.sort()
    cost, tiles, order = scored[0]
    idx_cost = indexed_cost(in_shape, axes, elem_bytes, cache_budget=budget)
    volume_bytes = math.prod(out_shape) * int(elem_bytes) if out_shape else 0
    profitable = (
        volume_bytes >= NEST_MIN_BYTES and cost * PROFIT_MARGIN <= idx_cost
    )
    elapsed = time.perf_counter() - started
    _count("searches")
    _count("search_s", elapsed)
    desc = {
        "codegen_version": CODEGEN_VERSION,
        "in_shape": [int(d) for d in in_shape],
        "axes": [int(a) for a in axes],
        "elem_bytes": int(elem_bytes),
        "tiles": list(tiles),
        "order": list(order),
        "cost": round(cost, 3),
        "indexed_cost": round(idx_cost, 3),
        "profitable": bool(profitable),
        "cache_budget": budget,
        "search_ms": round(elapsed * 1e3, 4),
    }
    if top_k > 1:
        seen = set()
        candidates = []
        for c, t, o in scored:
            if (t, o) in seen:
                continue
            seen.add((t, o))
            candidates.append(
                {"tiles": list(t), "order": list(o), "cost": round(c, 3)}
            )
            if len(candidates) >= top_k:
                break
        desc["candidates"] = candidates
    return desc


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------


def nest_source(
    in_shape: Sequence[int],
    axes: Sequence[int],
    tiles: Sequence[int],
    order: Sequence[int],
    batch: bool = False,
    scalar: bool = False,
) -> str:
    """The specialized kernel source for one searched configuration.

    The emitted function ``_nest(moved, out_nd, lo, hi)`` copies the
    transposed input view ``moved`` into ``out_nd`` between rows
    ``lo:hi`` of output axis 0 (the partition axis) — every extent,
    block size, and loop bound is a baked-in constant.  ``batch`` emits
    the fused-batch variant (one leading ``:`` on every subscript, the
    same nest moving all rows per tile).  ``scalar`` emits fully
    scalarized element loops instead of slice assignments — the form
    ``numba.njit`` compiles (and auto-vectorizes) directly.
    """
    nd = len(in_shape)
    out_shape = [int(in_shape[a]) for a in axes]
    tiles = [min(int(t), e) for t, e in zip(tiles, out_shape)]
    looped = [a for a in order if a == 0 or tiles[a] < out_shape[a]]
    if 0 not in looped:
        looped = [0] + looped

    lines = ["def _nest(moved, out_nd, lo, hi):"]
    pad = "    "
    depth = 1
    bounds: Dict[int, Tuple[str, str]] = {}
    for a in looped:
        start, stop = ("lo", "hi") if a == 0 else ("0", str(out_shape[a]))
        var, upper = f"i{a}", f"u{a}"
        lines.append(
            f"{pad * depth}for {var} in range({start}, {stop}, {tiles[a]}):"
        )
        depth += 1
        lines.append(
            f"{pad * depth}{upper} = min({var} + {tiles[a]}, {stop})"
        )
        bounds[a] = (var, upper)
    if 0 not in bounds:
        bounds[0] = ("lo", "hi")

    if not scalar:
        subs = []
        for a in range(nd):
            if a in bounds:
                subs.append("{}:{}".format(*bounds[a]))
            else:
                subs.append(":")
        sel = ", ".join(subs)
        if batch:
            sel = ":, " + sel
        lines.append(f"{pad * depth}out_nd[{sel}] = moved[{sel}]")
        return "\n".join(lines) + "\n"

    # Scalarized form: element loops inside the tile loops, innermost
    # loop over the output's fastest axis so the JIT vectorizes it
    # (the batch loop, when present, runs outermost for the same
    # reason).
    if batch:
        lines.append(
            f"{pad * depth}for xb in range(out_nd.shape[0]):"
        )
        depth += 1
    for a in range(nd):
        lo_e, hi_e = bounds.get(a, ("0", str(out_shape[a])))
        lines.append(
            f"{pad * depth}for x{a} in range({lo_e}, {hi_e}):"
        )
        depth += 1
    if batch:
        idx = "xb, " + ", ".join(f"x{a}" for a in range(nd))
    else:
        idx = ", ".join(f"x{a}" for a in range(nd))
    lines.append(f"{pad * depth}out_nd[{idx}] = moved[{idx}]")
    return "\n".join(lines) + "\n"


def _compile_source(source: str):
    namespace: dict = {"min": min, "range": range}
    exec(compile(source, "<repro-codegen>", "exec"), namespace)
    return namespace["_nest"]


def source_hash(*sources: str) -> str:
    h = hashlib.sha1()
    for s in sources:
        h.update(s.encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# The program kind
# ----------------------------------------------------------------------


class NestProgram(ExecutorProgram):
    """A generated cache-blocked loop nest, specialized to one problem.

    Holds the compiled single and batch kernel functions plus the
    descriptor the search produced.  Bit-exact against every other
    program kind by construction: the nest assigns the transposed view
    tile by tile, covering the output exactly once.  Partition tasks
    are row ranges of output axis 0 (the generated kernels take
    ``lo``/``hi`` bounds), so the scheduler fans nest tasks across the
    thread pool like any other program — and slice assignment releases
    the GIL, so they genuinely run concurrently.
    """

    kind = "nest"

    def __init__(
        self,
        descriptor: dict,
        native_dir=None,
        use_native: Optional[bool] = None,
    ):
        in_shape = tuple(int(d) for d in descriptor["in_shape"])
        super().__init__(int(np.prod(in_shape, dtype=np.int64)))
        self.descriptor = dict(descriptor)
        self.in_shape = in_shape
        self.axes = tuple(int(a) for a in descriptor["axes"])
        self.out_shape = tuple(self.in_shape[a] for a in self.axes)
        self.tiles = tuple(int(t) for t in descriptor["tiles"])
        self.order = tuple(int(a) for a in descriptor["order"])
        self.source = nest_source(
            self.in_shape, self.axes, self.tiles, self.order
        )
        self.batch_source = nest_source(
            self.in_shape, self.axes, self.tiles, self.order, batch=True
        )
        self.descriptor["source_sha"] = source_hash(
            self.source, self.batch_source
        )
        self.descriptor["backend"] = compile_backend()
        self._fn = _compile_source(self.source)
        self._batch_fn = _compile_source(self.batch_source)
        # Native (C) backend: compiled out-of-band, loaded via ctypes,
        # GIL released for the whole call.  Any failure to attach —
        # no toolchain, unsupported width, compile or dlopen error —
        # keeps the numba/python chain below, bit-exactly.
        self._native = self._native_batch = None
        self._elem_bytes = int(descriptor.get("elem_bytes", 0))
        want_native = _NATIVE_ENABLED if use_native is None else use_native
        if want_native and self._elem_bytes > 0:
            kit = _native.native_kernel(
                self.in_shape, self.axes, self.tiles, self.order,
                self._elem_bytes, cache_dir=native_dir,
            )
            if kit is not None:
                self._native, self._native_batch = kit
                self.descriptor["backend"] = "c"
                _count("native_attached")
        self._jit = self._jit_batch = None
        if _NUMBA is not None:  # pragma: no cover - needs the jit extra
            try:
                scalar = nest_source(
                    self.in_shape, self.axes, self.tiles, self.order,
                    scalar=True,
                )
                scalar_batch = nest_source(
                    self.in_shape, self.axes, self.tiles, self.order,
                    batch=True, scalar=True,
                )
                self._jit = _NUMBA.njit(cache=False)(
                    _compile_source(scalar)
                )
                self._jit_batch = _NUMBA.njit(cache=False)(
                    _compile_source(scalar_batch)
                )
                _count("jit_compiled")
            except Exception:
                self._jit = self._jit_batch = None
                self._sync_backend()
                _count("jit_failures")
        _count("programs_generated")

    def _sync_backend(self) -> None:
        """Record the surviving backend chain head: c > numba > numpy."""
        if self._native is not None:
            self.descriptor["backend"] = "c"
        elif self._jit is not None:  # pragma: no cover - needs jit extra
            self.descriptor["backend"] = "numba"
        else:
            self.descriptor["backend"] = "numpy"

    # -- pickling: compiled code objects and numba dispatchers do not
    # pickle; the descriptor regenerates everything deterministically ----
    def __getstate__(self) -> dict:
        return {"descriptor": self.descriptor}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["descriptor"])

    def _moved(self, src: np.ndarray) -> np.ndarray:
        return np.transpose(src.reshape(self.in_shape), self.axes)

    def _moved_batch(self, srcs: np.ndarray) -> np.ndarray:
        axes = (0,) + tuple(a + 1 for a in self.axes)
        return np.transpose(
            srcs.reshape((srcs.shape[0],) + self.in_shape), axes
        )

    def _call(self, jit, fn, moved, out_nd, lo, hi) -> None:
        if jit is not None:  # pragma: no cover - needs the jit extra
            try:
                jit(moved, out_nd, lo, hi)
                return
            except Exception:
                # Typing/lowering failures surface before any element
                # moves; drop to the slice backend permanently.
                self._jit = self._jit_batch = None
                self._sync_backend()
                _count("jit_failures")
        fn(moved, out_nd, lo, hi)

    def _native_eligible(self, src: np.ndarray, dst: np.ndarray) -> bool:
        """Whether this call may take the C entry point.

        A ``False`` here is per-call, not permanent: the emitted object
        bakes the element width in, and raw pointers require both flat
        buffers to be C-contiguous (they always are on the scheduler
        path; oddly-strided callers just take the Python nest).
        """
        return (
            self._native is not None
            and src.dtype.itemsize == self._elem_bytes
            and src.flags["C_CONTIGUOUS"]
            and dst.flags["C_CONTIGUOUS"]
        )

    def _native_failed(self) -> None:
        # A foreign call raised (corrupt object, dlclose under us):
        # nothing moved, so drop to the numba/python chain permanently.
        self._native = self._native_batch = None
        self._sync_backend()
        _count("native_call_failures")

    def run(self, src: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        dst = out if out is not None else np.empty(self.volume, dtype=src.dtype)
        if self._native_eligible(src, dst):
            try:
                self._native(
                    src.ctypes.data, dst.ctypes.data, 0, self.out_shape[0]
                )
                return dst
            except Exception:
                self._native_failed()
        out_nd = dst.reshape(self.out_shape)
        self._call(
            self._jit, self._fn, self._moved(src), out_nd, 0,
            self.out_shape[0],
        )
        return dst

    def run_batch(self, srcs, out: Optional[np.ndarray] = None) -> np.ndarray:
        srcs = self.batch_view(srcs)
        dst = out if out is not None else np.empty_like(srcs)
        if self._native_batch is not None and self._native_eligible(srcs, dst):
            try:
                self._native_batch(
                    srcs.ctypes.data, dst.ctypes.data, srcs.shape[0],
                    0, self.out_shape[0],
                )
                return dst
            except Exception:
                self._native_failed()
        out_nd = dst.reshape((srcs.shape[0],) + self.out_shape)
        self._call(
            self._jit_batch, self._batch_fn, self._moved_batch(srcs),
            out_nd, 0, self.out_shape[0],
        )
        return dst

    @property
    def nbytes(self) -> int:
        # No frozen index arrays; the sources are the only state.
        return len(self.source) + len(self.batch_source)

    # -- partitioning: row ranges of output axis 0 (the generated
    # kernels' lo/hi bounds) ---------------------------------------------
    def partition(self, parts: int) -> List[Tuple[int, ...]]:
        rows = self.out_shape[0]
        parts = max(1, min(parts, rows))
        bounds = np.linspace(0, rows, parts + 1, dtype=np.int64)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    def run_part(
        self, src: np.ndarray, out: np.ndarray, task: Tuple[int, ...]
    ) -> None:
        lo, hi = task
        if self._native_eligible(src, out):
            try:
                # Offsets are absolute in the emitted kernel, so every
                # partition task shares the same base pointers; ctypes
                # releases the GIL for the whole call, which is what
                # lets nest partition tasks scale on the thread pool.
                self._native(src.ctypes.data, out.ctypes.data, lo, hi)
                return
            except Exception:
                self._native_failed()
        out_nd = out.reshape(self.out_shape)
        self._call(self._jit, self._fn, self._moved(src), out_nd, lo, hi)


# ----------------------------------------------------------------------
# Measured refinement
# ----------------------------------------------------------------------

#: Timed runs per shortlisted configuration in the micro-probe (after
#: one untimed warm-up); best-of is kept, so transient stalls do not
#: crown a loser.
PROBE_REPS = 2

#: A shortlisted configuration must measure at least this much faster
#: than the analytic winner to replace it.  The hysteresis keeps the
#: "refined is never slower than analytic" property robust to timing
#: noise: close calls stay with the model's pick.
REFINE_SWITCH_MARGIN = 0.05

_PROBE_DTYPES = {
    1: np.uint8,
    2: np.uint16,
    4: np.float32,
    8: np.float64,
    16: np.complex128,
}


def refine_descriptor(desc: dict, reps: int = PROBE_REPS) -> dict:
    """Pick the shortlist winner by a timed micro-probe on the live host.

    The analytic model ranks configurations; HPTT's lesson is that the
    last factor-of-small between close candidates is decided by the
    machine, not the model.  Each ``"candidates"`` entry (see
    :func:`search_nest` with ``top_k > 1``) is generated, warmed once,
    and timed ``reps`` times on a real operand of the exact geometry;
    the measured argmin replaces the analytic pick only when it wins by
    :data:`REFINE_SWITCH_MARGIN`.  Returns a new descriptor annotated
    with ``refined``/``probe`` (the input is unchanged); descriptors
    without a shortlist, or unprofitable ones, pass through untouched.
    """
    cands = desc.get("candidates")
    if not desc.get("profitable") or not cands or len(cands) < 2:
        return desc
    started = time.perf_counter()
    eb = int(desc["elem_bytes"])
    dtype = _PROBE_DTYPES.get(eb, np.dtype((np.void, eb)))
    volume = math.prod(int(d) for d in desc["in_shape"])
    # The source must be *written* before timing: anonymous pages are
    # lazily backed by the shared zero page until first write, so an
    # untouched buffer reads as a working set of one page and the probe
    # would rank candidates on fiction.
    src = np.empty(volume, dtype=dtype)
    src.view(np.uint8).reshape(volume, eb)[:] = 1
    out = np.empty(volume, dtype=dtype)
    programs = [
        NestProgram({**desc, "tiles": c["tiles"], "order": c["order"]})
        for c in cands
    ]
    for program in programs:
        program.run(src, out=out)  # warm-up: page faults, JIT, caches
    # Round-robin best-of timing: host drift (another core waking up,
    # a GC pause) hits every candidate equally instead of whichever one
    # happened to be on the clock.
    measured = [math.inf] * len(programs)
    for _ in range(max(1, reps)):
        for i, program in enumerate(programs):
            t0 = time.perf_counter()
            program.run(src, out=out)
            measured[i] = min(measured[i], time.perf_counter() - t0)
    win = min(range(len(measured)), key=measured.__getitem__)
    if measured[win] >= measured[0] * (1.0 - REFINE_SWITCH_MARGIN):
        win = 0  # hysteresis: the analytic winner keeps close calls
    elapsed = time.perf_counter() - started
    _count("refinements")
    _count("probe_s", elapsed)
    if win != 0:
        _count("refine_switches")
    refined = dict(desc)
    refined["tiles"] = list(cands[win]["tiles"])
    refined["order"] = list(cands[win]["order"])
    refined["cost"] = cands[win]["cost"]
    refined["refined"] = True
    refined["probe"] = {
        "reps": int(max(1, reps)),
        "picked": win,
        "probe_ms": round(elapsed * 1e3, 3),
        "measured_ms": [round(t * 1e3, 4) for t in measured],
    }
    return refined


# ----------------------------------------------------------------------
# Artifact cache + compile entry point
# ----------------------------------------------------------------------


def artifact_key(
    in_shape: Sequence[int], axes: Sequence[int], elem_bytes: int
) -> str:
    """The :class:`~repro.runtime.store.PlanStore` artifact key of one
    fused geometry — derivable from the kernel alone, identically in
    the parent and in process-pool workers."""
    return "nest{}|{}|{}|{}".format(
        CODEGEN_VERSION,
        "x".join(str(int(d)) for d in in_shape),
        ",".join(str(int(a)) for a in axes),
        int(elem_bytes),
    )


def _valid_artifact(
    desc, in_shape: Sequence[int], axes: Sequence[int], elem_bytes: int
) -> bool:
    if not isinstance(desc, dict):
        return False
    if desc.get("codegen_version") != CODEGEN_VERSION:
        return False
    return (
        list(desc.get("in_shape", [])) == [int(d) for d in in_shape]
        and list(desc.get("axes", [])) == [int(a) for a in axes]
        and desc.get("elem_bytes") == int(elem_bytes)
        and "tiles" in desc
        and "order" in desc
        and "profitable" in desc
    )


def nest_descriptor(
    in_shape: Sequence[int],
    axes: Sequence[int],
    elem_bytes: int,
    artifacts=None,
    refine: int = 0,
) -> dict:
    """The searched (or artifact-cached) descriptor for one geometry.

    ``artifacts`` is any object with ``artifact(key)`` /
    ``put_artifact(key, desc)`` — in practice the runtime's
    :class:`~repro.runtime.store.PlanStore`.  A valid persisted
    descriptor skips the search entirely (counted as an
    ``artifact_hit``, crediting its recorded ``search_ms`` to
    ``search_s_saved``); a miss searches and persists the outcome.

    ``refine >= 2`` keeps the analytic top-``refine`` shortlist and
    lets :func:`refine_descriptor`'s timed micro-probe pick the winner
    before the descriptor persists.  Artifact hits are returned as-is
    whether or not they were refined — a warm restart performs zero
    searches *and* zero probes.
    """
    key = artifact_key(in_shape, axes, elem_bytes)
    if artifacts is not None:
        desc = artifacts.artifact(key)
        if _valid_artifact(desc, in_shape, axes, elem_bytes):
            _count("artifact_hits")
            _count("search_s_saved", float(desc.get("search_ms", 0.0)) / 1e3)
            _count(
                "search_s_saved",
                float(desc.get("probe", {}).get("probe_ms", 0.0)) / 1e3,
            )
            return desc
        _count("artifact_misses")
    top_k = max(1, int(refine))
    desc = search_nest(in_shape, axes, elem_bytes, top_k=top_k)
    if top_k > 1:
        desc = refine_descriptor(desc)
    if artifacts is not None:
        artifacts.put_artifact(key, desc)
    return desc


def maybe_nest_program(
    kernel, artifacts=None, refine: int = 0
) -> Optional[NestProgram]:
    """A generated nest program for the kernel, or ``None``.

    ``None`` means the search judged generation unprofitable (or the
    geometry is degenerate); the caller keeps the indexed/chunked
    route, bit-exactly.  This is the hook
    :func:`~repro.kernels.executor.compile_executor` calls when
    ``codegen=True``; ``refine`` is the micro-probe shortlist size
    (see :func:`nest_descriptor`; 0 keeps the pure-analytic pick).
    """
    in_shape = kernel.layout.as_numpy_shape()
    axes = kernel.perm.numpy_axes()
    if not in_shape or kernel.volume <= 0:
        _count("fallbacks")
        return None
    if kernel.volume * kernel.elem_bytes < NEST_MIN_BYTES:
        # Below the profitability floor the search's verdict is fixed;
        # skip it entirely so small-problem compiles stay O(1).
        _count("fallbacks")
        return None
    desc = nest_descriptor(
        in_shape, axes, kernel.elem_bytes, artifacts, refine=refine
    )
    if not desc.get("profitable"):
        _count("fallbacks")
        return None
    # The native (C) object cache lives next to the plan store when one
    # is attached, so warm restarts and procpool workers rehydrating by
    # content key reuse the compiled objects — zero compiles.
    return NestProgram(
        desc, native_dir=getattr(artifacts, "native_dir", None)
    )
