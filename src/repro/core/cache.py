"""Plan caching for the repeated-use scenario.

cuTT exposes plan handles the caller stores; TTC bakes plans into
generated code.  For a library-level ergonomic equivalent, this module
keeps a bounded LRU of :class:`~repro.core.plan.TransposePlan` keyed by
``(dims, perm, elem_bytes, device)`` so hot call sites pay the planning
cost once per process.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Optional, Sequence

from repro.core.plan import Predictor, TransposePlan, make_plan
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec

DEFAULT_CAPACITY = 256


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Thread-safe bounded LRU of transposition plans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._plans: "OrderedDict[tuple, TransposePlan]" = OrderedDict()
        self._lock = Lock()
        self.stats = CacheStats()

    @staticmethod
    def _key(
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int,
        spec: DeviceSpec,
    ) -> tuple:
        return (tuple(dims), tuple(perm), elem_bytes, spec.name)

    def get(
        self,
        dims: Sequence[int],
        perm: Sequence[int],
        elem_bytes: int = 8,
        spec: DeviceSpec = KEPLER_K40C,
        predictor: Optional[Predictor] = None,
    ) -> TransposePlan:
        """Return a cached plan, planning (and caching) on miss."""
        key = self._key(dims, perm, elem_bytes, spec)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.stats.hits += 1
                return plan
        # Plan outside the lock: planning is the expensive part.
        plan = make_plan(dims, perm, elem_bytes, spec, predictor)
        with self._lock:
            self.stats.misses += 1
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.stats.evictions += 1
        return plan

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.stats = CacheStats()


#: Process-wide default cache used by :func:`cached_plan`.
_global_cache = PlanCache()


def cached_plan(
    dims: Sequence[int],
    perm: Sequence[int],
    elem_bytes: int = 8,
    spec: DeviceSpec = KEPLER_K40C,
    predictor: Optional[Predictor] = None,
) -> TransposePlan:
    """Module-level convenience over the process-wide :class:`PlanCache`."""
    return _global_cache.get(dims, perm, elem_bytes, spec, predictor)


def global_cache() -> PlanCache:
    return _global_cache
