"""ThroughputCalibrator: explore/exploit schedule and persistence.

The calibrator replaces caller-guessed ``parts=``: it must round-robin
the candidate grid until each candidate has ``min_samples``
measurements, then lock onto the measured-throughput argmax, and its
table must survive a process restart (with corrupt or foreign state
discarded rather than trusted).
"""

import json

import pytest

from repro.runtime.autotune import (
    AUTOTUNE_VERSION,
    DEFAULT_MIN_SAMPLES,
    ThroughputCalibrator,
    parts_candidates,
)


def test_parts_candidates_grid():
    assert parts_candidates(1) == [1]
    assert parts_candidates(2) == [1, 2]
    assert parts_candidates(4) == [1, 2, 4]
    assert parts_candidates(6) == [1, 2, 4, 6]
    assert parts_candidates(8) == [1, 2, 4, 8]


def test_size_class_buckets():
    sc = ThroughputCalibrator.size_class
    assert sc(0) == 0 and sc(1) == 0
    assert sc(2) == 1
    assert sc(1024) == 10
    assert sc(1025) == 11


def test_explores_candidates_in_order_then_exploits():
    cal = ThroughputCalibrator(pool_size=4, min_samples=2)
    nbytes = 1 << 20
    choices = []
    for _ in range(6):
        p = cal.choose("view", nbytes)
        choices.append(p)
        # parts=2 is made to look twice as fast as the others.
        cal.record("view", nbytes, p, 0.5 if p == 2 else 1.0)
    assert choices == [1, 1, 2, 2, 4, 4]  # ascending, min_samples each
    assert cal.calibrated("view", nbytes)
    assert cal.choose("view", nbytes) == 2  # measured argmax wins


def test_cells_keyed_by_kind_and_size_class():
    cal = ThroughputCalibrator(pool_size=2, min_samples=1)
    small, large = 1 << 10, 1 << 24
    for p in (1, 2):
        cal.record("view", small, p, 1.0)
        # For large payloads the measured winner is the other candidate.
        cal.record("view", large, p, 1.0 if p == 2 else 4.0)
        cal.record("indexed", small, p, 1.0 if p == 1 else 4.0)
    assert cal.choose("view", large) == 2
    assert cal.choose("indexed", small) == 1
    # Same kind, same size class as an earlier record: independent cell
    # untouched by the other kinds/classes.
    assert not cal.calibrated("region", small)


def test_record_ignores_degenerate_samples():
    cal = ThroughputCalibrator(pool_size=2)
    cal.record("view", 1024, 1, 0.0)
    cal.record("view", 1024, 0, 1.0)
    assert cal.table()["cells"] == {}


def test_table_snapshot_shape():
    cal = ThroughputCalibrator(pool_size=2, min_samples=1)
    cal.record("view", 1 << 20, 1, 0.001)
    t = cal.table()
    assert t["pool_size"] == 2 and t["candidates"] == [1, 2]
    cell = t["cells"]["thread:view|2^20"]
    assert cell["parts"]["1"]["count"] == 1
    assert cell["parts"]["1"]["gbps"] > 0
    assert cell["best_parts"] == 1  # only sampled candidate so far


def test_persistence_roundtrip(tmp_path):
    path = tmp_path / "autotune.json"
    cal = ThroughputCalibrator(pool_size=4, path=path, min_samples=1)
    for p in (1, 2, 4):
        cal.record("view", 1 << 20, p, 0.5 if p == 4 else 1.0)
    cal.close()  # flushes dirty state
    assert path.exists()

    reborn = ThroughputCalibrator(pool_size=4, path=path, min_samples=1)
    assert reborn.calibrated("view", 1 << 20)
    assert reborn.choose("view", 1 << 20) == 4  # starts exploited


def test_persistence_rejects_foreign_pool_size(tmp_path):
    path = tmp_path / "autotune.json"
    cal = ThroughputCalibrator(pool_size=4, path=path, min_samples=1)
    cal.record("view", 1 << 20, 1, 1.0)
    cal.flush()
    other = ThroughputCalibrator(pool_size=8, path=path, min_samples=1)
    assert other.table()["cells"] == {}  # foreign table discarded


def test_persistence_tolerates_corruption(tmp_path):
    path = tmp_path / "autotune.json"
    path.write_text("{ not json")
    cal = ThroughputCalibrator(pool_size=2, path=path)
    assert cal.table()["cells"] == {}
    path.write_text(json.dumps({"autotune_version": 999, "pool_size": 2}))
    cal = ThroughputCalibrator(pool_size=2, path=path)
    assert cal.table()["cells"] == {}
    # v1 tables (no backend prefix on the keys) would alias thread and
    # process measurements: discarded wholesale.
    path.write_text(
        json.dumps(
            {
                "autotune_version": 1,
                "pool_size": 2,
                "cells": {
                    "view|2^20": {
                        "1": {"count": 1, "total_s": 1.0, "total_bytes": 1e6}
                    }
                },
            }
        )
    )
    cal = ThroughputCalibrator(pool_size=2, path=path)
    assert cal.table()["cells"] == {}
    path.write_text(
        json.dumps(
            {
                "autotune_version": AUTOTUNE_VERSION,
                "pool_size": 2,
                "cells": {
                    "thread:view|2^20": {
                        "1": {"count": 1, "total_s": 1.0, "total_bytes": 1e6},
                        "bogus": {"count": "x"},
                    }
                },
            }
        )
    )
    cal = ThroughputCalibrator(pool_size=2, path=path, min_samples=1)
    # The valid entry survives, the corrupt one is dropped.
    assert cal.table()["cells"]["thread:view|2^20"]["parts"] == {
        "1": {"count": 1, "mean_ms": 1000.0, "gbps": 0.001}
    }


def test_validates_pool_size():
    with pytest.raises(ValueError):
        ThroughputCalibrator(pool_size=0)


def test_default_min_samples_positive():
    assert DEFAULT_MIN_SAMPLES >= 1
    cal = ThroughputCalibrator(pool_size=2, min_samples=0)
    assert cal.min_samples == 1  # clamped


def test_reset_clears_table(tmp_path):
    path = tmp_path / "autotune.json"
    cal = ThroughputCalibrator(pool_size=2, path=path, min_samples=1)
    cal.record("view", 1024, 1, 1.0)
    cal.reset()
    assert cal.table()["cells"] == {}
    cal.close()
    reborn = ThroughputCalibrator(pool_size=2, path=path)
    assert reborn.table()["cells"] == {}


class TestBackendAxis:
    """The v2 cells carry a backend prefix; choose_backend applies the
    same explore-then-exploit rule across the scheduler's backends."""

    def test_backends_are_independent_cells(self):
        cal = ThroughputCalibrator(
            pool_size=2, min_samples=1, backends=("thread", "process")
        )
        nbytes = 1 << 22
        for p in (1, 2):
            cal.record("indexed", nbytes, p, 1.0, backend="thread")
        assert cal.calibrated("indexed", nbytes, backend="thread")
        assert not cal.calibrated("indexed", nbytes, backend="process")

    def test_single_backend_short_circuits(self):
        cal = ThroughputCalibrator(pool_size=2, min_samples=1)
        assert cal.choose_backend("indexed", 1 << 22) == "thread"

    def test_explore_then_exploit_across_backends(self):
        cal = ThroughputCalibrator(
            pool_size=2, min_samples=1, backends=("thread", "process")
        )
        nbytes = 1 << 22
        # Undersampled cells force exploration, thread first.
        assert cal.choose_backend("indexed", nbytes) == "thread"
        for p in (1, 2):
            cal.record("indexed", nbytes, p, 1.0, backend="thread")
        assert cal.choose_backend("indexed", nbytes) == "process"
        # Make the process side measure 4x the thread throughput.
        for p in (1, 2):
            cal.record("indexed", nbytes, p, 0.25, backend="process")
        assert cal.choose_backend("indexed", nbytes) == "process"

    def test_faster_thread_side_wins(self):
        cal = ThroughputCalibrator(
            pool_size=1, min_samples=1, backends=("thread", "process")
        )
        nbytes = 1 << 22
        cal.record("chunked", nbytes, 1, 0.5, backend="thread")
        cal.record("chunked", nbytes, 1, 1.0, backend="process")
        assert cal.choose_backend("chunked", nbytes) == "thread"

    def test_requires_a_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ThroughputCalibrator(pool_size=2, backends=())


class TestV3Migration:
    def _v2_payload(self):
        """A PR-7-era table: no per-run variance fields in the cells."""
        return {
            "autotune_version": 2,
            "pool_size": 2,
            "cells": {
                "thread:indexed|2^22": {
                    "1": {
                        "count": 3,
                        "total_s": 3.0,
                        "total_bytes": 3 * (1 << 22),
                    },
                    "2": {
                        "count": 3,
                        "total_s": 1.0,
                        "total_bytes": 3 * (1 << 22),
                    },
                },
                "codegen:indexed|2^22": {
                    "1": {
                        "count": 2,
                        "total_s": 0.5,
                        "total_bytes": 2 * (1 << 22),
                    },
                },
            },
        }

    def test_v2_loads_without_losing_measurements(self, tmp_path):
        path = tmp_path / "autotune.json"
        path.write_text(json.dumps(self._v2_payload()))
        cal = ThroughputCalibrator(
            pool_size=2,
            path=path,
            min_samples=1,
            backends=("thread", "codegen"),
        )
        cells = cal.table()["cells"]
        # Every v2 measurement survives with its aggregates intact.
        assert cells["thread:indexed|2^22"]["parts"]["2"]["count"] == 3
        assert cells["codegen:indexed|2^22"]["parts"]["1"]["count"] == 2
        # Exploitation picks straight from the migrated throughputs.
        assert cal.choose("indexed", 1 << 22) == 2

    def test_v2_migration_rewrites_as_v3(self, tmp_path):
        path = tmp_path / "autotune.json"
        path.write_text(json.dumps(self._v2_payload()))
        cal = ThroughputCalibrator(pool_size=2, path=path, min_samples=1)
        cal.close()  # migrated tables are dirty and must rewrite
        upgraded = json.loads(path.read_text())
        assert upgraded["autotune_version"] == AUTOTUNE_VERSION
        stats = upgraded["cells"]["thread:indexed|2^22"]["1"]
        assert stats["m2_bps"] == 0.0  # no per-run history: zero variance
        assert stats["mean_bps"] == pytest.approx(1 << 22)

    def test_migrated_cells_keep_accumulating_variance(self, tmp_path):
        path = tmp_path / "autotune.json"
        path.write_text(json.dumps(self._v2_payload()))
        cal = ThroughputCalibrator(pool_size=2, path=path, min_samples=1)
        cal.record("indexed", 1 << 22, 2, 0.25)
        stats = cal._cells["thread:indexed|2^22"]["2"]
        assert stats["count"] == 4
        assert stats["m2_bps"] > 0  # the new, faster run spread the cell

    def test_truncated_file_fresh_table_and_service_start(self, tmp_path):
        """A half-written autotune.json must not take down service
        construction; the calibrator restarts empty and recalibrates."""
        from repro.runtime.service import TransposeService

        state = tmp_path / "state"
        state.mkdir()
        (state / "autotune.json").write_text(
            json.dumps({"autotune_version": AUTOTUNE_VERSION})[:25]
        )
        with TransposeService(store_path=state / "plans.json") as svc:
            assert svc.autotuner.table()["cells"] == {}
            report = svc.execute(
                (8, 8, 8), (2, 1, 0), 8,
                payload=__import__("numpy").arange(512, dtype=float),
            )
            assert report.output is not None

    def test_ucb_beta_in_table_snapshot(self):
        cal = ThroughputCalibrator(pool_size=2, ucb_beta=1.5)
        assert cal.table()["ucb_beta"] == 1.5

    def test_negative_ucb_beta_rejected(self):
        with pytest.raises(ValueError):
            ThroughputCalibrator(pool_size=2, ucb_beta=-0.1)

    def test_ucb_explores_high_variance_cells(self):
        """With positive beta, a noisy-but-equal-mean candidate ranks
        above a steady one; with beta 0 the tie stands."""
        noisy = ThroughputCalibrator(pool_size=2, min_samples=2, ucb_beta=2.0)
        nbytes = 1 << 20
        # parts=1: two identical runs.  parts=2: same mean, high spread.
        for s in (1.0, 1.0):
            noisy.record("view", nbytes, 1, s)
        for s in (0.5, 1.5):
            noisy.record("view", nbytes, 2, s)
        assert noisy.choose("view", nbytes) == 2
