"""Common interface for the compared transposition libraries.

Every library (TTLG and the baselines) plans a problem into a
:class:`LibraryPlan` carrying the chosen kernel, the simulated one-time
planning cost, and enough bookkeeping to reproduce the paper's two usage
scenarios:

- **repeated use** (Figs. 6/8/10/12/14): kernel execution time only;
- **single use** (Figs. 7/9/11): planning + one execution.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.fusion import FusionResult, fuse_indices
from repro.core.layout import TensorLayout
from repro.core.permutation import Permutation
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import KEPLER_K40C, DeviceSpec
from repro.kernels.base import TransposeKernel


@dataclass(frozen=True)
class LibraryPlan:
    """One library's plan for one transposition problem."""

    library: str
    kernel: TransposeKernel
    plan_time: float
    num_candidates: int
    #: Offline preparation time excluded from online plan cost (TTC's
    #: code-generation seconds); reported separately like the paper does.
    offline_time: float = 0.0

    def kernel_time(self, cost_model: Optional[CostModel] = None) -> float:
        return self.kernel.simulated_time(cost_model)

    def time_for(
        self,
        repeats: int = 1,
        include_plan: bool = False,
        cost_model: Optional[CostModel] = None,
    ) -> float:
        t = self.kernel_time(cost_model) * repeats
        return t + (self.plan_time if include_plan else 0.0)

    def bandwidth_gbps(
        self,
        repeats: int = 1,
        include_plan: bool = False,
        cost_model: Optional[CostModel] = None,
    ) -> float:
        cm = cost_model if cost_model is not None else CostModel(self.kernel.spec)
        t = self.time_for(repeats, include_plan, cm)
        return cm.bandwidth_gbps(
            self.kernel.volume * repeats, self.kernel.elem_bytes, t
        )

    def execute(self, src_flat: np.ndarray) -> np.ndarray:
        return self.kernel.execute(src_flat)


class TransposeLibrary(abc.ABC):
    """A transposition library: problem in, :class:`LibraryPlan` out."""

    #: Display name used in benchmark output (matches the paper's legend).
    name: str = "?"

    def __init__(self, spec: DeviceSpec = KEPLER_K40C):
        self.spec = spec
        self.cost_model = CostModel(spec)

    def fuse(self, dims: Sequence[int], perm: Sequence[int]) -> FusionResult:
        return fuse_indices(TensorLayout(dims), Permutation(perm))

    @abc.abstractmethod
    def plan(
        self, dims: Sequence[int], perm: Sequence[int], elem_bytes: int = 8
    ) -> LibraryPlan:
        """Produce this library's plan for the problem."""
