"""Compiled executors: per-plan programs that make ``execute()`` fast.

The kernels' functional NumPy execution historically rebuilt the full
``(blocks x b x a)`` int64 gather/scatter index tensors on **every**
call, so repeated-use throughput — the paper's Fig. 12 scenario, and
what :mod:`repro.runtime` serves — was dominated by index arithmetic
rather than data movement.  cuTT and HPTT both stress that tensor
transposition is bandwidth-bound and per-call index computation must be
hoisted; this module is that hoist for the NumPy layer.

Each kernel lowers once into an :class:`ExecutorProgram`:

- :class:`ViewProgram` — the movement is a pure
  ``reshape``/``transpose``/``ascontiguousarray`` view chain with **no
  index arrays at all**.  Always valid for the FVI-Match (and naive)
  kernels, whose per-block movement is run-contiguous by construction;
  chosen for the orthogonal kernels when the geometry has no
  partial-tile variants (every blocked extent divides evenly), so the
  per-block slices tile the tensor exactly.
- :class:`RegionProgram` — partial-tile geometry splits each uneven
  blocked extent into its full-block interior and its remainder tail,
  so the ``2**u`` slice variants cover ``2**u`` **rectangular boxes**
  of the tensor.  Each box transposes as one strided view assignment;
  the program is that fixed region list.  Still zero index arrays, so
  it is the default lowering when a view chain alone is not enough.
- :class:`IndexedProgram` — the per-variant relative index maps (with,
  for Orthogonal-Arbitrary, the ``sm_off`` buffer permutation folded
  into the output scatter) are composed with the block bases into one
  frozen volume-sized permutation map; a warm call is a single fused
  gather or scatter (orientation picked by map size; see
  :data:`SCATTER_MIN_BYTES`) with zero per-call index construction.
- :class:`ChunkedProgram` — for huge tensors the volume-sized
  ``src_of_dst`` map would exceed the index-memory budget; instead the
  program freezes the (small) per-variant relative maps plus grouped
  block bases and materializes absolute indices chunk-of-blocks at a
  time, bounding transient index memory at the cost of some per-call
  broadcast adds.

All of them are bit-exact against :func:`repro.kernels.common
.reference_transpose` — and against each other — by construction; the
parity grid in ``tests/test_executor.py`` pins this.

Programs are cached process-wide in a memory-bounded LRU
(:data:`EXEC_CACHE_MAX_BYTES`); :func:`clear_exec_caches` restores
cold-start conditions for benchmarks.  Programs also expose
:meth:`~ExecutorProgram.partition` / :meth:`~ExecutorProgram.run_part`
so the runtime's :class:`~repro.runtime.scheduler.StreamScheduler` can
execute disjoint ranges of one program across its worker pool.

Every program kind is also batch-aware: :meth:`~ExecutorProgram
.run_batch` executes ``B`` same-geometry operands, stacked along a
leading batch axis, as **one fused move** instead of ``B`` interpreted
calls — the contraction-chain regime (TTGT in CCSD(T)) where many
small tensors share one permutation and per-call dispatch would
otherwise dominate.  ``run_batch`` over ``B`` operands is bit-exact
against ``B`` independent :meth:`~ExecutorProgram.run` calls.
"""

from __future__ import annotations

import abc
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lru import BoundedLRU
from repro.errors import SchemaError
from repro.kernels.common import block_gather_indices, ceil_div

#: Byte budget of the process-wide compiled-program cache.  ``src_of_dst``
#: maps cost 8 bytes per tensor element, so the default admits ~8M-element
#: programs 32 at a time — far beyond the benchmark working sets while
#: still bounding a long-lived server.
EXEC_CACHE_MAX_BYTES = 256 * 1024 * 1024

#: Entry-count bound of the program cache.
EXEC_CACHE_MAX_PROGRAMS = 512

#: Default transient/frozen index-map budget per program.  A kernel whose
#: fused ``src_of_dst`` map would exceed this compiles to a
#: :class:`ChunkedProgram` instead of an :class:`IndexedProgram`.
DEFAULT_MAX_INDEX_BYTES = 64 * 1024 * 1024


class ExecutorProgram(abc.ABC):
    """A frozen, reusable data-movement program for one kernel.

    Programs hold no reference to the kernel that compiled them — only
    frozen arrays and shapes — so caching them outlives kernel objects.
    """

    #: ``"view"`` | ``"region"`` | ``"indexed"`` | ``"chunked"`` —
    #: which lowering won.
    kind: str

    def __init__(self, volume: int):
        self.volume = volume

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, src: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Move ``src`` (flat, ``volume`` elements) into the output
        linearization.  With ``out`` (flat, same size and dtype) the
        result is written in place and no allocation happens."""

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Bytes of frozen index state (the cache's eviction weight)."""

    # ------------------------------------------------------------------
    def batch_view(self, srcs) -> np.ndarray:
        """Validate a batch of same-geometry operands as one ``(B,
        volume)`` C-contiguous array.

        ``srcs`` is either an already-stacked 2-D array (rows are flat
        operands) or a sequence of flat arrays, which is stacked here.
        All operands must have ``volume`` elements and share one dtype.
        """
        if isinstance(srcs, np.ndarray) and srcs.ndim == 2:
            if srcs.shape[1] != self.volume:
                raise SchemaError(
                    f"batch rows have {srcs.shape[1]} elements, "
                    f"program volume is {self.volume}"
                )
            return np.ascontiguousarray(srcs)
        arrs = [np.ascontiguousarray(s).reshape(-1) for s in srcs]
        for a in arrs:
            if a.size != self.volume:
                raise SchemaError(
                    f"batch operand has {a.size} elements, "
                    f"program volume is {self.volume}"
                )
            if a.dtype != arrs[0].dtype:
                raise SchemaError(
                    "batch operands must share one dtype, got "
                    f"{a.dtype} vs {arrs[0].dtype}"
                )
        if not arrs:
            return np.empty((0, self.volume))
        return np.stack(arrs)

    def run_batch(self, srcs, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Move ``B`` same-geometry operands in one batched execution.

        ``srcs`` is a ``(B, volume)`` stacked array or a sequence of
        flat operands (see :meth:`batch_view`); the result is the
        ``(B, volume)`` stack of per-operand outputs, written into
        ``out`` when given.  Subclasses fuse the whole batch into a
        single move over a stacked leading axis; this fallback runs the
        rows one by one and is only used by program kinds without a
        fused form (none in-tree).
        """
        srcs = self.batch_view(srcs)
        dst = out if out is not None else np.empty_like(srcs)
        for i in range(srcs.shape[0]):
            self.run(srcs[i], out=dst[i])
        return dst

    # ------------------------------------------------------------------
    def partition(self, parts: int) -> List[Tuple[int, ...]]:
        """Split the program into up to ``parts`` disjoint tasks.

        Each task is an opaque tuple accepted by :meth:`run_part`; tasks
        jointly cover the output exactly once, so running them all (in
        any order, concurrently on a shared ``out``) equals :meth:`run`.
        """
        return [(0, self.volume)]

    def run_part(
        self, src: np.ndarray, out: np.ndarray, task: Tuple[int, ...]
    ) -> None:
        """Execute one :meth:`partition` task into ``out``."""
        if task != (0, self.volume):
            raise ValueError(f"unknown task {task!r}")
        self.run(src, out=out)


class ViewProgram(ExecutorProgram):
    """Pure ``reshape``/``transpose``/``ascontiguousarray`` chain.

    ``in_shape`` is the NumPy shape of the input (fastest dim last) and
    ``axes`` the NumPy transpose axes; the output linearization is the
    contiguous copy of the transposed view.  Zero index arrays.
    """

    kind = "view"

    def __init__(self, in_shape: Tuple[int, ...], axes: Tuple[int, ...]):
        super().__init__(int(np.prod(in_shape, dtype=np.int64)))
        self.in_shape = in_shape
        self.axes = axes
        self.out_shape = tuple(in_shape[a] for a in axes)

    def _moved(self, src: np.ndarray) -> np.ndarray:
        return np.transpose(src.reshape(self.in_shape), self.axes)

    def _moved_batch(self, srcs: np.ndarray) -> np.ndarray:
        """The transposed view of a ``(B, volume)`` stack: the batch
        axis leads and every movement axis shifts up by one."""
        axes = (0,) + tuple(a + 1 for a in self.axes)
        return np.transpose(srcs.reshape((srcs.shape[0],) + self.in_shape), axes)

    def run(self, src: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        moved = self._moved(src)
        if out is None:
            return np.ascontiguousarray(moved).reshape(-1)
        out.reshape(self.out_shape)[...] = moved
        return out

    def run_batch(self, srcs, out: Optional[np.ndarray] = None) -> np.ndarray:
        srcs = self.batch_view(srcs)
        moved = self._moved_batch(srcs)
        if out is None:
            return np.ascontiguousarray(moved).reshape(srcs.shape)
        out.reshape((srcs.shape[0],) + self.out_shape)[...] = moved
        return out

    @property
    def nbytes(self) -> int:
        return 0

    # -- partitioning: ranges of a flattened block of leading output
    # axes.  Splitting only out_shape[0] collapses to 1-2 tasks when the
    # leading extent is tiny, idling the rest of the pool; instead the
    # smallest prefix of axes whose joint extent reaches ``parts`` is
    # flattened and ranges of those rows are the tasks. --------------------
    def _leading_split(self, parts: int) -> Tuple[int, int]:
        """``(k, rows)``: flatten the first ``k`` output axes into
        ``rows`` splittable rows (smallest prefix reaching ``parts``)."""
        rows, k = 1, 0
        for extent in self.out_shape:
            if rows >= parts:
                break
            rows *= extent
            k += 1
        k = max(k, 1)
        rows = int(np.prod(self.out_shape[:k], dtype=np.int64))
        return k, rows

    def partition(self, parts: int) -> List[Tuple[int, ...]]:
        k, rows = self._leading_split(max(1, parts))
        parts = max(1, min(parts, rows))
        bounds = np.linspace(0, rows, parts + 1, dtype=np.int64)
        return [
            (k, int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    def run_part(
        self, src: np.ndarray, out: np.ndarray, task: Tuple[int, ...]
    ) -> None:
        k, lo, hi = task
        out_nd = out.reshape(self.out_shape)
        moved = self._moved(src)
        if k == 1:
            out_nd[lo:hi] = moved[lo:hi]
            return
        lead = self.out_shape[:k]
        for flat in range(lo, hi):
            idx = np.unravel_index(flat, lead)
            out_nd[idx] = moved[idx]


class RegionProgram(ViewProgram):
    """A fixed list of rectangular strided region copies.

    ``regions`` are ``((lo, hi), ...)`` bounds per **output** NumPy
    axis; the boxes tile the output exactly (one box per populated
    slice variant: each uneven blocked extent contributes an interior
    and a tail range).  A warm run assigns each box of the transposed
    input view into the same box of the output — strided NumPy copies
    with no index arrays, like :class:`ViewProgram` but valid for
    partial-tile geometry too.
    """

    kind = "region"

    def __init__(
        self,
        in_shape: Tuple[int, ...],
        axes: Tuple[int, ...],
        regions: Sequence[Tuple[Tuple[int, int], ...]],
    ):
        super().__init__(in_shape, axes)
        self.regions: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple((int(lo), int(hi)) for lo, hi in region)
            for region in regions
        )
        for region in self.regions:
            if len(region) != len(self.out_shape):
                raise ValueError(
                    "region rank does not match the output rank"
                )

    def run(self, src: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        dst = out if out is not None else np.empty(self.volume, dtype=src.dtype)
        out_nd = dst.reshape(self.out_shape)
        moved = self._moved(src)
        for region in self.regions:
            sel = tuple(slice(lo, hi) for lo, hi in region)
            out_nd[sel] = moved[sel]
        return dst

    def run_batch(self, srcs, out: Optional[np.ndarray] = None) -> np.ndarray:
        srcs = self.batch_view(srcs)
        dst = out if out is not None else np.empty_like(srcs)
        out_nd = dst.reshape((srcs.shape[0],) + self.out_shape)
        moved = self._moved_batch(srcs)
        for region in self.regions:
            sel = (slice(None),) + tuple(slice(lo, hi) for lo, hi in region)
            out_nd[sel] = moved[sel]
        return dst

    # -- partitioning: ranges of the slowest output axis, each task
    # running every region clipped to its row range (regions are bounds
    # per output axis, so the split axis must stay the first one) ---------
    def partition(self, parts: int) -> List[Tuple[int, ...]]:
        rows = self.out_shape[0]
        parts = max(1, min(parts, rows))
        bounds = np.linspace(0, rows, parts + 1, dtype=np.int64)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    def run_part(
        self, src: np.ndarray, out: np.ndarray, task: Tuple[int, ...]
    ) -> None:
        lo, hi = task
        out_nd = out.reshape(self.out_shape)
        moved = self._moved(src)
        for region in self.regions:
            (rlo, rhi) = region[0]
            top, bot = max(rlo, lo), min(rhi, hi)
            if top >= bot:
                continue
            sel = (slice(top, bot),) + tuple(
                slice(a, b) for a, b in region[1:]
            )
            out_nd[sel] = moved[sel]


#: Maps at least this large run the **scatter** orientation (sequential
#: input reads, scattered output writes); below it, **gather**
#: (scattered reads, sequential writes).  The map and one data side
#: stream sequentially either way; once the working set falls out of
#: cache, scattered reads stall the pipeline harder than scattered
#: writes (which buffer), so big maps scatter and cache-resident maps
#: keep the cheaper gather.
SCATTER_MIN_BYTES = 1 << 20


class IndexedProgram(ExecutorProgram):
    """One frozen permutation map; a warm run is a single fused move.

    The per-variant gather/scatter offsets, block bases, and (for OA)
    the shared-memory ``sm_off`` permutation are all folded at compile
    time into one volume-sized permutation, stored in one of two
    orientations (chosen by :data:`SCATTER_MIN_BYTES`):

    - ``gather``: ``index_map[j]`` is the source of output position
      ``j`` — ``dst[j] = src[index_map[j]]``;
    - ``scatter``: ``index_map[i]`` is the destination of input
      position ``i`` — ``dst[index_map[i]] = src[i]``.
    """

    kind = "indexed"

    def __init__(self, src_of_dst: np.ndarray, orientation: Optional[str] = None):
        super().__init__(len(src_of_dst))
        if orientation is None:
            orientation = (
                "scatter"
                if src_of_dst.nbytes >= SCATTER_MIN_BYTES
                else "gather"
            )
        if orientation not in ("gather", "scatter"):
            raise ValueError(f"unknown orientation {orientation!r}")
        self.orientation = orientation
        if orientation == "scatter":
            inv = np.empty_like(src_of_dst)
            inv[src_of_dst] = np.arange(len(src_of_dst), dtype=np.int64)
            self.index_map = inv
        else:
            self.index_map = src_of_dst
        self.index_map.flags.writeable = False

    def run(self, src: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        if self.orientation == "gather":
            if out is None:
                return src[self.index_map]
            np.take(src, self.index_map, out=out)
            return out
        dst = out if out is not None else np.empty(self.volume, dtype=src.dtype)
        np.put(dst, self.index_map, src)
        return dst

    def run_batch(self, srcs, out: Optional[np.ndarray] = None) -> np.ndarray:
        # Row-at-a-time application of the shared frozen map: NumPy's
        # axis-0 take/put on a contiguous row beats one axis-1 fancy
        # operation over the whole stack (measured), and the map lookup
        # setup amortizes across rows either way.
        srcs = self.batch_view(srcs)
        dst = out if out is not None else np.empty_like(srcs)
        if self.orientation == "gather":
            for b in range(srcs.shape[0]):
                np.take(srcs[b], self.index_map, out=dst[b])
        else:
            for b in range(srcs.shape[0]):
                dst[b][self.index_map] = srcs[b]
        return dst

    @property
    def nbytes(self) -> int:
        return self.index_map.nbytes

    # -- partitioning: contiguous element ranges (of the output in
    # gather orientation, of the input in scatter orientation — either
    # way the tasks cover the output exactly once) ----------------------
    def partition(self, parts: int) -> List[Tuple[int, ...]]:
        parts = max(1, min(parts, self.volume))
        bounds = np.linspace(0, self.volume, parts + 1, dtype=np.int64)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    def run_part(
        self, src: np.ndarray, out: np.ndarray, task: Tuple[int, ...]
    ) -> None:
        lo, hi = task
        if self.orientation == "gather":
            np.take(src, self.index_map[lo:hi], out=out[lo:hi])
        else:
            out[self.index_map[lo:hi]] = src[lo:hi]


class ChunkedProgram(ExecutorProgram):
    """Per-variant relative maps + grouped block bases, applied in
    bounded chunks of blocks.

    The frozen state is tiny (one ``slice``-sized relative map pair per
    variant plus the block bases); absolute indices are materialized
    ``chunk_blocks`` thread blocks at a time, so transient index memory
    never exceeds roughly ``2 * chunk_blocks * slice * 8`` bytes however
    large the tensor is.
    """

    kind = "chunked"

    def __init__(
        self,
        volume: int,
        variants: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
        max_index_bytes: int = DEFAULT_MAX_INDEX_BYTES,
    ):
        super().__init__(volume)
        #: per variant: (in_bases, out_bases, src_rel, dst_rel)
        self.variants = list(variants)
        for ib, ob, src_rel, dst_rel in self.variants:
            for arr in (ib, ob, src_rel, dst_rel):
                arr.flags.writeable = False
        self.max_index_bytes = max_index_bytes

    def _chunk_blocks(self, slice_vol: int) -> int:
        per_block = 2 * max(slice_vol, 1) * 8  # src + dst int64 maps
        return max(1, self.max_index_bytes // per_block)

    def run(self, src: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        dst = out if out is not None else np.empty(self.volume, dtype=src.dtype)
        for vid in range(len(self.variants)):
            for task in self._variant_tasks(vid):
                self.run_part(src, dst, task)
        return dst

    def run_batch(self, srcs, out: Optional[np.ndarray] = None) -> np.ndarray:
        # Absolute indices are materialized once per chunk and applied
        # row by row, amortizing the per-call broadcast adds B-fold
        # (the chunked kind's only per-call index work).  Row-wise
        # axis-0 moves beat one axis-1 fancy operation (measured).
        srcs = self.batch_view(srcs)
        dst = out if out is not None else np.empty_like(srcs)
        rows = srcs.shape[0]
        for vid in range(len(self.variants)):
            for _, lo, hi in self._variant_tasks(vid):
                ib, ob, src_rel, dst_rel = self.variants[vid]
                gather = block_gather_indices(ib[lo:hi], src_rel).reshape(-1)
                scatter = block_gather_indices(ob[lo:hi], dst_rel).reshape(-1)
                for b in range(rows):
                    dst[b][scatter] = srcs[b][gather]
        return dst

    @property
    def nbytes(self) -> int:
        return sum(
            ib.nbytes + ob.nbytes + sr.nbytes + dr.nbytes
            for ib, ob, sr, dr in self.variants
        )

    # -- partitioning: per-variant block ranges ---------------------------
    def _variant_tasks(
        self, vid: int, parts: int = 1
    ) -> List[Tuple[int, int, int]]:
        ib, _, src_rel, _ = self.variants[vid]
        n = len(ib)
        if n == 0:
            return []
        chunk = self._chunk_blocks(len(src_rel))
        step = min(chunk, max(1, ceil_div(n, parts)))
        return [(vid, lo, min(lo + step, n)) for lo in range(0, n, step)]

    def partition(self, parts: int) -> List[Tuple[int, ...]]:
        tasks: List[Tuple[int, ...]] = []
        for vid in range(len(self.variants)):
            tasks.extend(self._variant_tasks(vid, parts))
        return tasks

    def run_part(
        self, src: np.ndarray, out: np.ndarray, task: Tuple[int, ...]
    ) -> None:
        vid, lo, hi = task
        ib, ob, src_rel, dst_rel = self.variants[vid]
        gather = block_gather_indices(ib[lo:hi], src_rel)
        scatter = block_gather_indices(ob[lo:hi], dst_rel)
        out[scatter] = src[gather]


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


def _variant_tables(kernel):
    """``(in_bases, out_bases, src_rel, dst_rel)`` per populated variant.

    Built from the kernel's :meth:`variant_rel_maps` (the Alg. 4 offset
    arrays composed into flat relative maps) and the coverage's block
    enumeration — the same machinery the per-call path uses, computed
    once here.
    """
    in_base, out_base, variant = kernel.coverage.block_bases()
    tables = []
    for vid, sizes in enumerate(kernel.coverage.variants_order()):
        sel = np.nonzero(variant == vid)[0]
        if sel.size == 0:
            continue
        src_rel, dst_rel = kernel.variant_rel_maps(sizes)
        tables.append(
            (
                np.ascontiguousarray(in_base[sel]),
                np.ascontiguousarray(out_base[sel]),
                np.ascontiguousarray(src_rel.reshape(-1)),
                np.ascontiguousarray(dst_rel.reshape(-1)),
            )
        )
    return tables


def _fused_src_of_dst(volume: int, tables) -> np.ndarray:
    """Fold every variant's block maps into one permutation map."""
    src_of_dst = np.empty(volume, dtype=np.int64)
    for ib, ob, src_rel, dst_rel in tables:
        scatter = block_gather_indices(ob, dst_rel)
        gather = block_gather_indices(ib, src_rel)
        src_of_dst[scatter.reshape(-1)] = gather.reshape(-1)
    return src_of_dst


def compile_executor(
    kernel,
    *,
    lowering: bool = True,
    max_index_bytes: int = DEFAULT_MAX_INDEX_BYTES,
    codegen: bool = False,
    artifacts=None,
    refine: int = 0,
) -> ExecutorProgram:
    """Lower one kernel to its best executor program.

    Selection, in order:

    1. **View chain** — when ``lowering`` is allowed and the kernel
       reports :meth:`~repro.kernels.base.TransposeKernel
       .supports_view_lowering` (FVI-Match and naive kernels always;
       orthogonal kernels when no partial-tile variants exist).
    2. **Region list** — when ``lowering`` is allowed and the kernel
       exposes its partial-tile box decomposition via
       :meth:`~repro.kernels.base.TransposeKernel.lowering_regions`
       (the orthogonal kernels always do): one strided copy per slice
       variant, still zero index arrays.
    3. **Generated nest** — only when ``codegen=True``: the
       :mod:`repro.kernels.codegen` search may replace the index-map
       route with a specialized cache-blocked loop nest
       (:class:`~repro.kernels.codegen.NestProgram`); when the model
       says blocking is not profitable it declines and selection falls
       through, bit-exactly.  ``artifacts`` (a plan store) lets the
       search reuse persisted descriptors — and, when the store exposes
       a ``native_dir``, lets the nest attach its compiled C backend
       from the store's on-disk object cache (``repro.kernels.native``;
       fallback chain ``c`` → ``numba`` → ``python``, always
       bit-exact).  ``refine >= 2`` lets a timed micro-probe pick among
       the analytic top-``refine`` shortlist
       (:func:`~repro.kernels.codegen.refine_descriptor`).
       Codegen never alters routes 1-2: ``lowering=False,
       codegen=False`` stays the materialized index-map oracle the
       tests rely on.
    4. **Fused index map** — when the kernel provides per-variant
       relative maps and the volume-sized ``src_of_dst`` fits the
       index-memory budget.  ``lowering=False`` forces this route (or
       5.), which the tests use as the materialized oracle against the
       view/region chains.
    5. **Chunked** — same relative maps, bounded materialization.

    Kernels with none of these cannot be compiled (none exist in-tree;
    every schema provides at least one lowering).
    """
    can_view = kernel.supports_view_lowering()
    has_maps = getattr(kernel, "variant_rel_maps", None) is not None
    if can_view and (lowering or not has_maps):
        return ViewProgram(
            kernel.layout.as_numpy_shape(), kernel.perm.numpy_axes()
        )
    if lowering or not has_maps:
        regions = kernel.lowering_regions()
        if regions is not None:
            return RegionProgram(
                kernel.layout.as_numpy_shape(),
                kernel.perm.numpy_axes(),
                regions,
            )
    if not has_maps:
        raise TypeError(
            f"{type(kernel).__name__} provides neither a view lowering "
            "nor per-variant index maps"
        )
    if codegen:
        from repro.kernels.codegen import maybe_nest_program

        nest = maybe_nest_program(kernel, artifacts, refine=refine)
        if nest is not None:
            return nest
    tables = _variant_tables(kernel)
    if kernel.volume * 8 <= max_index_bytes:
        return IndexedProgram(_fused_src_of_dst(kernel.volume, tables))
    return ChunkedProgram(kernel.volume, tables, max_index_bytes)


# ----------------------------------------------------------------------
# Process-wide program cache
# ----------------------------------------------------------------------

def new_program_cache(
    maxsize: int = EXEC_CACHE_MAX_PROGRAMS,
    max_bytes: int = EXEC_CACHE_MAX_BYTES,
) -> BoundedLRU:
    """A fresh, private compiled-program cache.

    Sharded deployments give each service replica its own cache (sized
    to its key shard) so routing locality shows up as per-replica hit
    rate — see ``docs/serving.md``.  The default process-wide cache is
    one of these.
    """
    return BoundedLRU(
        maxsize=maxsize,
        max_bytes=max_bytes,
        sizeof=lambda program: program.nbytes,
    )


_PROGRAM_CACHE = new_program_cache()


def cached_program(
    key: Hashable,
    build: Callable[[], ExecutorProgram],
    cache: Optional[BoundedLRU] = None,
) -> Tuple[ExecutorProgram, bool]:
    """Get-or-build on a program cache (the process-wide one by default).

    The generic rehydration hook: callers that can rebuild a program
    from stable content (a kernel, or a persisted plan-store entry in a
    process-pool worker) pass that content's key and a builder; the
    program is compiled at most once per cache per key.  Returns
    ``(program, hit)``.
    """
    target = cache if cache is not None else _PROGRAM_CACHE
    program = target.get(key)
    if program is not None:
        return program, True
    program = build()
    target.put(key, program)
    return program, False


def executor_with_status(
    kernel,
    *,
    lowering: bool = True,
    max_index_bytes: int = DEFAULT_MAX_INDEX_BYTES,
    codegen: bool = False,
    artifacts=None,
    cache: Optional[BoundedLRU] = None,
    refine: int = 0,
) -> Tuple[ExecutorProgram, bool]:
    """The kernel's cached program plus whether this call was a hit.

    The cache key is the kernel's :meth:`~repro.kernels.base
    .TransposeKernel.execute_key` — problem content, not object
    identity — so every kernel instance of one plan (and every rebuilt
    plan of one problem) shares a single compiled program.  The compile
    options are part of the key: forcing ``lowering=False`` (the
    index-map oracle, and the regime the process-pool backend exists
    for) caches separately from the default lowering, and
    ``codegen=True`` (the generated-nest tier) separately from both —
    a nest and its indexed fallback can coexist while the calibrator
    compares them.  ``cache`` swaps the process-wide cache for a
    private one (per-replica serving).  ``refine`` (the codegen
    micro-probe shortlist size) is deliberately NOT part of the key:
    refinement is a per-deployment compile policy, and the refined
    descriptor persists as the geometry's artifact either way.
    """
    return cached_program(
        kernel.execute_key() + (lowering, max_index_bytes, codegen),
        lambda: compile_executor(
            kernel,
            lowering=lowering,
            max_index_bytes=max_index_bytes,
            codegen=codegen,
            artifacts=artifacts,
            refine=refine,
        ),
        cache,
    )


def executor_for(
    kernel,
    *,
    lowering: bool = True,
    max_index_bytes: int = DEFAULT_MAX_INDEX_BYTES,
    codegen: bool = False,
    artifacts=None,
) -> ExecutorProgram:
    """The kernel's cached compiled program (compiling on first use)."""
    return executor_with_status(
        kernel,
        lowering=lowering,
        max_index_bytes=max_index_bytes,
        codegen=codegen,
        artifacts=artifacts,
    )[0]


def exec_cache_stats() -> dict:
    """Occupancy/effectiveness snapshot of the program cache."""
    return _PROGRAM_CACHE.stats()


def clear_exec_caches() -> None:
    """Drop every compiled program (cold-start benchmark conditions).

    Also drops the native tier's in-memory dlopen handles so a fresh
    compile run re-loads objects from disk the way a restarted process
    would; the on-disk shared-object cache is deliberately kept — that
    persistence is the property warm-restart benchmarks measure.
    """
    _PROGRAM_CACHE.clear()
    _PROGRAM_CACHE.reset_stats()
    from repro.kernels.native import clear_loaded_cache

    clear_loaded_cache()
