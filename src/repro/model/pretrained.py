"""Shipped pretrained models and the planning predictor built on them.

``data/pretrained.json`` is produced by ``examples/model_training.py``
(or :func:`repro.model.trainer.train`) against the default simulated
K40c and committed to the repository, mirroring how the paper ships
offline-fitted regression coefficients inside the library.

:func:`pretrained_predictor` adapts the per-schema models into the
``Predictor`` callable Alg. 3 consumes, falling back to the simulator's
own cost model (the "oracle") for schemas without a fitted model.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.core.taxonomy import Schema
from repro.errors import ModelError
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import DeviceSpec
from repro.kernels.base import TransposeKernel
from repro.model.features import feature_vector
from repro.model.regression import FittedModel
from repro.model.store import load_models

PRETRAINED_PATH = Path(__file__).parent / "data" / "pretrained.json"


@functools.lru_cache(maxsize=1)
def load_pretrained() -> Dict[Schema, FittedModel]:
    """The committed models, loaded once per process."""
    return load_models(PRETRAINED_PATH)


#: Schemas predicted by the analytic cost model rather than regression:
#: their counters are exact and cheap, their regression feature sets are
#: weak (the paper omits their model details "due to space
#: constraints"), and mixing a noisy model into cross-schema ranking
#: loses more than the regression gains.
ANALYTIC_SCHEMAS = frozenset(
    {Schema.FVI_MATCH_LARGE, Schema.FVI_MATCH_SMALL, Schema.NAIVE}
)


def model_predictor(
    models: Dict[Schema, FittedModel],
    fallback: Optional[CostModel] = None,
    min_time: float = 1.0e-6,
) -> Callable[[TransposeKernel], float]:
    """Wrap per-schema fitted models as an Alg. 3 predictor.

    Linear models can extrapolate below zero on extreme inputs; predicted
    times are clamped to ``min_time``.  Schemas absent from ``models``
    or listed in :data:`ANALYTIC_SCHEMAS` use ``fallback`` (the analytic
    cost model) when given, else raise.
    """

    def predict(kernel: TransposeKernel) -> float:
        m = models.get(kernel.schema)
        if kernel.schema in ANALYTIC_SCHEMAS and fallback is not None:
            m = None
        if m is None:
            if fallback is not None:
                return fallback.kernel_time(
                    kernel.counters(), kernel.launch_geometry
                )
            raise ModelError(
                f"no fitted model for schema {kernel.schema.value}"
            )
        return max(m.predict_one(feature_vector(kernel)), min_time)

    return predict


#: Device the shipped coefficients were fitted on.  The regression is
#: device-specific (the paper fits offline per machine); planning for
#: any other device uses the analytic cost model until retrained.
PRETRAINED_DEVICE_NAME = "Tesla K40c (simulated)"


def pretrained_predictor(
    spec: Optional[DeviceSpec] = None,
) -> Callable[[TransposeKernel], float]:
    """Predictor over the shipped models with an oracle fallback.

    The shipped coefficients are only valid for the device they were
    trained on; for any other ``spec`` every schema falls back to the
    analytic cost model (retrain via ``examples/model_training.py``).
    """
    fallback = CostModel(spec) if spec is not None else CostModel()
    if spec is not None and spec.name != PRETRAINED_DEVICE_NAME:
        return model_predictor({}, fallback=fallback)
    return model_predictor(load_pretrained(), fallback=fallback)


def oracle_predictor(
    spec: Optional[DeviceSpec] = None,
) -> Callable[[TransposeKernel], float]:
    """Predictor that queries the simulator's cost model directly.

    Used for ablations (model-driven vs oracle selection) and as the
    bootstrap predictor before any model has been trained.
    """
    cm = CostModel(spec) if spec is not None else CostModel()

    def predict(kernel: TransposeKernel) -> float:
        return cm.kernel_time(kernel.counters(), kernel.launch_geometry)

    return predict
